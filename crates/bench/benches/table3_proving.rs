//! Criterion benchmark backing Table III: end-to-end proving latency per
//! project (one representative pair each) and the full-dataset batch.

use criterion::{criterion_group, criterion_main, Criterion};
use graphqe::GraphQE;
use graphqe_bench::representative_pairs;

fn bench_per_project(c: &mut Criterion) {
    let prover = GraphQE::new();
    let mut group = c.benchmark_group("table3/prove_pair");
    group.sample_size(10);
    for pair in representative_pairs() {
        group.bench_function(pair.project.name(), |b| {
            b.iter(|| prover.prove(&pair.left, &pair.right))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_project);
criterion_main!(benches);
