//! The property graph model ⟨N, R, ρ, λ, σ⟩ of Definition 1 in the paper.
//!
//! * `N` — a finite set of nodes;
//! * `R` — a finite set of directed relationships;
//! * `ρ : R → N × N` — maps each relationship to its outgoing (source) and
//!   incoming (target) nodes;
//! * `λ` — associates nodes with a set of labels and each relationship with
//!   exactly one label (the Cypher restriction);
//! * `σ` — a partial function from (entity, property key) to constants.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

use crate::index::AdjacencyIndex;
use crate::value::Value;

/// Identifier of a node within a [`PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a relationship within a [`PropertyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

/// A graph entity reference: either a node or a relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityId {
    /// A node.
    Node(NodeId),
    /// A relationship.
    Relationship(RelId),
}

/// The stored data of a node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeData {
    /// The labels of the node (`λ`), possibly empty or with several entries.
    pub labels: BTreeSet<String>,
    /// The properties of the node (`σ`).
    pub properties: BTreeMap<String, Value>,
}

/// The stored data of a relationship.
#[derive(Debug, Clone, PartialEq)]
pub struct RelData {
    /// The single label of the relationship (`λ`, Cypher restriction).
    pub label: String,
    /// The outgoing (source) node (`ρ`, first component).
    pub source: NodeId,
    /// The incoming (target) node (`ρ`, second component).
    pub target: NodeId,
    /// The properties of the relationship (`σ`).
    pub properties: BTreeMap<String, Value>,
}

/// A property graph.
#[derive(Debug, Default)]
pub struct PropertyGraph {
    nodes: Vec<NodeData>,
    relationships: Vec<RelData>,
    /// The adjacency index, built lazily on first [`PropertyGraph::adjacency`]
    /// call and shared by every subsequent evaluation of the (frozen) graph.
    /// `OnceLock` keeps the graph `Send + Sync`, which the shared
    /// counterexample pool and the parallel search rely on; mutations reset
    /// it, so the index can never go stale.
    index: OnceLock<AdjacencyIndex>,
}

/// Cloning copies the graph data but not the lazily built index: the index
/// is a pure function of nodes and relationships and rebuilds on demand, so
/// copying it (counterexample certificates clone pooled graphs constantly)
/// would only duplicate memory.
impl Clone for PropertyGraph {
    fn clone(&self) -> Self {
        PropertyGraph {
            nodes: self.nodes.clone(),
            relationships: self.relationships.clone(),
            index: OnceLock::new(),
        }
    }
}

/// Graph equality is structural: the lazily built index is a pure function
/// of the nodes and relationships and must not influence comparisons.
impl PartialEq for PropertyGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.relationships == other.relationships
    }
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        PropertyGraph::default()
    }

    /// Adds a node with the given labels and properties, returning its id.
    pub fn add_node<L, K>(
        &mut self,
        labels: impl IntoIterator<Item = L>,
        properties: impl IntoIterator<Item = (K, Value)>,
    ) -> NodeId
    where
        L: Into<String>,
        K: Into<String>,
    {
        let data = NodeData {
            labels: labels.into_iter().map(Into::into).collect(),
            properties: properties.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        };
        self.nodes.push(data);
        self.index = OnceLock::new();
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Adds a directed relationship `source -> target` with one label,
    /// returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `target` are not nodes of this graph.
    pub fn add_relationship<K>(
        &mut self,
        label: impl Into<String>,
        source: NodeId,
        target: NodeId,
        properties: impl IntoIterator<Item = (K, Value)>,
    ) -> RelId
    where
        K: Into<String>,
    {
        assert!((source.0 as usize) < self.nodes.len(), "unknown source node {source:?}");
        assert!((target.0 as usize) < self.nodes.len(), "unknown target node {target:?}");
        let data = RelData {
            label: label.into(),
            source,
            target,
            properties: properties.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        };
        self.relationships.push(data);
        self.index = OnceLock::new();
        RelId((self.relationships.len() - 1) as u32)
    }

    /// The adjacency index of this graph, built on first use. See
    /// [`AdjacencyIndex`] for the layout; the matcher consults it for every
    /// candidate enumeration unless the scan baseline is requested.
    pub fn adjacency(&self) -> &AdjacencyIndex {
        self.index.get_or_init(|| AdjacencyIndex::build(self))
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The number of relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all relationship ids.
    pub fn relationship_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relationships.len() as u32).map(RelId)
    }

    /// Accesses a node's data.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// Accesses a relationship's data.
    pub fn relationship(&self, id: RelId) -> &RelData {
        &self.relationships[id.0 as usize]
    }

    /// Returns `true` if the node has the given label.
    pub fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        self.node(id).labels.contains(label)
    }

    /// Returns the value of a property of a graph entity (`σ`), or `Null`
    /// when the property is absent.
    pub fn property(&self, entity: EntityId, key: &str) -> Value {
        let props = match entity {
            EntityId::Node(id) => &self.node(id).properties,
            EntityId::Relationship(id) => &self.relationship(id).properties,
        };
        props.get(key).cloned().unwrap_or(Value::Null)
    }

    /// Returns the relationships whose source is `node`.
    pub fn outgoing(&self, node: NodeId) -> impl Iterator<Item = RelId> + '_ {
        self.relationship_ids().filter(move |id| self.relationship(*id).source == node)
    }

    /// Returns the relationships whose target is `node`.
    pub fn incoming(&self, node: NodeId) -> impl Iterator<Item = RelId> + '_ {
        self.relationship_ids().filter(move |id| self.relationship(*id).target == node)
    }

    /// Builds the illustrative property graph of Fig. 1 in the paper:
    /// J. K. Rowling wrote *Harry Potter*, read by Jack and Alice.
    pub fn paper_example() -> Self {
        let mut graph = PropertyGraph::new();
        let n1 = graph.add_node(
            ["Person"],
            [("name", Value::from("J. K. Rowling")), ("age", Value::from(59))],
        );
        let n2 = graph.add_node(
            ["Book"],
            [("title", Value::from("Harry Potter")), ("language", Value::from("English"))],
        );
        let n3 =
            graph.add_node(["Person"], [("name", Value::from("Jack")), ("age", Value::from(26))]);
        let n4 =
            graph.add_node(["Person"], [("name", Value::from("Alice")), ("age", Value::from(27))]);
        graph.add_relationship("WRITE", n1, n2, [("date", Value::from(1997))]);
        graph.add_relationship("READ", n3, n2, [("date", Value::from(2024))]);
        graph.add_relationship("READ", n4, n2, [("date", Value::from(2024))]);
        graph
    }
}

impl fmt::Display for PropertyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PropertyGraph ({} nodes, {} relationships)",
            self.node_count(),
            self.relationship_count()
        )?;
        for id in self.node_ids() {
            let node = self.node(id);
            let labels: Vec<_> = node.labels.iter().map(String::as_str).collect();
            writeln!(f, "  (n{}:{:?} {:?})", id.0, labels, node.properties)?;
        }
        for id in self.relationship_ids() {
            let rel = self.relationship(id);
            writeln!(
                f,
                "  (n{})-[r{}:{} {:?}]->(n{})",
                rel.source.0, id.0, rel.label, rel.properties, rel.target.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries_the_paper_example() {
        let graph = PropertyGraph::paper_example();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.relationship_count(), 3);
        assert!(graph.node_has_label(NodeId(0), "Person"));
        assert!(graph.node_has_label(NodeId(1), "Book"));
        assert!(!graph.node_has_label(NodeId(1), "Person"));
        assert_eq!(graph.property(EntityId::Node(NodeId(0)), "name"), Value::from("J. K. Rowling"));
        assert_eq!(graph.property(EntityId::Relationship(RelId(0)), "date"), Value::from(1997));
        assert_eq!(graph.property(EntityId::Node(NodeId(0)), "missing"), Value::Null);
    }

    #[test]
    fn adjacency_iterators() {
        let graph = PropertyGraph::paper_example();
        // Node n2 (the book) has no outgoing relationships and three incoming.
        assert_eq!(graph.outgoing(NodeId(1)).count(), 0);
        assert_eq!(graph.incoming(NodeId(1)).count(), 3);
        // J. K. Rowling has one outgoing WRITE.
        let out: Vec<_> = graph.outgoing(NodeId(0)).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(graph.relationship(out[0]).label, "WRITE");
    }

    #[test]
    #[should_panic(expected = "unknown source node")]
    fn rejects_dangling_relationships() {
        let mut graph = PropertyGraph::new();
        let n = graph.add_node(["A"], Vec::<(String, Value)>::new());
        graph.add_relationship("R", NodeId(99), n, Vec::<(String, Value)>::new());
    }

    #[test]
    fn empty_graph() {
        let graph = PropertyGraph::new();
        assert_eq!(graph.node_count(), 0);
        assert_eq!(graph.relationship_count(), 0);
        assert_eq!(graph.node_ids().count(), 0);
    }
}
