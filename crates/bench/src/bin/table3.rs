//! Regenerates Table III: proved query pairs by project, plus the §VII-B
//! failure breakdown when `--failures` is passed.

#![forbid(unsafe_code)]

use graphqe::GraphQE;
use graphqe_bench::{failure_breakdown, format_table3, run_cyeqset, table3_rows};

fn main() {
    let show_failures = std::env::args().any(|a| a == "--failures");
    let prover = GraphQE::new();
    let results = run_cyeqset(&prover);
    print!("{}", format_table3(&table3_rows(&results)));
    if show_failures {
        println!("\nFailure analysis (unknown verdicts by category):");
        for (category, count) in failure_breakdown(&results) {
            println!("  {category}: {count} pairs");
        }
    }
}
