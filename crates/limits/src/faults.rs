//! Test-only fault injection: forced panics, artificial stalls, and forced
//! SMT `Unknown`s at any pipeline stage.
//!
//! The harness is compiled in unconditionally (cross-crate integration tests
//! and the CI matrix need it in non-test builds of the library crates) but is
//! **inert unless armed**: the disarmed fast path is one relaxed atomic load
//! per checkpoint. Arming happens either programmatically ([`arm`]) from a
//! test, or from the `GRAPHQE_FAULT` environment variable
//! ([`arm_from_env`]) with the syntax `<kind>@<stage>`, e.g. `panic@decide`,
//! `stall@search`, `smt-unknown@smt`.
//!
//! A fault carries a **shot count**: it fires that many times, then disarms
//! itself. With one shot and a single-threaded batch, the afflicted pair is
//! deterministic — the first pair whose pipeline reaches the armed stage.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::Stage;

/// What an armed fault does when its stage's checkpoint is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the checkpoint (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep for the given duration at the checkpoint (exercises deadline
    /// trips: the stall pushes the run past its deadline, and the same
    /// checkpoint then observes the expiry).
    Stall(Duration),
    /// Force the SMT solver's next `check()` calls to report `Unknown`
    /// (exercises conservative degradation). Only meaningful at
    /// [`Stage::Smt`].
    SmtUnknown,
}

/// The stall duration used by the `stall@<stage>` env syntax.
pub const DEFAULT_STALL: Duration = Duration::from_millis(50);

#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    stage: Stage,
    kind: FaultKind,
    shots: u32,
}

/// Fast-path flag: `false` means no fault is armed anywhere in the process.
static ARMED_FLAG: AtomicBool = AtomicBool::new(false);
static ARMED: Mutex<Option<ArmedFault>> = Mutex::new(None);

/// Arms a fault: the next `shots` checkpoints of `stage` fire it, then the
/// harness disarms itself. Replaces any previously armed fault.
pub fn arm(stage: Stage, kind: FaultKind, shots: u32) {
    let mut slot = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    *slot = (shots > 0).then_some(ArmedFault { stage, kind, shots });
    ARMED_FLAG.store(slot.is_some(), Ordering::Release);
}

/// Disarms any armed fault.
pub fn disarm() {
    arm(Stage::Smt, FaultKind::SmtUnknown, 0);
}

/// Parses a `<kind>@<stage>` fault spec (`panic@decide`, `stall@search`,
/// `smt-unknown@smt`), tolerating (and discarding) a `*<shots>` suffix —
/// use [`parse_spec_with_shots`] to keep the shot count.
pub fn parse_spec(spec: &str) -> Option<(Stage, FaultKind)> {
    parse_spec_with_shots(spec).map(|(stage, kind, _)| (stage, kind))
}

/// Parses a `<kind>@<stage>[*<shots>]` fault spec: like [`parse_spec`], with
/// an optional shot-count suffix (`panic@search*3` fires three times). The
/// suffix defaults to one shot and must be a positive integer.
pub fn parse_spec_with_shots(spec: &str) -> Option<(Stage, FaultKind, u32)> {
    let (kind, target) = spec.split_once('@')?;
    let (stage, shots) = match target.split_once('*') {
        Some((stage, shots)) => (stage, shots.trim().parse::<u32>().ok().filter(|n| *n > 0)?),
        None => (target, 1),
    };
    let stage = Stage::parse(stage.trim())?;
    let kind = match kind.trim() {
        "panic" => FaultKind::Panic,
        "stall" => FaultKind::Stall(DEFAULT_STALL),
        "smt-unknown" => FaultKind::SmtUnknown,
        _ => return None,
    };
    Some((stage, kind, shots))
}

/// Arms the fault described by the `GRAPHQE_FAULT` environment variable
/// (`<kind>@<stage>[*<shots>]`, one shot unless the suffix says otherwise),
/// returning the parsed `(stage, kind)` — or `None` when the variable is
/// unset or unparsable (nothing is armed then).
pub fn arm_from_env() -> Option<(Stage, FaultKind)> {
    let spec = std::env::var("GRAPHQE_FAULT").ok()?;
    let (stage, kind, shots) = parse_spec_with_shots(&spec)?;
    arm(stage, kind, shots);
    Some((stage, kind))
}

/// Consumes a shot of an armed `Panic`/`Stall` fault for `stage` and
/// performs it. Called from every checkpoint; free when disarmed. Returns
/// `true` when a stall was performed: the calling checkpoint then probes the
/// deadline clock unconditionally (bypassing the probe subsampling), so the
/// stalled checkpoint itself observes the expiry.
pub(crate) fn trigger(stage: Stage) -> bool {
    if !ARMED_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    let fired = take_shot(stage, false);
    // Perform the fault *after* the arming lock is released, so a panic can
    // never poison the harness itself.
    match fired {
        Some(FaultKind::Panic) => panic!("injected fault: panic at stage {stage}"),
        Some(FaultKind::Stall(duration)) => {
            std::thread::sleep(duration);
            true
        }
        Some(FaultKind::SmtUnknown) | None => false,
    }
}

/// `true` when an armed `SmtUnknown` fault consumed a shot: the SMT solver
/// calls this at the top of `check()` (before its cache probe) and reports
/// `Unknown` without solving.
pub fn forced_smt_unknown() -> bool {
    if !ARMED_FLAG.load(Ordering::Relaxed) {
        return false;
    }
    matches!(take_shot(Stage::Smt, true), Some(FaultKind::SmtUnknown))
}

/// Decrements and returns the armed fault's kind if it matches `stage` (and,
/// for `smt_unknown_only`, the `SmtUnknown` kind — `trigger` must not consume
/// `SmtUnknown` shots, and `forced_smt_unknown` must not consume panic/stall
/// shots armed at the SMT stage).
fn take_shot(stage: Stage, smt_unknown_only: bool) -> Option<FaultKind> {
    let mut slot = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let armed = (*slot)?;
    if armed.stage != stage || (matches!(armed.kind, FaultKind::SmtUnknown) != smt_unknown_only) {
        return None;
    }
    let remaining = armed.shots - 1;
    *slot = (remaining > 0).then_some(ArmedFault { shots: remaining, ..armed });
    if slot.is_none() {
        ARMED_FLAG.store(false, Ordering::Release);
    }
    Some(armed.kind)
}
