//! The `graphqe-serve` binary: bind the batch equivalence server and run
//! until killed. Configuration is flag-based; every flag has the
//! `ServeConfig` default. See SERVING.md for the protocol and runbook.
//!
//! ```text
//! graphqe-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--default-deadline-ms N] [--max-deadline-ms N]
//!               [--max-pairs N] [--max-body-bytes N]
//! ```

#![forbid(unsafe_code)]

use std::time::Duration;

use graphqe_serve::{ServeConfig, Server};

fn main() {
    let mut config = ServeConfig { addr: "127.0.0.1:7437".to_string(), ..ServeConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&flag, &value("--workers")),
            "--queue" => config.queue_capacity = parse(&flag, &value("--queue")),
            "--default-deadline-ms" => {
                let ms: u64 = parse(&flag, &value("--default-deadline-ms"));
                config.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-deadline-ms" => {
                let ms: u64 = parse(&flag, &value("--max-deadline-ms"));
                config.max_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-pairs" => config.max_pairs = parse(&flag, &value("--max-pairs")),
            "--max-body-bytes" => config.max_body_bytes = parse(&flag, &value("--max-body-bytes")),
            "--help" | "-h" => {
                println!(
                    "graphqe-serve: batch Cypher equivalence server (see SERVING.md)\n\
                     flags: --addr --workers --queue --default-deadline-ms --max-deadline-ms \
                     --max-pairs --max-body-bytes"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    // Arm a fault drill when GRAPHQE_FAULT is set, like the test binaries:
    // lets the runbook's fault-injection drill run against a real server.
    if let Some((stage, kind)) = limits::faults::arm_from_env() {
        eprintln!("fault armed from GRAPHQE_FAULT: {kind:?} at stage {stage}");
    }

    let server = match Server::spawn(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("graphqe-serve listening on http://{}", server.local_addr());
    // No signal handling (std-only): run until the process is killed. Park
    // forever instead of busy-waiting.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {value:?} for {flag}");
        std::process::exit(2);
    })
}
