//! # cyeqset
//!
//! **CyEqSet** and **CyNeqSet** — the datasets of the GraphQE evaluation
//! (§VII-A of the paper), reconstructed for the Rust reproduction.
//!
//! * [`cyeqset`] returns 148 pairs of equivalent Cypher queries with the same
//!   per-project split as Table III: 80 Calcite-derived pairs, 13 LDBC-SNB
//!   pairs, 23 Cypher-for-gremlin pairs and 32 Graphdb-benchmarks pairs.
//!   Pairs are built by (a) hand-written Calcite-style rewrites and (b)
//!   applying the paper's three rewriting rules ([`rewrite`]) to realistic
//!   base queries. Ten pairs are deliberately *hard*: they are equivalent but
//!   exercise the limitations the paper reports (2 × sorting/truncation,
//!   4 × nested aggregates, 4 × uninterpreted functions).
//! * [`cyneqset`] returns 148 non-equivalent pairs obtained by applying the
//!   five mutation rules ([`mutate`]) to CyEqSet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mutate;
pub mod rewrite;

use std::fmt;

/// The origin project of a query pair (Table III rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Project {
    /// Pairs translated from the Calcite SQL equivalence suite.
    CalciteCypher,
    /// Pairs derived from LDBC-SNB interactive queries.
    Ldbc,
    /// Pairs derived from the Cypher-for-gremlin test queries.
    CypherForGremlin,
    /// Pairs derived from the Graphdb-benchmarks workloads.
    GraphdbBenchmarks,
}

impl Project {
    /// The display name used in Table III.
    pub fn name(&self) -> &'static str {
        match self {
            Project::CalciteCypher => "Calcite-Cypher",
            Project::Ldbc => "LDBC",
            Project::CypherForGremlin => "Cypher-for-gremlin",
            Project::GraphdbBenchmarks => "Graphdb-benchmarks",
        }
    }

    /// All projects in Table III order.
    pub fn all() -> [Project; 4] {
        [
            Project::CalciteCypher,
            Project::Ldbc,
            Project::CypherForGremlin,
            Project::GraphdbBenchmarks,
        ]
    }
}

impl fmt::Display for Project {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One pair of Cypher queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPair {
    /// Stable identifier (e.g. `calcite-017`).
    pub id: String,
    /// Which project the pair is attributed to.
    pub project: Project,
    /// How the pair was constructed (rewrite rule or "hand-written").
    pub construction: String,
    /// The first query.
    pub left: String,
    /// The second query.
    pub right: String,
    /// Whether the reproduction expects GraphQE-rs to prove the pair
    /// (mirrors the 138/148 split of the paper).
    pub expected_provable: bool,
}

/// Per-project targets of Table III: (total pairs, expected proved).
pub const TABLE3_TARGETS: [(Project, usize, usize); 4] = [
    (Project::CalciteCypher, 80, 73),
    (Project::Ldbc, 13, 13),
    (Project::CypherForGremlin, 23, 23),
    (Project::GraphdbBenchmarks, 32, 29),
];

/// The full CyEqSet: 148 pairs of equivalent Cypher queries.
pub fn cyeqset() -> Vec<QueryPair> {
    let mut pairs = Vec::new();
    for (project, total, proved) in TABLE3_TARGETS {
        let hard = hard_pairs(project);
        assert_eq!(hard.len(), total - proved, "hard pair bookkeeping for {project}");
        let easy_target = total - hard.len();
        let mut generated = Vec::new();
        'outer: for (base_index, base) in base_queries(project).iter().enumerate() {
            // A base query with k applicable rewrites yields k pairs against
            // the base plus C(k, 2) pairs between rewrites (all equivalent by
            // transitivity), mirroring how the paper derives multiple pairs
            // from one real-world query.
            let rewrites = rewrite::all_rewrites(base);
            let mut candidates: Vec<(String, String, String)> = Vec::new();
            for (rule, rewritten) in &rewrites {
                candidates.push((base.to_string(), rewritten.clone(), rule.clone()));
            }
            for i in 0..rewrites.len() {
                for j in (i + 1)..rewrites.len() {
                    candidates.push((
                        rewrites[i].1.clone(),
                        rewrites[j].1.clone(),
                        format!("{} vs {}", rewrites[i].0, rewrites[j].0),
                    ));
                }
            }
            for (left, right, rule) in candidates {
                if generated.len() == easy_target {
                    break 'outer;
                }
                generated.push(QueryPair {
                    id: format!("{}-{:03}", prefix(project), generated.len() + 1),
                    project,
                    construction: format!("{rule} on base {base_index}"),
                    left,
                    right,
                    expected_provable: true,
                });
            }
        }
        assert_eq!(
            generated.len(),
            easy_target,
            "not enough base queries to generate {easy_target} pairs for {project}"
        );
        pairs.extend(generated);
        for (index, (left, right, category)) in hard.into_iter().enumerate() {
            pairs.push(QueryPair {
                id: format!("{}-hard-{:02}", prefix(project), index + 1),
                project,
                construction: format!("hand-written ({category})"),
                left,
                right,
                expected_provable: false,
            });
        }
    }
    assert_eq!(pairs.len(), 148);
    pairs
}

/// The full CyNeqSet: 148 pairs of *non*-equivalent Cypher queries obtained
/// by mutating CyEqSet.
pub fn cyneqset() -> Vec<QueryPair> {
    let mut pairs = Vec::new();
    for (index, pair) in cyeqset().into_iter().enumerate() {
        // Try the mutation rules in rotation and keep the first mutation that
        // verifiably changes the query's results on some small graph (the
        // paper manually confirmed non-equivalence of every CyNeqSet pair;
        // the check below automates that confirmation).
        let mut chosen: Option<(String, String)> = None;
        for attempt in 0..5 {
            let Some((rule, mutated)) = mutate::mutate(&pair.left, index + attempt) else {
                continue;
            };
            if confirmed_non_equivalent(&pair.left, &mutated) {
                chosen = Some((rule, mutated));
                break;
            }
        }
        let (rule, mutated) = chosen.unwrap_or_else(|| {
            // Last resort: compare against a query over a fresh label —
            // trivially non-equivalent.
            ("fresh-label".to_string(), "MATCH (zzz:NoSuchLabel) RETURN zzz.x".to_string())
        });
        pairs.push(QueryPair {
            id: format!("neq-{:03}", index + 1),
            project: pair.project,
            construction: format!("mutation: {rule}"),
            left: pair.left,
            right: mutated,
            expected_provable: false,
        });
    }
    assert_eq!(pairs.len(), 148);
    pairs
}

/// Confirms that two query texts return different bags on at least one small
/// property graph (generated from the queries' own labels and constants).
fn confirmed_non_equivalent(left: &str, right: &str) -> bool {
    use property_graph::{evaluate_query, GeneratorConfig, GraphGenerator};
    let (Ok(q1), Ok(q2)) = (cypher_parser::parse_query(left), cypher_parser::parse_query(right))
    else {
        return false;
    };
    let config = GeneratorConfig::from_queries(&[&q1, &q2]);
    let mut generator = GraphGenerator::with_config(0xDA7A, config);
    for graph in generator.generate_many(60) {
        let (Ok(a), Ok(b)) = (evaluate_query(&graph, &q1), evaluate_query(&graph, &q2)) else {
            continue;
        };
        if !a.bag_equal(&b) {
            return true;
        }
    }
    false
}

fn prefix(project: Project) -> &'static str {
    match project {
        Project::CalciteCypher => "calcite",
        Project::Ldbc => "ldbc",
        Project::CypherForGremlin => "gremlin",
        Project::GraphdbBenchmarks => "graphdb",
    }
}

/// Base queries per project. Rewrites of these queries form the "easy"
/// (provable) part of the dataset. The Calcite list mimics the relational
/// shapes of the Calcite suite translated to graph patterns; the other lists
/// mimic the workloads of the respective projects.
fn base_queries(project: Project) -> Vec<&'static str> {
    match project {
        Project::CalciteCypher => vec![
            "MATCH (e:Emp)-[w:WORKS_IN]->(d:Dept) WHERE e.age > 30 RETURN e.name, d.name",
            "MATCH (e:Emp)-[w:WORKS_IN]->(d:Dept) WHERE e.age > 30 AND d.city = 'NY' RETURN e.name",
            "MATCH (e:Emp)-[w:WORKS_IN]->(d:Dept) WHERE d.city = 'NY' OR d.city = 'LA' RETURN e.name",
            "MATCH (e:Emp) WHERE e.sal > 1000 AND e.sal > 500 RETURN e.name",
            "MATCH (e:Emp) WHERE e.sal = 1 AND e.sal = 2 RETURN e",
            "MATCH (e:Emp)-[m:MANAGES]->(f:Emp) WHERE e.sal > f.sal RETURN e.name, f.name",
            "MATCH (e:Emp)-[m:MANAGES]->(f:Emp)-[w:WORKS_IN]->(d:Dept) WHERE m <> w RETURN e, d",
            "MATCH (a:Account)-[t:TRANSFER]->(b:Account) WHERE t.amount > 100 RETURN a.id, b.id",
            "MATCH (a:Account)-[t1:TRANSFER]->(b:Account)-[t2:TRANSFER]->(c:Account) WHERE t1 <> t2 RETURN a, c",
            "MATCH (e:Emp) RETURN e.name UNION ALL MATCH (d:Dept) RETURN d.name",
            "MATCH (e:Emp) RETURN e.name UNION MATCH (d:Dept) RETURN d.name",
            "MATCH (e:Emp) RETURN DISTINCT e.dept",
            "MATCH (e:Emp) WITH e.dept AS dept RETURN dept",
            "MATCH (e:Emp) RETURN e.name ORDER BY e.name LIMIT 10",
            "MATCH (e:Emp) RETURN e.name ORDER BY e.sal DESC SKIP 2 LIMIT 5",
            "MATCH (e:Emp) RETURN COUNT(*)",
            "MATCH (e:Emp)-[w:WORKS_IN]->(d:Dept) RETURN d.name, COUNT(*)",
            "MATCH (e:Emp) RETURN SUM(e.sal)",
            "MATCH (e:Emp) RETURN e.dept, MIN(e.sal), MAX(e.sal)",
            "MATCH (e:Emp) WHERE e.bonus IS NULL RETURN e.name",
            "MATCH (e:Emp) WHERE e.bonus IS NOT NULL AND e.bonus > 0 RETURN e.name",
            "MATCH (e:Emp) WHERE NOT e.age < 18 RETURN e",
            "MATCH (e:Emp) WHERE e.dept IN ['sales', 'hr'] RETURN e.name",
            "MATCH (e:Emp) OPTIONAL MATCH (e)-[w:WORKS_IN]->(d:Dept) RETURN e.name, d.name",
            "MATCH (p:Part)-[u:USED_BY]->(a:Assembly) WHERE p.weight >= 5 RETURN p, a",
            "MATCH (p:Part)-[u1:USED_BY]->(a:Assembly)<-[u2:USED_BY]-(q:Part) WHERE u1 <> u2 RETURN p, q",
            "MATCH (e:Emp) WHERE EXISTS { MATCH (e)-[:MANAGES]->(f:Emp) RETURN f } RETURN e.name",
            "MATCH (e:Emp {dept: 'sales'}) RETURN e",
            "MATCH (n1), (n2) WHERE id(n1) = id(n2) RETURN n1",
            "MATCH (e:Emp) WHERE e.age > 20 XOR e.sal > 100 RETURN e",
            "MATCH (c:Customer)-[o:ORDERED]->(i:Item) WHERE i.price > 10 AND c.tier = 'gold' RETURN c.id, i.id",
            "MATCH (c:Customer)-[o1:ORDERED]->(i:Item)<-[o2:ORDERED]-(d:Customer) WHERE o1 <> o2 AND i.price > 10 RETURN c.id, d.id",
        ],
        Project::Ldbc => vec![
            "MATCH (p:Person)-[k:KNOWS]->(f:Person) WHERE p.firstName = 'Jan' RETURN f.firstName, f.lastName",
            "MATCH (p:Person)-[l:LIKES]->(m:Message)-[c:HAS_CREATOR]->(a:Person) WHERE l <> c RETURN a.firstName",
            "MATCH (p:Person)-[w:WORK_AT]->(c:Company) WHERE w.workFrom < 2010 RETURN p, c",
            "MATCH (p:Person)-[i:IS_LOCATED_IN]->(city:City) RETURN city.name, COUNT(*)",
            "MATCH (m:Message)-[t:HAS_TAG]->(tag:Tag) WHERE tag.name = 'Graph' RETURN m.id ORDER BY m.id LIMIT 20",
        ],
        Project::CypherForGremlin => vec![
            "MATCH (s:Software)<-[c:CREATED]-(p:Person) RETURN p.name, s.name",
            "MATCH (p:Person)-[k:KNOWS]->(q:Person)-[c:CREATED]->(s:Software) WHERE k <> c RETURN s.name",
            "MATCH (p:Person) WHERE p.age > 30 RETURN p.name ORDER BY p.name",
            "MATCH (p:Person)-[c:CREATED]->(s:Software) RETURN DISTINCT s.lang",
            "MATCH (p:Person) RETURN COUNT(p)",
            "MATCH (p:Person)-[c:CREATED]->(s:Software) RETURN s.name, COUNT(*)",
            "MATCH (p:Person) WHERE p.name = 'marko' OPTIONAL MATCH (p)-[k:KNOWS]->(q) RETURN q.name",
            "MATCH (p:Person) WHERE p.age > 20 AND p.age < 40 RETURN p",
            "MATCH (p:Person)-[k:KNOWS]->(q:Person) WHERE q.age > p.age RETURN q.name",
            "MATCH (s:Software)<-[c1:CREATED]-(p:Person)-[c2:CREATED]->(t:Software) WHERE c1 <> c2 RETURN s.name, t.name",
        ],
        Project::GraphdbBenchmarks => vec![
            "MATCH (u:User)-[f:FOLLOWS]->(v:User) RETURN u.id, v.id",
            "MATCH (u:User)-[f1:FOLLOWS]->(v:User)-[f2:FOLLOWS]->(w:User) WHERE f1 <> f2 RETURN u, w",
            "MATCH (u:User)-[p:POSTED]->(t:Tweet) WHERE t.retweets > 100 RETURN u.name, t.id",
            "MATCH (u:User) WHERE u.followers > 1000 RETURN u.name ORDER BY u.followers DESC LIMIT 10",
            "MATCH (u:User)-[p:POSTED]->(t:Tweet)-[m:MENTIONS]->(v:User) WHERE p <> m RETURN v.name",
            "MATCH (a:Article)-[c:CITES]->(b:Article) RETURN b.title, COUNT(*)",
            "MATCH (a:Article) WHERE a.year >= 2020 RETURN DISTINCT a.venue",
            "MATCH (u:User) OPTIONAL MATCH (u)-[l:LIKES]->(t:Tweet) RETURN u.id, t.id",
            "MATCH (u:User)-[f:FOLLOWS]->(u2:User {verified: true}) RETURN u.id",
            "MATCH (g:Group)<-[m:MEMBER_OF]-(u:User) WHERE g.size > 10 RETURN g.name, u.name",
            "MATCH (u:User)-[l:LIKES]->(t:Tweet)<-[p:POSTED]-(v:User) WHERE l <> p RETURN u.id, v.id",
            "MATCH (a:Article)-[c1:CITES]->(b:Article)-[c2:CITES]->(d:Article) WHERE c1 <> c2 RETURN a.title, d.title",
        ],
    }
}

/// The deliberately hard (equivalent but expected-unprovable) pairs, with the
/// failure category they exercise.
fn hard_pairs(project: Project) -> Vec<(String, String, &'static str)> {
    let pair = |a: &str, b: &str, category: &'static str| (a.to_string(), b.to_string(), category);
    match project {
        Project::CalciteCypher => vec![
            // Sorting & truncation: different numbers of ORDER BY ... LIMIT
            // fragments within subqueries (2 cases).
            pair(
                "MATCH (n:Emp) WITH n ORDER BY n.sal LIMIT 1 WITH n ORDER BY n.sal LIMIT 1 RETURN n.name",
                "MATCH (n:Emp) WITH n ORDER BY n.sal LIMIT 1 RETURN n.name",
                "sorting-truncation",
            ),
            pair(
                "MATCH (n:Emp) WITH n ORDER BY n.sal LIMIT 3 WITH n ORDER BY n.sal LIMIT 3 RETURN n",
                "MATCH (n:Emp) WITH n ORDER BY n.sal LIMIT 3 RETURN n",
                "sorting-truncation",
            ),
            // Nested aggregates / aggregate computations (4 cases).
            pair(
                "MATCH (n:Emp) RETURN SUM(n.sal) / COUNT(n)",
                "MATCH (m:Emp) RETURN SUM(m.sal) / COUNT(m)",
                "nested-aggregate",
            ),
            pair(
                "MATCH (n:Emp) RETURN SUM(n.sal) + COUNT(n)",
                "MATCH (m:Emp) RETURN COUNT(m) + SUM(m.sal)",
                "nested-aggregate",
            ),
            pair(
                "MATCH (n:Emp) RETURN MAX(n.sal) - MIN(n.sal)",
                "MATCH (m:Emp) RETURN MAX(m.sal) - MIN(m.sal)",
                "nested-aggregate",
            ),
            pair(
                "MATCH (n:Emp)-[w:WORKS_IN]->(d:Dept) RETURN d.name, SUM(n.sal) / COUNT(n)",
                "MATCH (m:Emp)-[w:WORKS_IN]->(d:Dept) RETURN d.name, SUM(m.sal) / COUNT(m)",
                "nested-aggregate",
            ),
            // Uninterpreted built-in function (1 case).
            pair(
                "MATCH (n:Emp) WHERE size(n.name) > 2 RETURN n",
                "MATCH (n:Emp) WHERE size(n.name) >= 3 RETURN n",
                "uninterpreted-function",
            ),
        ],
        Project::GraphdbBenchmarks => vec![
            // Uninterpreted functions / COLLECT (3 cases).
            pair(
                "MATCH (u:User) RETURN COLLECT(coalesce(u.followers, u.followers))",
                "MATCH (u:User) RETURN COLLECT(u.followers)",
                "uninterpreted-function",
            ),
            pair(
                "MATCH (u:User) WHERE size(u.name) > 4 RETURN u",
                "MATCH (u:User) WHERE size(u.name) >= 5 RETURN u",
                "uninterpreted-function",
            ),
            pair(
                "MATCH (u:User) RETURN head([u.followers])",
                "MATCH (u:User) RETURN u.followers",
                "uninterpreted-function",
            ),
        ],
        _ => Vec::new(),
    }
}

/// Dataset statistics for the `dataset_stats` report binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Pairs per project (project, total, expected provable).
    pub per_project: Vec<(Project, usize, usize)>,
    /// Total number of pairs.
    pub total: usize,
    /// How many pairs were produced by each construction rule.
    pub per_construction: Vec<(String, usize)>,
}

/// Computes the statistics of CyEqSet.
pub fn dataset_stats() -> DatasetStats {
    let pairs = cyeqset();
    let mut per_project = Vec::new();
    for project in Project::all() {
        let of_project: Vec<_> = pairs.iter().filter(|p| p.project == project).collect();
        let provable = of_project.iter().filter(|p| p.expected_provable).count();
        per_project.push((project, of_project.len(), provable));
    }
    let mut per_construction: Vec<(String, usize)> = Vec::new();
    for pair in &pairs {
        let rule = pair.construction.split(" on ").next().unwrap_or("other").to_string();
        match per_construction.iter_mut().find(|(name, _)| *name == rule) {
            Some((_, count)) => *count += 1,
            None => per_construction.push((rule, 1)),
        }
    }
    DatasetStats { total: pairs.len(), per_project, per_construction }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyeqset_matches_table_3_totals() {
        let pairs = cyeqset();
        assert_eq!(pairs.len(), 148);
        for (project, total, proved) in TABLE3_TARGETS {
            let of_project: Vec<_> = pairs.iter().filter(|p| p.project == project).collect();
            assert_eq!(of_project.len(), total, "{project}");
            assert_eq!(
                of_project.iter().filter(|p| p.expected_provable).count(),
                proved,
                "{project}"
            );
        }
    }

    #[test]
    fn all_queries_parse_and_pass_semantic_checks() {
        for pair in cyeqset() {
            assert!(
                cypher_parser::parse_and_check(&pair.left).is_ok(),
                "left of {} does not parse: {}",
                pair.id,
                pair.left
            );
            assert!(
                cypher_parser::parse_and_check(&pair.right).is_ok(),
                "right of {} does not parse: {}",
                pair.id,
                pair.right
            );
        }
        for pair in cyneqset() {
            assert!(cypher_parser::parse_and_check(&pair.right).is_ok(), "{}", pair.id);
        }
    }

    #[test]
    fn ids_are_unique() {
        let pairs = cyeqset();
        let mut ids: Vec<_> = pairs.iter().map(|p| p.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), pairs.len());
    }

    #[test]
    fn cyneqset_has_148_distinct_pairs() {
        let pairs = cyneqset();
        assert_eq!(pairs.len(), 148);
        for pair in &pairs {
            assert_ne!(pair.left, pair.right, "{}", pair.id);
        }
    }

    #[test]
    fn equivalent_pairs_agree_on_the_paper_graph() {
        // A lightweight semantic sanity check of the dataset itself: every
        // CyEqSet pair must return identical bags on the Fig. 1 graph
        // (a necessary condition for equivalence).
        use property_graph::{evaluate_query, PropertyGraph};
        let graph = PropertyGraph::paper_example();
        for pair in cyeqset() {
            let left = cypher_parser::parse_query(&pair.left).unwrap();
            let right = cypher_parser::parse_query(&pair.right).unwrap();
            let (Ok(l), Ok(r)) = (evaluate_query(&graph, &left), evaluate_query(&graph, &right))
            else {
                continue;
            };
            assert!(l.bag_equal(&r), "{} differs on the paper graph", pair.id);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let stats = dataset_stats();
        assert_eq!(stats.total, 148);
        assert_eq!(stats.per_project.len(), 4);
        let constructed: usize = stats.per_construction.iter().map(|(_, c)| c).sum();
        assert_eq!(constructed, 148);
    }
}
