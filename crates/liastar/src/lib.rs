//! # liastar
//!
//! The LIA\*-based decision procedure for G-expression equivalence
//! (stage ④ of the GraphQE workflow, §IV-C of the paper).
//!
//! The paper eliminates unbounded summations with the LIA\* construction of
//! Ding et al. and hands the resulting linear-arithmetic formula to Z3. This
//! crate reproduces the same pipeline on top of the from-scratch [`smt`]
//! solver:
//!
//! 1. both G-expressions are [`gexpr::normalize`]d into sums of summations of
//!    products;
//! 2. each summand is **simplified with SMT reasoning** — summands whose
//!    factors are jointly unsatisfiable are identically zero and dropped, and
//!    atoms implied by the remaining factors of their product are removed
//!    (`[x > 5] × [x > 3] = [x > 5]`);
//! 3. each summation is abstracted by a non-negative integer variable; two
//!    summations receive the same variable exactly when their bodies are
//!    isomorphic (found by the backtracking matcher in [`iso`]);
//! 4. the equality of the two abstracted linear expressions is discharged by
//!    the SMT solver: `∃t. g1(t) ≠ g2(t)` is unsatisfiable iff every abstract
//!    variable occurs with the same multiplicity on both sides.
//!
//! All steps are sound: a `Proved` verdict implies the G-expressions agree on
//! every property graph and tuple.

#![warn(missing_docs)]

pub mod encode;
pub mod iso;

use std::cell::RefCell;
use std::collections::HashMap;

use gexpr::arena::{with_thread_store, NodeId as ArenaNodeId};
use gexpr::{normalize, normalize_tree, GExpr};
use smt::{SmtResult, Solver, Term};

pub use encode::{encode_atom, encode_factor, encode_product, encode_term};
pub use iso::{isomorphic, unify_expr, unify_multiset, Checkpoint, VarMapping};

/// The outcome of the equivalence decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The two G-expressions were proven equivalent.
    Proved,
    /// Equivalence could not be established (this does **not** mean the
    /// queries are inequivalent).
    NotProved,
}

impl Decision {
    /// Returns `true` for [`Decision::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Decision::Proved)
    }
}

/// Statistics of one equivalence decision, reported for benchmarking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionStats {
    /// Number of summands on each side after normalization.
    pub summands: (usize, usize),
    /// Number of summands pruned because they were identically zero.
    pub pruned_zero: usize,
    /// Number of atoms removed by implication pruning.
    pub pruned_implied: usize,
    /// Whether the final step needed the SMT arithmetic check.
    pub used_smt_arithmetic: bool,
}

/// Options of the decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecideOptions {
    /// Use the reference tree normalizer instead of the memoizing hash-consed
    /// arena. Results are identical; this exists so benchmarks can measure
    /// the arena speedup against the paper-faithful baseline.
    pub tree_normalizer: bool,
}

/// Decides whether two G-expressions are equivalent on every property graph.
pub fn check_equivalence(g1: &GExpr, g2: &GExpr) -> Decision {
    check_equivalence_with_stats(g1, g2).0
}

/// [`check_equivalence`] with decision statistics.
pub fn check_equivalence_with_stats(g1: &GExpr, g2: &GExpr) -> (Decision, DecisionStats) {
    check_equivalence_with_opts(g1, g2, DecideOptions::default())
}

/// [`check_equivalence_with_stats`] with explicit [`DecideOptions`].
pub fn check_equivalence_with_opts(
    g1: &GExpr,
    g2: &GExpr,
    opts: DecideOptions,
) -> (Decision, DecisionStats) {
    let norm: fn(&GExpr) -> GExpr = if opts.tree_normalizer { normalize_tree } else { normalize };
    // The SMT-result caches are keyed by hash-consed arena ids, so they are
    // only available on the arena path (the tree path stays paper-faithful
    // and cache-free, as the benchmark baseline).
    let cached = !opts.tree_normalizer;
    let mut stats = DecisionStats::default();
    let left = norm(&split_disjoint_squashes(g1, cached));
    let right = norm(&split_disjoint_squashes(g2, cached));

    // Quick path: syntactic equality after normalization.
    if left == right {
        return (Decision::Proved, stats);
    }

    decide(&left, &right, &mut stats, cached)
}

/// Recursive decision: squashes are peeled in lock-step, then the summand
/// lists are compared.
fn decide(
    left: &GExpr,
    right: &GExpr,
    stats: &mut DecisionStats,
    cached: bool,
) -> (Decision, DecisionStats) {
    if let (GExpr::Squash(a), GExpr::Squash(b)) = (left, right) {
        // ‖A‖ = ‖B‖ is implied by A = B (sufficient condition).
        return decide(a, b, stats, cached);
    }

    let left_summands = simplify_summands(to_summands(left), stats, cached);
    let right_summands = simplify_summands(to_summands(right), stats, cached);
    stats.summands = (left_summands.len(), right_summands.len());

    // Structural bijection between the summand multisets. The baseline
    // (tree) configuration keeps the pre-refactor cloning matcher; the arena
    // configuration uses the undo-trail matcher.
    let bijective = if cached {
        iso::unify_multiset(&left_summands, &right_summands, &mut VarMapping::new())
    } else {
        iso::cloning::unify_multiset(&left_summands, &right_summands, &VarMapping::new()).is_some()
    };
    if bijective {
        return (Decision::Proved, stats.clone());
    }

    // LIA* arithmetic check: abstract each isomorphism class of summands by a
    // non-negative integer variable and ask the SMT solver whether the two
    // sides can differ. (With per-class counts this is decidable directly;
    // the SMT formulation mirrors the paper's pipeline and exercises the LIA
    // solver.)
    stats.used_smt_arithmetic = true;
    let mut classes: Vec<GExpr> = Vec::new();
    let mut left_counts: Vec<i64> = Vec::new();
    let mut right_counts: Vec<i64> = Vec::new();
    for summand in &left_summands {
        let class = class_index(&mut classes, &mut left_counts, &mut right_counts, summand, cached);
        left_counts[class] += 1;
    }
    for summand in &right_summands {
        let class = class_index(&mut classes, &mut left_counts, &mut right_counts, summand, cached);
        right_counts[class] += 1;
    }

    // g1 = Σ count_l[i]·v_i, g2 = Σ count_r[i]·v_i with v_i ≥ 1 (a summand's
    // value is unknown but identical across sides). The queries can differ
    // only if some class count differs, so `g1 ≠ g2` must be unsatisfiable.
    let mut solver = Solver::new();
    let mut left_sum = Vec::new();
    let mut right_sum = Vec::new();
    for (index, _) in classes.iter().enumerate() {
        let v = Term::int_var(format!("class{index}"));
        solver.assert(Term::ge(v.clone(), Term::int(1)));
        left_sum.push(Term::MulConst(left_counts[index], Box::new(v.clone())));
        right_sum.push(Term::MulConst(right_counts[index], Box::new(v)));
    }
    let lhs = if left_sum.is_empty() { Term::int(0) } else { Term::add(left_sum) };
    let rhs = if right_sum.is_empty() { Term::int(0) } else { Term::add(right_sum) };
    solver.assert(Term::neq(lhs, rhs));
    match solver.check() {
        SmtResult::Unsat => (Decision::Proved, stats.clone()),
        _ => (Decision::NotProved, stats.clone()),
    }
}

fn class_index(
    classes: &mut Vec<GExpr>,
    left_counts: &mut Vec<i64>,
    right_counts: &mut Vec<i64>,
    summand: &GExpr,
    cached: bool,
) -> usize {
    for (index, representative) in classes.iter().enumerate() {
        let same_class = if cached {
            isomorphic(representative, summand)
        } else {
            iso::cloning::unify_expr(representative, summand, &VarMapping::new()).is_some()
        };
        if same_class {
            return index;
        }
    }
    classes.push(summand.clone());
    left_counts.push(0);
    right_counts.push(0);
    classes.len() - 1
}

thread_local! {
    /// Cache of pairwise disjointness checks, keyed by arena node ids.
    static DISJOINT_CACHE: RefCell<HashMap<(ArenaNodeId, ArenaNodeId), bool>> =
        RefCell::new(HashMap::new());
    /// Cache of [`simplify_summand`] results, keyed by the summand's arena
    /// node id: the simplified summand (`None` = pruned as identically zero)
    /// plus the number of implied atoms removed (replayed into the stats).
    static SUMMAND_CACHE: RefCell<HashMap<ArenaNodeId, (Option<ArenaNodeId>, usize)>> =
        RefCell::new(HashMap::new());
}

/// `true` iff the product `a × b` is unsatisfiable. With `cached`, the
/// verdict is memoized under the pair of hash-consed ids, so the quadratic
/// sweep of [`split_disjoint_squashes`] re-pays the SMT call only for pairs
/// of alternatives never seen before on this thread.
fn disjoint(a: &GExpr, b: &GExpr, cached: bool) -> bool {
    let check = |a: &GExpr, b: &GExpr| {
        let product = Term::and(vec![encode_factor(a), encode_factor(b)]);
        smt::check_formula(product).is_unsat()
    };
    if !cached {
        return check(a, b);
    }
    let key = with_thread_store(|store| (store.intern_expr(a), store.intern_expr(b)));
    if let Some(hit) = DISJOINT_CACHE.with(|cache| cache.borrow().get(&key).copied()) {
        return hit;
    }
    let result = check(a, b);
    DISJOINT_CACHE.with(|cache| cache.borrow_mut().insert(key, result));
    result
}

/// Rewrites `‖a + b + ...‖` into `a + b + ...` when every alternative is
/// 0/1-valued and the alternatives are pairwise disjoint (their pairwise
/// products are unsatisfiable). This is the LIA\*-style reasoning that makes
/// `WHERE p OR q` over disjoint ranges equal to the `UNION ALL` of the two
/// branches (the worked example of §IV-C).
fn split_disjoint_squashes(expr: &GExpr, cached: bool) -> GExpr {
    match expr {
        GExpr::Squash(inner) => {
            let inner = split_disjoint_squashes(inner, cached);
            if let GExpr::Add(items) = &inner {
                let all_unit = items.iter().all(gexpr::is_zero_one);
                let pairwise_disjoint = all_unit
                    && items
                        .iter()
                        .enumerate()
                        .all(|(i, a)| items.iter().skip(i + 1).all(|b| disjoint(a, b, cached)));
                if pairwise_disjoint {
                    return inner;
                }
            }
            GExpr::squash(inner)
        }
        GExpr::Mul(items) => {
            GExpr::mul(items.iter().map(|i| split_disjoint_squashes(i, cached)).collect())
        }
        GExpr::Add(items) => {
            GExpr::add(items.iter().map(|i| split_disjoint_squashes(i, cached)).collect())
        }
        GExpr::Not(inner) => GExpr::not(split_disjoint_squashes(inner, cached)),
        GExpr::Sum { vars, body } => {
            GExpr::sum(vars.clone(), split_disjoint_squashes(body, cached))
        }
        other => other.clone(),
    }
}

/// Splits a normalized expression into its top-level summands.
fn to_summands(expr: &GExpr) -> Vec<GExpr> {
    match expr {
        GExpr::Add(items) => items.clone(),
        GExpr::Zero => Vec::new(),
        other => vec![other.clone()],
    }
}

/// SMT-backed simplification of summands: zero pruning and implied-atom
/// elimination.
fn simplify_summands(summands: Vec<GExpr>, stats: &mut DecisionStats, cached: bool) -> Vec<GExpr> {
    let mut result = Vec::new();
    for summand in summands {
        match simplify_summand_cached(&summand, stats, cached) {
            Some(simplified) => result.push(simplified),
            None => stats.pruned_zero += 1,
        }
    }
    result
}

/// Memoizing front end of [`simplify_summand`]: the result is cached under
/// the summand's hash-consed id, so the SMT solver runs once per distinct
/// summand per thread — across permutation retries of the same pair and
/// across structurally overlapping pairs of a batch. This is the single
/// hottest SMT call site of the prover.
fn simplify_summand_cached(
    summand: &GExpr,
    stats: &mut DecisionStats,
    cached: bool,
) -> Option<GExpr> {
    if !cached {
        return simplify_summand(summand, stats);
    }
    let id = with_thread_store(|store| store.intern_expr(summand));
    if let Some((result, implied)) = SUMMAND_CACHE.with(|cache| cache.borrow().get(&id).cloned()) {
        stats.pruned_implied += implied;
        return result.map(|rid| with_thread_store(|store| store.extern_expr(rid)));
    }
    let implied_before = stats.pruned_implied;
    let result = simplify_summand(summand, stats);
    let implied = stats.pruned_implied - implied_before;
    let result_id = result.as_ref().map(|expr| with_thread_store(|store| store.intern_expr(expr)));
    SUMMAND_CACHE.with(|cache| cache.borrow_mut().insert(id, (result_id, implied)));
    result
}

fn simplify_summand(summand: &GExpr, stats: &mut DecisionStats) -> Option<GExpr> {
    // Decompose Σ_{vars} Π factors (both layers optional).
    let (vars, body) = match summand {
        GExpr::Sum { vars, body } => (vars.clone(), (**body).clone()),
        other => (Vec::new(), other.clone()),
    };
    let mut factors = match body {
        GExpr::Mul(items) => items,
        other => vec![other],
    };

    // Zero pruning: unsatisfiable products contribute nothing.
    if smt::check_formula(encode_product(&factors)).is_unsat() {
        return None;
    }

    // Implied-atom pruning: drop an atomic factor when the remaining factors
    // already force it to 1.
    let mut index = 0;
    while index < factors.len() {
        if matches!(factors[index], GExpr::Atom(_)) && factors.len() > 1 {
            let mut others = factors.clone();
            let candidate = others.remove(index);
            let implication = Term::implies(encode_product(&others), encode_factor(&candidate));
            if smt::is_valid(implication) {
                factors.remove(index);
                stats.pruned_implied += 1;
                continue;
            }
        }
        index += 1;
    }

    Some(GExpr::sum(vars, GExpr::mul(factors)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;
    use gexpr::build_query;

    fn gexpr_of(query: &str) -> GExpr {
        build_query(&parse_query(query).unwrap()).unwrap().expr
    }

    fn equivalent(q1: &str, q2: &str) -> bool {
        check_equivalence(&gexpr_of(q1), &gexpr_of(q2)).is_proved()
    }

    #[test]
    fn identical_queries_are_equivalent() {
        assert!(equivalent(
            "MATCH (n:Person) WHERE n.age = 59 RETURN n.name",
            "MATCH (n:Person) WHERE n.age = 59 RETURN n.name"
        ));
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        assert!(equivalent(
            "MATCH (person)-[r:READ]->(book) RETURN person.name",
            "MATCH (x)-[y:READ]->(z) RETURN x.name"
        ));
    }

    #[test]
    fn reversed_direction_is_equivalent() {
        assert!(equivalent("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"));
    }

    #[test]
    fn commuted_predicates_are_equivalent() {
        assert!(equivalent(
            "MATCH (n) WHERE n.a = 1 AND n.b = 2 RETURN n",
            "MATCH (n) WHERE n.b = 2 AND n.a = 1 RETURN n"
        ));
    }

    #[test]
    fn the_papers_or_distribution_example() {
        // §IV-C: a single pattern with (p ∨ q) over disjoint ranges equals the
        // UNION ALL of the two branches.
        assert!(equivalent(
            "MATCH (n) WHERE n.age < 10 OR n.age > 20 RETURN n.name",
            "MATCH (n) WHERE n.age < 10 RETURN n.name \
             UNION ALL MATCH (n) WHERE n.age > 20 RETURN n.name"
        ));
    }

    #[test]
    fn split_pattern_is_equivalent() {
        assert!(equivalent(
            "MATCH (a)-[r1]->(b)-[r2]->(c) WHERE r1 <> r2 RETURN a",
            "MATCH (a)-[r1]->(b) MATCH (b)-[r2]->(c) WHERE r1 <> r2 RETURN a"
        ));
    }

    #[test]
    fn different_labels_are_not_proved() {
        assert!(!equivalent("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n"));
    }

    #[test]
    fn different_directions_with_asymmetric_returns_are_not_proved() {
        assert!(!equivalent("MATCH (a)-[r]->(b) RETURN b", "MATCH (a)-[r]->(b) RETURN a"));
    }

    #[test]
    fn union_all_vs_union_is_not_proved() {
        assert!(!equivalent(
            "MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b",
            "MATCH (a) RETURN a UNION MATCH (b) RETURN b"
        ));
    }

    #[test]
    fn contradictory_predicates_make_queries_empty_and_equivalent() {
        // Both queries always return the empty bag.
        assert!(equivalent(
            "MATCH (n) WHERE n.age = 1 AND n.age = 2 RETURN n",
            "MATCH (m:Person) WHERE m.x < 1 AND m.x > 1 RETURN m"
        ));
    }

    #[test]
    fn implied_predicates_are_pruned() {
        assert!(equivalent(
            "MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n",
            "MATCH (n) WHERE n.age > 5 RETURN n"
        ));
    }

    #[test]
    fn distinct_vs_plain_is_not_proved() {
        assert!(!equivalent("MATCH (n) RETURN DISTINCT n.name", "MATCH (n) RETURN n.name"));
    }

    #[test]
    fn limit_values_must_agree() {
        assert!(equivalent(
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 5",
            "MATCH (m) RETURN m ORDER BY m.age LIMIT 5"
        ));
        assert!(!equivalent(
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 5",
            "MATCH (n) RETURN n ORDER BY n.age LIMIT 6"
        ));
    }

    #[test]
    fn aggregates_with_same_usage_are_equivalent() {
        assert!(equivalent(
            "MATCH (n:Person) RETURN SUM(n.age)",
            "MATCH (m:Person) RETURN SUM(m.age)"
        ));
        assert!(!equivalent(
            "MATCH (n:Person) RETURN SUM(n.age)",
            "MATCH (n:Person) RETURN SUM(n.salary)"
        ));
    }

    #[test]
    fn with_renaming_is_equivalent_to_direct_projection() {
        assert!(equivalent("MATCH (x) WITH x.name AS name RETURN name", "MATCH (x) RETURN x.name"));
    }

    #[test]
    fn stats_report_pruning() {
        let g1 = gexpr_of("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n");
        let g2 = gexpr_of("MATCH (n) WHERE n.age > 5 RETURN n");
        let (decision, stats) = check_equivalence_with_stats(&g1, &g2);
        assert!(decision.is_proved());
        assert!(stats.pruned_implied >= 1);
    }
}
