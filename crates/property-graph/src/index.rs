//! Per-graph adjacency index: the candidate-enumeration accelerator behind
//! the pattern matcher.
//!
//! The linear-scan matcher (kept as [`crate::matching::scan`]) re-walks every
//! relationship of the graph for every hop of every partial match. The
//! [`AdjacencyIndex`] is built **once per graph** (lazily, on first use, via
//! [`crate::PropertyGraph::adjacency`]) and turns each enumeration into a
//! lookup:
//!
//! * **per-node out/in adjacency lists** — `(relationship, neighbour,
//!   interned type)` entries sorted by relationship id, so a hop touches only
//!   the node's actual degree instead of `|R|`, and relationship-type
//!   filtering is an integer compare instead of a string compare. The lists
//!   are deliberately *not* segmented per type: keeping them in relationship-
//!   id order preserves the scan matcher's deterministic enumeration order
//!   bit for bit (which `LIMIT` without `ORDER BY` can observe), so the
//!   indexed matcher is a drop-in replacement, not merely bag-equivalent.
//! * **per-label node bitsets** — `MATCH (n:Label)` enumerations intersect
//!   label bitsets (64 nodes per word) instead of testing every node's label
//!   set; iteration yields node ids in ascending order, again matching the
//!   scan order.
//! * **property-key bitsets** — nodes/relationships carrying each property
//!   key. A pattern like `{age: 5}` can only match an entity that *has* the
//!   key (`cypher_eq` against `NULL` is never `TRUE`), so key bitsets prune
//!   candidates before any expression is evaluated.
//!
//! Index construction is O(|N| + |R|) and its cumulative cost is observable
//! through [`build_stats`] — the PR 3 benchmark reports it so the index can
//! never silently eat its own speedup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::graph::{NodeId, PropertyGraph, RelId};

/// A fixed-capacity bitset over node (or relationship) ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdBitset {
    words: Vec<u64>,
    /// Capacity in bits (ids `>= len` are always absent).
    len: usize,
}

impl IdBitset {
    /// An empty bitset able to hold ids `0..len`.
    pub fn new(len: usize) -> Self {
        IdBitset { words: vec![0; len.div_ceil(64)], len }
    }

    /// A bitset with every id in `0..len` set.
    pub fn full(len: usize) -> Self {
        let mut set = IdBitset::new(len);
        for (index, word) in set.words.iter_mut().enumerate() {
            let remaining = len - index * 64;
            *word = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
        set
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: u32) {
        let id = id as usize;
        debug_assert!(id < self.len);
        self.words[id / 64] |= 1u64 << (id % 64);
    }

    /// Whether the id is present.
    pub fn contains(&self, id: u32) -> bool {
        let id = id as usize;
        id < self.len && self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Intersects in place (`self &= other`).
    pub fn intersect_with(&mut self, other: &IdBitset) {
        for (word, other_word) in self.words.iter_mut().zip(&other.words) {
            *word &= other_word;
        }
        if other.words.len() < self.words.len() {
            for word in &mut self.words[other.words.len()..] {
                *word = 0;
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set ids in ascending order (word-by-word, peeling the
    /// lowest set bit — no per-bit scan over empty words).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(index, &word)| {
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                if w & (w - 1) == 0 {
                    None
                } else {
                    Some(w & (w - 1))
                }
            })
            .map(move |w| (index * 64 + w.trailing_zeros() as usize) as u32)
        })
    }
}

/// One adjacency entry: a relationship incident to the indexed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    /// The relationship.
    pub rel: RelId,
    /// The node on the far side (for self-loops, the node itself).
    pub neighbour: NodeId,
    /// The interned relationship type ([`AdjacencyIndex::rel_type_id`]).
    pub type_id: u32,
}

/// The per-graph index consulted by the pattern matcher. See the module
/// documentation for the layout rationale.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjacencyIndex {
    /// Interned relationship types (`label -> dense id`).
    rel_types: HashMap<String, u32>,
    /// Outgoing adjacency per source node, sorted by relationship id.
    out: Vec<Vec<AdjEntry>>,
    /// Incoming adjacency per target node, sorted by relationship id.
    inn: Vec<Vec<AdjEntry>>,
    /// Node-label bitsets over node ids.
    label_nodes: HashMap<String, IdBitset>,
    /// Property-key bitsets over node ids.
    node_keys: HashMap<String, IdBitset>,
    /// Property-key bitsets over relationship ids.
    rel_keys: HashMap<String, IdBitset>,
    node_count: usize,
}

/// Cumulative number of [`AdjacencyIndex::build`] calls in this process.
static BUILD_COUNT: AtomicU64 = AtomicU64::new(0);
/// Cumulative wall-clock nanoseconds spent building indexes.
static BUILD_NANOS: AtomicU64 = AtomicU64::new(0);

/// Process-wide index construction stats: `(builds, total wall clock)`.
/// The PR 3 benchmark reports these so index construction cost stays visible.
pub fn build_stats() -> (u64, Duration) {
    (BUILD_COUNT.load(Ordering::Relaxed), Duration::from_nanos(BUILD_NANOS.load(Ordering::Relaxed)))
}

/// Resets [`build_stats`] (benchmark scoping).
pub fn reset_build_stats() {
    BUILD_COUNT.store(0, Ordering::Relaxed);
    BUILD_NANOS.store(0, Ordering::Relaxed);
}

impl AdjacencyIndex {
    /// Builds the index for a graph in one O(|N| + |R|) pass.
    pub fn build(graph: &PropertyGraph) -> AdjacencyIndex {
        let start = Instant::now();
        let node_count = graph.node_count();
        let rel_count = graph.relationship_count();
        let mut index = AdjacencyIndex {
            out: vec![Vec::new(); node_count],
            inn: vec![Vec::new(); node_count],
            node_count,
            ..AdjacencyIndex::default()
        };
        for id in graph.node_ids() {
            let node = graph.node(id);
            for label in &node.labels {
                index
                    .label_nodes
                    .entry(label.clone())
                    .or_insert_with(|| IdBitset::new(node_count))
                    .insert(id.0);
            }
            for key in node.properties.keys() {
                index
                    .node_keys
                    .entry(key.clone())
                    .or_insert_with(|| IdBitset::new(node_count))
                    .insert(id.0);
            }
        }
        for id in graph.relationship_ids() {
            let rel = graph.relationship(id);
            let next_type = index.rel_types.len() as u32;
            let type_id = *index.rel_types.entry(rel.label.clone()).or_insert(next_type);
            // Relationship ids are visited in ascending order, so pushing
            // keeps every adjacency list sorted by relationship id.
            index.out[rel.source.0 as usize].push(AdjEntry {
                rel: id,
                neighbour: rel.target,
                type_id,
            });
            index.inn[rel.target.0 as usize].push(AdjEntry {
                rel: id,
                neighbour: rel.source,
                type_id,
            });
            for key in rel.properties.keys() {
                index
                    .rel_keys
                    .entry(key.clone())
                    .or_insert_with(|| IdBitset::new(rel_count))
                    .insert(id.0);
            }
        }
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        BUILD_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        index
    }

    /// The interned id of a relationship type, or `None` when no relationship
    /// of the graph carries it (no candidate can match).
    pub fn rel_type_id(&self, label: &str) -> Option<u32> {
        self.rel_types.get(label).copied()
    }

    /// Outgoing adjacency entries of `node`, sorted by relationship id.
    pub fn outgoing(&self, node: NodeId) -> &[AdjEntry] {
        &self.out[node.0 as usize]
    }

    /// Incoming adjacency entries of `node`, sorted by relationship id.
    pub fn incoming(&self, node: NodeId) -> &[AdjEntry] {
        &self.inn[node.0 as usize]
    }

    /// The nodes carrying `label`, or `None` when no node does.
    pub fn nodes_with_label(&self, label: &str) -> Option<&IdBitset> {
        self.label_nodes.get(label)
    }

    /// The nodes carrying property `key`, or `None` when no node does.
    pub fn nodes_with_key(&self, key: &str) -> Option<&IdBitset> {
        self.node_keys.get(key)
    }

    /// Whether relationship `rel` carries property `key`.
    pub fn rel_has_key(&self, rel: RelId, key: &str) -> bool {
        self.rel_keys.get(key).is_some_and(|set| set.contains(rel.0))
    }

    /// The number of nodes the index was built over.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Intersection of the label bitsets for `labels` (all nodes when the
    /// slice is empty); `None` when some label selects no node at all.
    pub fn label_candidates(&self, labels: &[String]) -> Option<IdBitset> {
        let mut labels = labels.iter();
        let first = match labels.next() {
            None => return Some(IdBitset::full(self.node_count)),
            Some(first) => first,
        };
        let mut result = self.nodes_with_label(first)?.clone();
        for label in labels {
            result.intersect_with(self.nodes_with_label(label)?);
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn bitset_roundtrip_and_iteration_order() {
        let mut set = IdBitset::new(130);
        for id in [0, 3, 63, 64, 65, 129] {
            set.insert(id);
        }
        assert!(set.contains(64));
        assert!(!set.contains(66));
        assert!(!set.contains(200));
        assert_eq!(set.count(), 6);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 3, 63, 64, 65, 129]);
    }

    #[test]
    fn bitset_full_and_intersection() {
        let full = IdBitset::full(70);
        assert_eq!(full.count(), 70);
        assert!(full.contains(69));
        assert!(!full.contains(70));
        let mut a = IdBitset::new(70);
        a.insert(1);
        a.insert(68);
        let mut b = IdBitset::new(70);
        b.insert(68);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![68]);
        // Intersecting with a shorter set clears the tail.
        let mut c = IdBitset::full(70);
        c.intersect_with(&IdBitset::full(10));
        assert_eq!(c.count(), 10);
    }

    #[test]
    fn index_reflects_the_paper_example() {
        let graph = PropertyGraph::paper_example();
        let index = AdjacencyIndex::build(&graph);
        // The book (node 1) has three incoming relationships, no outgoing.
        assert_eq!(index.outgoing(NodeId(1)).len(), 0);
        assert_eq!(index.incoming(NodeId(1)).len(), 3);
        // Adjacency lists are sorted by relationship id.
        let incoming: Vec<_> = index.incoming(NodeId(1)).iter().map(|e| e.rel.0).collect();
        assert_eq!(incoming, vec![0, 1, 2]);
        // WRITE and READ intern to distinct type ids.
        let write = index.rel_type_id("WRITE").unwrap();
        let read = index.rel_type_id("READ").unwrap();
        assert_ne!(write, read);
        assert_eq!(index.rel_type_id("MISSING"), None);
        // Label bitsets: three Person nodes, one Book.
        assert_eq!(index.nodes_with_label("Person").unwrap().count(), 3);
        assert_eq!(index.nodes_with_label("Book").unwrap().iter().collect::<Vec<_>>(), vec![1]);
        assert!(index.nodes_with_label("Missing").is_none());
        // Property keys: `name` on the three persons, `date` on every rel.
        assert_eq!(index.nodes_with_key("name").unwrap().count(), 3);
        assert!(index.rel_has_key(RelId(0), "date"));
        assert!(!index.rel_has_key(RelId(0), "name"));
    }

    #[test]
    fn label_candidates_intersects() {
        let mut graph = PropertyGraph::new();
        graph.add_node(["A"], Vec::<(String, Value)>::new());
        let both = graph.add_node(["A", "B"], Vec::<(String, Value)>::new());
        graph.add_node(["B"], Vec::<(String, Value)>::new());
        let index = AdjacencyIndex::build(&graph);
        let all = index.label_candidates(&[]).unwrap();
        assert_eq!(all.count(), 3);
        let a_and_b = index.label_candidates(&["A".into(), "B".into()]).unwrap();
        assert_eq!(a_and_b.iter().collect::<Vec<_>>(), vec![both.0]);
        assert!(index.label_candidates(&["A".into(), "C".into()]).is_none());
    }

    #[test]
    fn build_stats_accumulate() {
        reset_build_stats();
        let graph = PropertyGraph::paper_example();
        let before = build_stats().0;
        let _ = AdjacencyIndex::build(&graph);
        let _ = AdjacencyIndex::build(&graph);
        assert_eq!(build_stats().0, before + 2);
    }
}
