//! The runtime value model of the Cypher evaluator.
//!
//! Values follow Cypher's semantics: `NULL` propagates through most
//! operations, comparisons use three-valued logic, and ordering (used by
//! `ORDER BY` and `DISTINCT`) is a total order over all values so results
//! are deterministic.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::graph::{NodeId, RelId};

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The SQL-like `NULL` value.
    Null,
    /// A boolean.
    Boolean(bool),
    /// A 64-bit integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    String(String),
    /// A list of values.
    List(Vec<Value>),
    /// A map from string keys to values.
    Map(BTreeMap<String, Value>),
    /// A reference to a node of the evaluated graph.
    Node(NodeId),
    /// A reference to a relationship of the evaluated graph.
    Relationship(RelId),
    /// A path: alternating node and relationship references.
    Path(Vec<Value>),
}

impl Value {
    /// Returns `true` if the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean predicate result
    /// (`NULL` ⇒ `None`, non-boolean ⇒ `None`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the numeric value as `f64` if the value is numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Integer(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer value if the value is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(v) => Some(*v),
            _ => None,
        }
    }

    /// Cypher equality (`=`): three-valued, `NULL` compared with anything is
    /// `NULL` (represented as `None`).
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Integer(a), Value::Float(b)) => Some((*a as f64) == *b),
            (Value::Float(a), Value::Integer(b)) => Some(*a == (*b as f64)),
            (Value::List(a), Value::List(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                let mut saw_null = false;
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cypher_eq(y) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    None
                } else {
                    Some(true)
                }
            }
            (a, b) => Some(a == b),
        }
    }

    /// Cypher ordering comparison (`<`, `<=`, `>`, `>=`): `NULL` or
    /// incomparable types yield `None`.
    pub fn cypher_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Integer(a), Value::Integer(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Integer(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Integer(b)) => a.partial_cmp(&(*b as f64)),
            (Value::String(a), Value::String(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// A *total* order over all values used for `ORDER BY` and deterministic
    /// bag comparisons. `NULL` sorts last (as in Cypher's default ascending
    /// order); values of different types are ordered by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn type_rank(v: &Value) -> u8 {
            match v {
                Value::Map(_) => 0,
                Value::Node(_) => 1,
                Value::Relationship(_) => 2,
                Value::List(_) => 3,
                Value::Path(_) => 4,
                Value::String(_) => 5,
                Value::Boolean(_) => 6,
                Value::Integer(_) | Value::Float(_) => 7,
                Value::Null => 8,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Integer(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Integer(b)) => a.total_cmp(&(*b as f64)),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Node(a), Value::Node(b)) => a.cmp(b),
            (Value::Relationship(a), Value::Relationship(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) | (Value::Path(a), Value::Path(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let ord = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                            if ord != Ordering::Equal {
                                return ord;
                            }
                        }
                    }
                }
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Addition following Cypher numeric promotion (integer + integer stays
    /// integer). Non-numeric operands (except string concatenation and list
    /// concatenation) produce `NULL`.
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_add(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (Value::String(a), Value::String(b)) => Value::String(format!("{a}{b}")),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Value::List(out)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Subtraction with the same promotion rules as [`Value::add`].
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_sub(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }

    /// Multiplication with the same promotion rules as [`Value::add`].
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_mul(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x * y),
                _ => Value::Null,
            },
        }
    }

    /// Division. Integer division truncates; division by zero yields `NULL`.
    pub fn div(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    a.checked_div(*b).map(Value::Integer).unwrap_or(Value::Null)
                }
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) if y != 0.0 => Value::Float(x / y),
                _ => Value::Null,
            },
        }
    }

    /// Modulo. Modulo by zero yields `NULL`.
    pub fn rem(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a % b)
                }
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) if y != 0.0 => Value::Float(x % y),
                _ => Value::Null,
            },
        }
    }

    /// Exponentiation (always produces a float, as in Cypher).
    pub fn pow(&self, other: &Value) -> Value {
        match (self.as_number(), other.as_number()) {
            (Some(x), Some(y)) => Value::Float(x.powf(y)),
            _ => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "'{s}'"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Node(id) => write!(f, "node({})", id.0),
            Value::Relationship(id) => write!(f, "rel({})", id.0),
            Value::Path(items) => {
                write!(f, "path(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// Three-valued logic conjunction.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued logic disjunction.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued logic exclusive or.
pub fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

/// Three-valued logic negation.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_equality() {
        assert_eq!(Value::Null.cypher_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Null), None);
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Integer(1)), Some(true));
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Integer(2)), Some(false));
    }

    #[test]
    fn mixed_numeric_equality_and_comparison() {
        assert_eq!(Value::Integer(2).cypher_eq(&Value::Float(2.0)), Some(true));
        assert_eq!(Value::Integer(2).cypher_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::String("a".into()).cypher_cmp(&Value::Integer(1)), None);
    }

    #[test]
    fn list_equality_is_elementwise() {
        let a = Value::List(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Value::List(vec![Value::Integer(1), Value::Integer(2)]);
        let c = Value::List(vec![Value::Integer(1), Value::Integer(3)]);
        let with_null = Value::List(vec![Value::Integer(1), Value::Null]);
        assert_eq!(a.cypher_eq(&b), Some(true));
        assert_eq!(a.cypher_eq(&c), Some(false));
        assert_eq!(a.cypher_eq(&with_null), None);
    }

    #[test]
    fn total_order_is_total_and_antisymmetric_on_samples() {
        let samples = vec![
            Value::Null,
            Value::Boolean(true),
            Value::Boolean(false),
            Value::Integer(-3),
            Value::Integer(7),
            Value::Float(2.5),
            Value::String("abc".into()),
            Value::List(vec![Value::Integer(1)]),
            Value::Node(NodeId(0)),
            Value::Relationship(RelId(1)),
        ];
        for a in &samples {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &samples {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn null_sorts_last() {
        assert_eq!(Value::Integer(1).total_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::String("x".into())), Ordering::Greater);
    }

    #[test]
    fn arithmetic_follows_cypher_promotion() {
        assert_eq!(Value::Integer(2).add(&Value::Integer(3)), Value::Integer(5));
        assert_eq!(Value::Integer(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(
            Value::String("ab".into()).add(&Value::String("c".into())),
            Value::String("abc".into())
        );
        assert_eq!(Value::Integer(7).div(&Value::Integer(2)), Value::Integer(3));
        assert_eq!(Value::Integer(7).div(&Value::Integer(0)), Value::Null);
        assert_eq!(Value::Integer(7).rem(&Value::Integer(0)), Value::Null);
        assert_eq!(Value::Integer(1).add(&Value::Null), Value::Null);
        assert_eq!(Value::Integer(i64::MAX).add(&Value::Integer(1)), Value::Null);
    }

    #[test]
    fn list_concatenation() {
        let a = Value::List(vec![Value::Integer(1)]);
        let b = Value::List(vec![Value::Integer(2)]);
        assert_eq!(a.add(&b), Value::List(vec![Value::Integer(1), Value::Integer(2)]));
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Some(true);
        let f = Some(false);
        let n = None;
        assert_eq!(and3(t, t), t);
        assert_eq!(and3(t, f), f);
        assert_eq!(and3(f, n), f);
        assert_eq!(and3(t, n), n);
        assert_eq!(or3(f, f), f);
        assert_eq!(or3(f, t), t);
        assert_eq!(or3(t, n), t);
        assert_eq!(or3(f, n), n);
        assert_eq!(xor3(t, f), t);
        assert_eq!(xor3(t, n), n);
        assert_eq!(not3(t), f);
        assert_eq!(not3(n), n);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Integer(3).to_string(), "3");
        assert_eq!(Value::String("x".into()).to_string(), "'x'");
        assert_eq!(Value::List(vec![Value::Integer(1), Value::Null]).to_string(), "[1, null]");
    }
}
