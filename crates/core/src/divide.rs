//! Divide-and-conquer proving for `ORDER BY ... LIMIT ... SKIP ...` inside
//! subqueries (§IV-B "Sorting with truncation", Listing 2 of the paper).
//!
//! A query whose `WITH` clauses carry `LIMIT`/`SKIP` cannot be modeled as a
//! single G-expression. Instead the query is split at every such `WITH`:
//! the prefix becomes a standalone query whose `RETURN` is the `WITH`
//! projection (keeping its ordering and truncation at the now-outermost
//! level), and the suffix starts from a fresh `MATCH` re-introducing the
//! projected variables. Two queries are then proven equivalent segment by
//! segment — a sufficient condition, exactly as in the paper.

use cypher_parser::ast::{
    Clause, MatchClause, NodePattern, PathPattern, Projection, ProjectionItems, Query, SingleQuery,
};

/// Returns `true` if any `WITH` clause of the query carries `LIMIT` or `SKIP`.
pub fn needs_divide_and_conquer(query: &Query) -> bool {
    query.parts.iter().any(|part| {
        part.clauses.iter().any(|clause| match clause {
            Clause::With(w) => w.projection.skip.is_some() || w.projection.limit.is_some(),
            _ => false,
        })
    })
}

/// Splits a single-part query into segments at every truncating `WITH`.
/// Returns `None` when the query has unions or a truncating `WITH` whose
/// items are not plain variables (the re-introduction step would be unsound).
pub fn split_into_segments(query: &Query) -> Option<Vec<Query>> {
    if !query.is_single() {
        return None;
    }
    let part = &query.parts[0];
    let mut segments = Vec::new();
    let mut current: Vec<Clause> = Vec::new();

    for clause in &part.clauses {
        match clause {
            Clause::With(w) if w.projection.skip.is_some() || w.projection.limit.is_some() => {
                if w.where_clause.is_some() {
                    return None;
                }
                // The prefix segment returns exactly what the WITH projects.
                let mut prefix = current.clone();
                prefix.push(Clause::Return(w.projection.clone()));
                segments.push(Query::single(SingleQuery { clauses: prefix }));

                // The suffix re-introduces the projected plain variables.
                let items = match &w.projection.items {
                    ProjectionItems::Items(items) => items.clone(),
                    ProjectionItems::Star => return None,
                };
                let mut patterns = Vec::new();
                for item in &items {
                    match (&item.alias, &item.expr) {
                        (None, cypher_parser::ast::Expr::Variable(name)) => {
                            patterns.push(PathPattern::node(NodePattern::var(name.clone())));
                        }
                        _ => return None,
                    }
                }
                current = vec![Clause::Match(MatchClause {
                    optional: false,
                    patterns,
                    where_clause: None,
                    span: cypher_parser::Span::dummy(),
                })];
            }
            other => current.push(other.clone()),
        }
    }
    segments.push(Query::single(SingleQuery { clauses: current }));
    Some(segments)
}

/// Builds a `RETURN`-only projection of the given variable names (helper for
/// tests and the prover).
pub fn return_of_variables(names: &[&str]) -> Projection {
    Projection::plain(
        names
            .iter()
            .map(|n| cypher_parser::ast::ProjectionItem::expr(cypher_parser::ast::Expr::var(*n)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;
    use cypher_parser::pretty::query_to_string;

    #[test]
    fn detects_truncating_with() {
        let q = parse_query("MATCH (n) WITH n ORDER BY n.p1 LIMIT 1 MATCH (n)-[]->(m) RETURN m")
            .unwrap();
        assert!(needs_divide_and_conquer(&q));
        let q = parse_query("MATCH (n) WITH n ORDER BY n.p1 MATCH (n)-[]->(m) RETURN m").unwrap();
        assert!(!needs_divide_and_conquer(&q));
    }

    #[test]
    fn splits_listing_2_queries_into_two_segments() {
        let q =
            parse_query("MATCH (n1) WITH n1 ORDER BY n1.p1 LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2")
                .unwrap();
        let segments = split_into_segments(&q).unwrap();
        assert_eq!(segments.len(), 2);
        assert_eq!(query_to_string(&segments[0]), "MATCH (n1) RETURN n1 ORDER BY n1.p1 LIMIT 1");
        assert_eq!(query_to_string(&segments[1]), "MATCH (n1) MATCH (n1)-->(n2) RETURN n2");
    }

    #[test]
    fn refuses_non_variable_projections() {
        let q = parse_query("MATCH (n1) WITH n1.name AS x ORDER BY x LIMIT 1 MATCH (m) RETURN m")
            .unwrap();
        assert!(split_into_segments(&q).is_none());
    }

    #[test]
    fn query_without_truncation_is_one_segment() {
        let q = parse_query("MATCH (n) RETURN n").unwrap();
        let segments = split_into_segments(&q).unwrap();
        assert_eq!(segments.len(), 1);
    }
}
