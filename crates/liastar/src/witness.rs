//! A witness-emitting variant of the paper-faithful tree pipeline.
//!
//! [`prove_with_witness`] re-runs the reference decision procedure (the same
//! algorithms as the private tree oracle in this crate: reference normalizer,
//! cloning iso matcher, no caches) while recording everything an independent
//! checker needs to re-validate the proof without re-running SMT:
//!
//! - which summands were zero-pruned and which atoms were removed as implied
//!   (so the structural simplification can be replayed);
//! - the exact isomorphism pairing when the kept summands matched
//!   bijectively (so the checker can re-unify each pair under one shared
//!   variable mapping);
//! - the class representatives, per-summand assignments, and per-class
//!   counts when class counting decided the proof.
//!
//! Emission is strictly off the hot path: the default arena pipeline is
//! untouched, and callers invoke this module only when a certificate was
//! requested.

use gexpr::{normalize_tree, GExpr};
use smt::{SmtResult, Solver, Term};

use crate::iso::{cloning, VarMapping};
use crate::{encode_factor, encode_product};

/// One kept summand with its simplification record.
#[derive(Debug, Clone, PartialEq)]
pub struct KeptRecord {
    /// Index into the side's original summand list.
    pub index: usize,
    /// Atoms removed as SMT-implied, in removal order.
    pub removed_atoms: Vec<GExpr>,
    /// The simplified summand.
    pub result: GExpr,
}

/// One side's summand accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SideRecord {
    /// Number of summands before pruning.
    pub total: usize,
    /// Indices of summands pruned as identically zero.
    pub zero_pruned: Vec<usize>,
    /// Surviving summands in original order.
    pub kept: Vec<KeptRecord>,
}

/// How the two sides' kept summands were matched.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchingRecord {
    /// `(left kept position, right kept position)` pairs unifiable in order
    /// under a single shared variable mapping.
    Bijection(Vec<(usize, usize)>),
    /// Isomorphism-class counting with a final (trusted-free) count equality.
    Classes {
        /// Class representative expressions.
        representatives: Vec<GExpr>,
        /// Class of each left kept summand.
        left_assign: Vec<usize>,
        /// Class of each right kept summand.
        right_assign: Vec<usize>,
        /// Per-class counts on the left.
        left_counts: Vec<usize>,
        /// Per-class counts on the right.
        right_counts: Vec<usize>,
    },
}

/// The recorded proof tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ProofRecord {
    /// The normalized trees are structurally identical.
    Identical,
    /// Both sides are squashes; the proof continues on the bodies.
    Peel(Box<ProofRecord>),
    /// Summand decomposition, simplification, and matching.
    Summands(Box<SummandsRecord>),
}

/// The summand-level record of one decision step.
#[derive(Debug, Clone, PartialEq)]
pub struct SummandsRecord {
    /// Left side accounting.
    pub left: SideRecord,
    /// Right side accounting.
    pub right: SideRecord,
    /// The matching that closed the proof.
    pub matching: MatchingRecord,
}

/// A complete witness for one pair of G-expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRecord {
    /// The left tree after disjoint-squash splitting and normalization.
    pub left: GExpr,
    /// The right tree after disjoint-squash splitting and normalization.
    pub right: GExpr,
    /// The recorded proof relating them.
    pub proof: ProofRecord,
}

/// Proves `g1 ≡ g2` with the reference tree pipeline, emitting a full
/// witness. Returns `None` when the pipeline cannot establish equivalence
/// (the caller falls back to reporting an emission failure — this does not
/// happen for pairs the arena pipeline proved, which runs the same
/// algorithms).
pub fn prove_with_witness(g1: &GExpr, g2: &GExpr) -> Option<SegmentRecord> {
    let left = normalize_tree(&split_disjoint_squashes(g1));
    let right = normalize_tree(&split_disjoint_squashes(g2));
    if left == right {
        return Some(SegmentRecord { left, right, proof: ProofRecord::Identical });
    }
    let proof = decide(&left, &right)?;
    Some(SegmentRecord { left, right, proof })
}

fn decide(left: &GExpr, right: &GExpr) -> Option<ProofRecord> {
    if let (GExpr::Squash(a), GExpr::Squash(b)) = (left, right) {
        return Some(ProofRecord::Peel(Box::new(decide(a, b)?)));
    }

    let left_side = simplify_summands(to_summands(left));
    let right_side = simplify_summands(to_summands(right));
    let left_results: Vec<GExpr> = left_side.kept.iter().map(|k| k.result.clone()).collect();
    let right_results: Vec<GExpr> = right_side.kept.iter().map(|k| k.result.clone()).collect();

    if let Some(assignment) =
        unify_multiset_recording(&left_results, &right_results, &VarMapping::new())
    {
        let pairs = assignment.into_iter().enumerate().collect();
        return Some(ProofRecord::Summands(Box::new(SummandsRecord {
            left: left_side,
            right: right_side,
            matching: MatchingRecord::Bijection(pairs),
        })));
    }

    let mut representatives: Vec<GExpr> = Vec::new();
    let mut left_assign = Vec::new();
    let mut right_assign = Vec::new();
    for summand in &left_results {
        left_assign.push(class_index(&mut representatives, summand));
    }
    for summand in &right_results {
        right_assign.push(class_index(&mut representatives, summand));
    }
    let mut left_counts = vec![0usize; representatives.len()];
    let mut right_counts = vec![0usize; representatives.len()];
    for &class in &left_assign {
        left_counts[class] += 1;
    }
    for &class in &right_assign {
        right_counts[class] += 1;
    }

    // The reference pipeline discharges count equality through the SMT
    // solver; replicate that here so the emitted witness attests exactly what
    // was proved. (The checker then re-verifies count equality directly.)
    let mut solver = Solver::new();
    let mut left_sum = Vec::new();
    let mut right_sum = Vec::new();
    for (index, _) in representatives.iter().enumerate() {
        let v = Term::int_var(format!("class{index}"));
        solver.assert(Term::ge(v.clone(), Term::int(1)));
        left_sum.push(Term::MulConst(left_counts[index] as i64, Box::new(v.clone())));
        right_sum.push(Term::MulConst(right_counts[index] as i64, Box::new(v)));
    }
    let lhs = if left_sum.is_empty() { Term::int(0) } else { Term::add(left_sum) };
    let rhs = if right_sum.is_empty() { Term::int(0) } else { Term::add(right_sum) };
    solver.assert(Term::neq(lhs, rhs));
    if !matches!(solver.check(), SmtResult::Unsat) {
        return None;
    }
    Some(ProofRecord::Summands(Box::new(SummandsRecord {
        left: left_side,
        right: right_side,
        matching: MatchingRecord::Classes {
            representatives,
            left_assign,
            right_assign,
            left_counts,
            right_counts,
        },
    })))
}

fn class_index(representatives: &mut Vec<GExpr>, summand: &GExpr) -> usize {
    for (index, representative) in representatives.iter().enumerate() {
        if cloning::unify_expr(representative, summand, &VarMapping::new()).is_some() {
            return index;
        }
    }
    representatives.push(summand.clone());
    representatives.len() - 1
}

/// Left-position DFS over right candidates (ascending index, `used` flags),
/// the same search as the cloning matcher but returning the original right
/// index matched by each left position. The recorded pairs unify
/// sequentially under one shared mapping by construction.
fn unify_multiset_recording(
    left: &[GExpr],
    right: &[GExpr],
    mapping: &VarMapping,
) -> Option<Vec<usize>> {
    if left.len() != right.len() {
        return None;
    }
    let mut used = vec![false; right.len()];
    let mut assignment = Vec::with_capacity(left.len());
    fn recurse(
        position: usize,
        left: &[GExpr],
        right: &[GExpr],
        used: &mut [bool],
        assignment: &mut Vec<usize>,
        mapping: &VarMapping,
    ) -> bool {
        if position == left.len() {
            return true;
        }
        for (index, candidate) in right.iter().enumerate() {
            if used[index] {
                continue;
            }
            if let Some(extended) = cloning::unify_expr(&left[position], candidate, mapping) {
                used[index] = true;
                assignment.push(index);
                if recurse(position + 1, left, right, used, assignment, &extended) {
                    return true;
                }
                assignment.pop();
                used[index] = false;
            }
        }
        false
    }
    if recurse(0, left, right, &mut used, &mut assignment, mapping) {
        Some(assignment)
    } else {
        None
    }
}

fn to_summands(expr: &GExpr) -> Vec<GExpr> {
    match expr {
        GExpr::Add(items) => items.clone(),
        GExpr::Zero => Vec::new(),
        other => vec![other.clone()],
    }
}

fn simplify_summands(summands: Vec<GExpr>) -> SideRecord {
    let total = summands.len();
    let mut zero_pruned = Vec::new();
    let mut kept = Vec::new();
    for (index, summand) in summands.into_iter().enumerate() {
        match simplify_summand(&summand) {
            Some((removed_atoms, result)) => kept.push(KeptRecord { index, removed_atoms, result }),
            None => zero_pruned.push(index),
        }
    }
    SideRecord { total, zero_pruned, kept }
}

fn simplify_summand(summand: &GExpr) -> Option<(Vec<GExpr>, GExpr)> {
    let (vars, body) = match summand {
        GExpr::Sum { vars, body } => (vars.clone(), (**body).clone()),
        other => (Vec::new(), other.clone()),
    };
    let mut factors = match body {
        GExpr::Mul(items) => items,
        other => vec![other],
    };

    if smt::check_formula(encode_product(&factors)).is_unsat() {
        return None;
    }

    let mut removed = Vec::new();
    let mut index = 0;
    while index < factors.len() {
        if matches!(factors[index], GExpr::Atom(_)) && factors.len() > 1 {
            let mut others = factors.clone();
            let candidate = others.remove(index);
            let implication = Term::implies(encode_product(&others), encode_factor(&candidate));
            if smt::is_valid(implication) {
                removed.push(factors.remove(index));
                continue;
            }
        }
        index += 1;
    }

    Some((removed, GExpr::sum(vars, GExpr::mul(factors))))
}

fn disjoint(a: &GExpr, b: &GExpr) -> bool {
    let product = Term::and(vec![encode_factor(a), encode_factor(b)]);
    smt::check_formula(product).is_unsat()
}

fn split_disjoint_squashes(expr: &GExpr) -> GExpr {
    match expr {
        GExpr::Squash(inner) => {
            let inner = split_disjoint_squashes(inner);
            if let GExpr::Add(items) = &inner {
                let all_unit = items.iter().all(gexpr::is_zero_one);
                let pairwise_disjoint = all_unit
                    && items
                        .iter()
                        .enumerate()
                        .all(|(i, a)| items.iter().skip(i + 1).all(|b| disjoint(a, b)));
                if pairwise_disjoint {
                    return inner;
                }
            }
            GExpr::squash(inner)
        }
        GExpr::Mul(items) => GExpr::mul(items.iter().map(split_disjoint_squashes).collect()),
        GExpr::Add(items) => GExpr::add(items.iter().map(split_disjoint_squashes).collect()),
        GExpr::Not(inner) => GExpr::not(split_disjoint_squashes(inner)),
        GExpr::Sum { vars, body } => GExpr::sum(vars.clone(), split_disjoint_squashes(body)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;
    use gexpr::build_query;

    fn gexpr_of(query: &str) -> GExpr {
        build_query(&parse_query(query).unwrap()).unwrap().expr
    }

    #[test]
    fn witness_matches_the_tree_pipeline_verdict() {
        let pairs = [
            ("MATCH (n1) RETURN n1", "MATCH (n1) RETURN n1"),
            ("MATCH (n1) RETURN n1.a", "MATCH (n2) RETURN n2.a"),
            (
                "MATCH (n1) WHERE n1.a > 5 AND n1.a > 3 RETURN n1",
                "MATCH (n1) WHERE n1.a > 5 RETURN n1",
            ),
        ];
        for (q1, q2) in pairs {
            let g1 = gexpr_of(q1);
            let g2 = gexpr_of(q2);
            let (decision, _) = crate::check_equivalence_with_opts(
                &g1,
                &g2,
                crate::DecideOptions { tree_normalizer: true },
            );
            assert!(decision.is_proved(), "premise: {q1} ≡ {q2}");
            let witness = prove_with_witness(&g1, &g2);
            assert!(witness.is_some(), "no witness for {q1} ≡ {q2}");
        }
    }

    #[test]
    fn recorded_bijection_unifies_sequentially() {
        let g1 = gexpr_of("MATCH (n1) RETURN n1.a");
        let g2 = gexpr_of("MATCH (n2) RETURN n2.a");
        let witness = prove_with_witness(&g1, &g2).expect("witness exists");
        let ProofRecord::Summands(record) = &witness.proof else {
            // Identical after normalization is also a fine outcome here.
            return;
        };
        let MatchingRecord::Bijection(pairs) = &record.matching else {
            panic!("expected a bijection");
        };
        let mut mapping = VarMapping::new();
        for &(l, r) in pairs {
            let extended = cloning::unify_expr(
                &record.left.kept[l].result,
                &record.right.kept[r].result,
                &mapping,
            )
            .expect("pair unifies under the shared mapping");
            mapping = extended;
        }
    }

    #[test]
    fn implied_atom_removal_is_recorded() {
        let g1 = gexpr_of("MATCH (n1) WHERE n1.a > 5 AND n1.a > 3 RETURN n1");
        let g2 = gexpr_of("MATCH (n1) WHERE n1.a > 5 RETURN n1");
        let witness = prove_with_witness(&g1, &g2).expect("witness exists");
        fn removed_count(proof: &ProofRecord) -> usize {
            match proof {
                ProofRecord::Identical => 0,
                ProofRecord::Peel(inner) => removed_count(inner),
                ProofRecord::Summands(record) => record
                    .left
                    .kept
                    .iter()
                    .chain(record.right.kept.iter())
                    .map(|k| k.removed_atoms.len())
                    .sum(),
            }
        }
        assert!(
            removed_count(&witness.proof) >= 1,
            "the implied atom [n1.a > 3] should be recorded as removed"
        );
    }
}
