//! Exact (lossless) JSON for certificates.
//!
//! Certificates must round-trip integers up to the full `i64` range and
//! floating-point values bit-faithfully, so this module deliberately has **no
//! float variant**: numbers are always integers, and any floating-point datum
//! is carried as a tagged string object (`{"f":"<debug repr>"}`) at the layer
//! above. The parser rejects fractional and exponent literals outright, which
//! makes accidental precision loss a hard error instead of a silent drift.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number. Fractional literals are rejected by [`parse`].
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the bool payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the element list, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the members, if this is an `Obj`.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up a member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact JSON string (`to_string` comes with it).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar starting at pos.
                    let tail = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = tail.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(slice, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not allowed in certificates"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>().map(Json::Int).map_err(|_| self.err("integer out of i64 range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Int(-42)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\"\n")])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("9223372036854775808").is_err());
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        assert_eq!(parse("\"\\u00e9\\ud83d\\ude00\\t\"").unwrap(), Json::str("\u{e9}\u{1F600}\t"));
        assert!(parse("\"\\ud83d\"").is_err());
    }
}
