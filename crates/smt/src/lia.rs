//! Linear integer arithmetic (LIA) consistency checking.
//!
//! Constraints are conjunctions of linear inequalities `Σ cᵢ·xᵢ ≤ d` with
//! integer coefficients (equalities are two opposite inequalities, strict
//! inequalities become non-strict by adding 1 — sound over the integers).
//! Consistency is decided by **Fourier–Motzkin elimination** over the
//! rationals, with a branch-and-bound style case split for integer
//! disequalities:
//!
//! * if the rational relaxation is infeasible, the integer constraints are
//!   certainly infeasible — `Inconsistent` answers are therefore sound;
//! * if the relaxation is feasible the checker answers `Consistent`, which is
//!   a (documented) source of incompleteness: some integer-infeasible but
//!   rational-feasible conjunctions are not refuted. This mirrors the
//!   incompleteness the paper accepts for its LIA\* pipeline (§VI).

use std::collections::BTreeMap;

use crate::euf::TheoryResult;

/// A linear constraint `Σ coeff·var ≤ constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Coefficients per variable name (absent means 0).
    pub coefficients: BTreeMap<String, i64>,
    /// The right-hand side constant.
    pub constant: i64,
}

impl LinearConstraint {
    /// Creates a constraint `Σ coeff·var ≤ constant`.
    pub fn new(coefficients: impl IntoIterator<Item = (String, i64)>, constant: i64) -> Self {
        let mut map = BTreeMap::new();
        for (name, coeff) in coefficients {
            if coeff != 0 {
                *map.entry(name).or_insert(0) += coeff;
            }
        }
        map.retain(|_, c| *c != 0);
        LinearConstraint { coefficients: map, constant }
    }

    /// `lhs ≤ rhs` for single variables.
    pub fn var_le_var(lhs: &str, rhs: &str) -> Self {
        LinearConstraint::new([(lhs.to_string(), 1), (rhs.to_string(), -1)], 0)
    }

    /// `var ≤ constant`.
    pub fn var_le_const(var: &str, constant: i64) -> Self {
        LinearConstraint::new([(var.to_string(), 1)], constant)
    }

    /// `var ≥ constant`.
    pub fn var_ge_const(var: &str, constant: i64) -> Self {
        LinearConstraint::new([(var.to_string(), -1)], -constant)
    }

    fn is_trivial(&self) -> Option<bool> {
        if self.coefficients.is_empty() {
            Some(0 <= self.constant)
        } else {
            None
        }
    }
}

/// A conjunction of linear constraints plus integer disequalities.
#[derive(Debug, Clone, Default)]
pub struct LiaProblem {
    /// The `≤` constraints.
    pub constraints: Vec<LinearConstraint>,
    /// Disequalities `Σ coeff·var ≠ constant`.
    pub disequalities: Vec<LinearConstraint>,
}

impl LiaProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        LiaProblem::default()
    }

    /// Adds `Σ coeff·var ≤ constant`.
    pub fn add_le(&mut self, constraint: LinearConstraint) {
        self.constraints.push(constraint);
    }

    /// Adds `Σ coeff·var = constant` (as two inequalities).
    pub fn add_eq(&mut self, constraint: LinearConstraint) {
        let negated = LinearConstraint {
            coefficients: constraint.coefficients.iter().map(|(k, v)| (k.clone(), -v)).collect(),
            constant: -constraint.constant,
        };
        self.constraints.push(constraint);
        self.constraints.push(negated);
    }

    /// Adds `Σ coeff·var ≠ constant`.
    pub fn add_neq(&mut self, constraint: LinearConstraint) {
        self.disequalities.push(constraint);
    }

    /// Checks consistency. Disequalities are handled by case splitting into
    /// `< `or `>` (over the integers: `≤ c-1` or `≥ c+1`), bounded to keep the
    /// search small.
    pub fn check(&self) -> TheoryResult {
        self.check_split(&self.disequalities, &self.constraints)
    }

    fn check_split(
        &self,
        disequalities: &[LinearConstraint],
        constraints: &[LinearConstraint],
    ) -> TheoryResult {
        match disequalities.split_first() {
            None => {
                if rational_feasible(constraints) {
                    TheoryResult::Consistent
                } else {
                    TheoryResult::Inconsistent
                }
            }
            Some((first, rest)) => {
                // Branch 1: Σ coeff·var ≤ constant - 1.
                let mut less = constraints.to_vec();
                less.push(LinearConstraint {
                    coefficients: first.coefficients.clone(),
                    constant: first.constant - 1,
                });
                if self.check_split(rest, &less) == TheoryResult::Consistent {
                    return TheoryResult::Consistent;
                }
                // Branch 2: Σ coeff·var ≥ constant + 1.
                let mut greater = constraints.to_vec();
                greater.push(LinearConstraint {
                    coefficients: first.coefficients.iter().map(|(k, v)| (k.clone(), -v)).collect(),
                    constant: -(first.constant + 1),
                });
                self.check_split(rest, &greater)
            }
        }
    }
}

/// Fourier–Motzkin elimination: returns `true` if the constraint system has a
/// rational solution.
fn rational_feasible(constraints: &[LinearConstraint]) -> bool {
    let mut system: Vec<LinearConstraint> = constraints.to_vec();
    loop {
        // Check trivial constraints and drop them.
        let mut remaining = Vec::new();
        for constraint in system {
            match constraint.is_trivial() {
                Some(false) => return false,
                Some(true) => {}
                None => remaining.push(constraint),
            }
        }
        system = remaining;
        // Pick the variable occurring in the fewest constraints to limit the
        // quadratic blowup of the elimination step.
        let Some(variable) = pick_variable(&system) else {
            return true;
        };
        let mut lower = Vec::new(); // coeff < 0 (gives lower bounds)
        let mut upper = Vec::new(); // coeff > 0 (gives upper bounds)
        let mut rest = Vec::new();
        for constraint in system {
            match constraint.coefficients.get(&variable).copied().unwrap_or(0) {
                0 => rest.push(constraint),
                c if c > 0 => upper.push(constraint),
                _ => lower.push(constraint),
            }
        }
        // Combine every lower bound with every upper bound.
        for low in &lower {
            for up in &upper {
                let a = -low.coefficients[&variable]; // > 0
                let b = up.coefficients[&variable]; // > 0
                                                    // a·up + b·low eliminates the variable.
                let mut coefficients: BTreeMap<String, i128> = BTreeMap::new();
                for (name, coeff) in &up.coefficients {
                    *coefficients.entry(name.clone()).or_insert(0) += a as i128 * *coeff as i128;
                }
                for (name, coeff) in &low.coefficients {
                    *coefficients.entry(name.clone()).or_insert(0) += b as i128 * *coeff as i128;
                }
                coefficients.retain(|_, c| *c != 0);
                let constant = a as i128 * up.constant as i128 + b as i128 * low.constant as i128;
                // Saturate back to i64; the values stay tiny in practice.
                let combined = LinearConstraint {
                    coefficients: coefficients
                        .into_iter()
                        .map(|(k, v)| (k, v.clamp(i64::MIN as i128, i64::MAX as i128) as i64))
                        .collect(),
                    constant: constant.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                };
                rest.push(combined);
            }
        }
        system = rest;
    }
}

fn pick_variable(constraints: &[LinearConstraint]) -> Option<String> {
    let mut counts: BTreeMap<&String, usize> = BTreeMap::new();
    for constraint in constraints {
        for name in constraint.coefficients.keys() {
            *counts.entry(name).or_insert(0) += 1;
        }
    }
    counts.into_iter().min_by_key(|(_, count)| *count).map(|(name, _)| name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_simple_bounds() {
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::var_ge_const("x", 1));
        problem.add_le(LinearConstraint::var_le_const("x", 5));
        assert_eq!(problem.check(), TheoryResult::Consistent);
    }

    #[test]
    fn infeasible_contradictory_bounds() {
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::var_ge_const("x", 6));
        problem.add_le(LinearConstraint::var_le_const("x", 5));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn chains_of_inequalities() {
        // x ≤ y, y ≤ z, z ≤ x - 1 is infeasible.
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::var_le_var("x", "y"));
        problem.add_le(LinearConstraint::var_le_var("y", "z"));
        problem.add_le(LinearConstraint::new([("z".to_string(), 1), ("x".to_string(), -1)], -1));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
        // Without the -1 it is feasible (all equal).
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::var_le_var("x", "y"));
        problem.add_le(LinearConstraint::var_le_var("y", "z"));
        problem.add_le(LinearConstraint::var_le_var("z", "x"));
        assert_eq!(problem.check(), TheoryResult::Consistent);
    }

    #[test]
    fn equalities_and_disequalities() {
        // x = 3 ∧ x ≠ 3 is inconsistent.
        let mut problem = LiaProblem::new();
        problem.add_eq(LinearConstraint::var_le_const("x", 3));
        problem.add_neq(LinearConstraint::var_le_const("x", 3));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
        // x = 3 ∧ x ≠ 4 is consistent.
        let mut problem = LiaProblem::new();
        problem.add_eq(LinearConstraint::var_le_const("x", 3));
        problem.add_neq(LinearConstraint::var_le_const("x", 4));
        assert_eq!(problem.check(), TheoryResult::Consistent);
    }

    #[test]
    fn disequality_squeeze() {
        // 1 ≤ x ≤ 1 ∧ x ≠ 1 is inconsistent (needs the case split).
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::var_ge_const("x", 1));
        problem.add_le(LinearConstraint::var_le_const("x", 1));
        problem.add_neq(LinearConstraint::var_le_const("x", 1));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn the_papers_lia_star_example() {
        // §IV-C: v1 ≠ v2 + v3 ∧ (v1, v2, v3) = λ1·(1,0,1) + λ2·(0,1,0)
        // with λ1, λ2 ≥ 0 is infeasible: v1 = λ1, v2 = λ2, v3 = λ1 ⇒ v1 = v3
        // and v2 free, so v1 ≠ v2 + v3 becomes λ1 ≠ λ2 + λ1 ⇒ λ2 ≠ 0... which
        // IS satisfiable for λ2 > 0 — but the paper's formula also requires
        // v1 = v2 + v3 to FAIL, i.e. the query difference to be non-zero.
        // Encode exactly the system and check it is inconsistent:
        //   v1 = l1, v2 = l2, v3 = l1, l1 ≥ 0, l2 ≥ 0, l2 = 0  (from g1 = g2
        //   on the second summand), v1 ≠ v2 + v3.
        let mut problem = LiaProblem::new();
        problem.add_eq(LinearConstraint::new([("v1".to_string(), 1), ("l1".to_string(), -1)], 0));
        problem.add_eq(LinearConstraint::new([("v2".to_string(), 1), ("l2".to_string(), -1)], 0));
        problem.add_eq(LinearConstraint::new([("v3".to_string(), 1), ("l1".to_string(), -1)], 0));
        problem.add_le(LinearConstraint::var_ge_const("l1", 0));
        problem.add_le(LinearConstraint::var_ge_const("l2", 0));
        problem.add_eq(LinearConstraint::var_le_const("l2", 0));
        problem.add_neq(LinearConstraint::new(
            [("v1".to_string(), 1), ("v2".to_string(), -1), ("v3".to_string(), -1)],
            0,
        ));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn multi_variable_combination() {
        // x + y ≤ 2 ∧ x ≥ 2 ∧ y ≥ 2 is infeasible.
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::new([("x".to_string(), 1), ("y".to_string(), 1)], 2));
        problem.add_le(LinearConstraint::var_ge_const("x", 2));
        problem.add_le(LinearConstraint::var_ge_const("y", 2));
        assert_eq!(problem.check(), TheoryResult::Inconsistent);
        // x + y ≤ 4 with the same lower bounds is feasible.
        let mut problem = LiaProblem::new();
        problem.add_le(LinearConstraint::new([("x".to_string(), 1), ("y".to_string(), 1)], 4));
        problem.add_le(LinearConstraint::var_ge_const("x", 2));
        problem.add_le(LinearConstraint::var_ge_const("y", 2));
        assert_eq!(problem.check(), TheoryResult::Consistent);
    }
}
