//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The workspace runs in environments without network access to crates.io, so
//! the graph generator cannot depend on the `rand` crate. This module provides
//! the tiny slice of the `rand` API the generator needs — seeding from a
//! `u64`, uniform ranges and Bernoulli draws — on top of the SplitMix64 /
//! xorshift64* family. The generator only needs determinism per seed and a
//! reasonable distribution, not cryptographic quality.

/// A deterministic xorshift64*-based PRNG seeded through SplitMix64.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        // One SplitMix64 step decorrelates adjacent seeds and avoids the
        // all-zero state xorshift cannot leave.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng { state: z | 1 }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform sample from `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift range reduction; the slight modulo bias is irrelevant
        // for the tiny bounds used by the graph generator.
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }

    /// A uniform sample from an inclusive `i64` range.
    pub fn range_inclusive_i64(&mut self, low: i64, high: i64) -> i64 {
        debug_assert!(low <= high);
        let span = (high as i128 - low as i128 + 1) as u64;
        low.wrapping_add(self.below(span) as i64)
    }

    /// A uniform sample from the half-open range `low..high` (`low < high`).
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        debug_assert!(low < high);
        low + self.below((high - low) as u64) as usize
    }

    /// A uniform sample from the inclusive range `low..=high`.
    pub fn range_inclusive_usize(&mut self, low: usize, high: usize) -> usize {
        self.range_usize(low, high + 1)
    }

    /// A Bernoulli draw with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(1);
        let mut c = DetRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.range_inclusive_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            let u = rng.range_usize(0, 10);
            assert!(u < 10);
            let w = rng.range_inclusive_usize(0, 3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets should be hit: {seen:?}");
    }
}
