//! Counterexample search: certifying non-equivalence with a concrete graph.
//!
//! The paper reports that GraphQE rejects every pair of CyNeqSet by finding
//! `∃t. g1(t) ≠ g2(t)` satisfiable. Because our decision procedure abstracts
//! some features, a SAT answer alone is not a proof of non-equivalence;
//! instead the prover searches for a concrete property graph on which the
//! two queries return different bags — a strictly stronger certificate.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cypher_parser::ast::Query;
use property_graph::{evaluate_query, GeneratorConfig, GraphGenerator, PropertyGraph};

use crate::verdict::Counterexample;

/// Configuration of the counterexample search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of random graphs to try (in addition to the deterministic
    /// seed graphs).
    pub random_graphs: usize,
    /// Seed of the random graph generator.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { random_graphs: 120, seed: 0xC0FFEE }
    }
}

/// The full identity of a candidate pool: search parameters plus the
/// query-derived generator vocabulary. Used directly as the cache key (not a
/// hash of it), so distinct configurations can never collide.
#[derive(PartialEq, Eq, Hash)]
struct PoolKey {
    random_graphs: usize,
    seed: u64,
    vocabulary: GeneratorConfig,
}

thread_local! {
    /// Exhausted candidate pools, keyed by the search configuration and the
    /// query-derived generator vocabulary. The generator is deterministic,
    /// so two searches with the same key explore the exact same graphs;
    /// caching the pool once it has been fully generated means repeated
    /// searches over the same vocabulary (equivalent-but-unprovable pairs in
    /// a batch, repeated service requests) skip regeneration entirely. Pools
    /// of searches that exit early with a witness are *not* cached — they
    /// stay lazy.
    static POOL_CACHE: RefCell<HashMap<PoolKey, Rc<Vec<PropertyGraph>>>> =
        RefCell::new(HashMap::new());
}

/// Drops every cached candidate pool of the calling thread. Part of the
/// epoch-based eviction story: the pools (fully generated graph vectors,
/// typically the largest allocations of a worker) would otherwise accumulate
/// one entry per distinct query vocabulary forever. Pure memo — the
/// generator is deterministic, so eviction only costs regeneration.
pub fn clear_thread_pool_cache() {
    POOL_CACHE.with(|cache| cache.borrow_mut().clear());
}

/// Searches for a property graph on which the two queries disagree.
pub fn find_counterexample(
    q1: &Query,
    q2: &Query,
    config: &SearchConfig,
) -> Option<Counterexample> {
    let vocabulary = GeneratorConfig::from_queries(&[q1, q2]);
    let key = PoolKey {
        random_graphs: config.random_graphs,
        seed: config.seed,
        vocabulary: vocabulary.clone(),
    };

    let check = |graph: &PropertyGraph| -> Option<Counterexample> {
        let left = evaluate_query(graph, q1).ok()?;
        let right = evaluate_query(graph, q2).ok()?;
        if !left.bag_equal(&right) {
            return Some(Counterexample {
                graph: graph.clone(),
                left_rows: left.len(),
                right_rows: right.len(),
            });
        }
        None
    };

    if let Some(pool) = POOL_CACHE.with(|cache| cache.borrow().get(&key).cloned()) {
        return pool.iter().find_map(check);
    }

    let mut explored = Vec::new();
    for graph in candidate_graphs(config, vocabulary) {
        if let Some(example) = check(&graph) {
            return Some(example);
        }
        explored.push(graph);
    }
    // The pool was exhausted without a witness; keep it for the next search
    // over the same vocabulary.
    POOL_CACHE.with(|cache| cache.borrow_mut().insert(key, Rc::new(explored)));
    None
}

/// The graphs explored by the search: the paper's Fig. 1 graph, a couple of
/// tiny deterministic graphs, then random graphs of increasing size whose
/// labels, property keys and constants are drawn from the queries themselves
/// (so that their predicates actually select rows).
///
/// The candidates are produced **lazily**: random graphs past the first
/// witnessing counterexample are never generated, let alone evaluated. On
/// CyNeqSet most pairs are separated by one of the deterministic seed graphs
/// or the first few random ones, so the bulk of the (previously eager) pool
/// is skipped entirely.
fn candidate_graphs(
    config: &SearchConfig,
    vocabulary: GeneratorConfig,
) -> impl Iterator<Item = PropertyGraph> {
    // A small dense graph with self-loops and parallel edges: good at
    // separating direction / multiplicity differences.
    let mut dense = PropertyGraph::new();
    let a = dense.add_node(["Person"], [("name", "a".into()), ("age", 1.into()), ("p1", 1.into())]);
    let b = dense.add_node(["Person", "Book"], [("name", "b".into()), ("p1", 2.into())]);
    let c = dense.add_node(Vec::<String>::new(), [("p1", 3.into()), ("age", 3.into())]);
    dense.add_relationship("READ", a, b, [("date", 1.into())]);
    dense.add_relationship("READ", b, a, [("date", 2.into())]);
    dense.add_relationship("KNOWS", a, a, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", a, c, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", c, b, Vec::<(String, property_graph::Value)>::new());
    let seeds = vec![PropertyGraph::new(), PropertyGraph::paper_example(), dense];

    let small_count = config.random_graphs / 2;
    let large_count = config.random_graphs - small_count;
    let mut small = GraphGenerator::with_config(config.seed, vocabulary.clone());
    // A second pool with larger graphs.
    let mut large = GraphGenerator::with_config(
        config.seed.wrapping_add(1),
        GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
    );
    seeds
        .into_iter()
        .chain((0..small_count).map(move |_| small.generate()))
        .chain((0..large_count).map(move |_| large.generate()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn search(q1: &str, q2: &str) -> Option<Counterexample> {
        find_counterexample(
            &parse_query(q1).unwrap(),
            &parse_query(q2).unwrap(),
            &SearchConfig::default(),
        )
    }

    #[test]
    fn finds_direction_flips() {
        let example = search(
            "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
            "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
        );
        assert!(example.is_some());
    }

    #[test]
    fn finds_label_changes() {
        assert!(search("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n").is_some());
    }

    #[test]
    fn finds_distinct_differences() {
        assert!(search(
            "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
            "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title"
        )
        .is_some());
    }

    #[test]
    fn finds_union_vs_union_all() {
        assert!(search(
            "MATCH (n:Person) RETURN n UNION ALL MATCH (n:Person) RETURN n",
            "MATCH (n:Person) RETURN n UNION MATCH (n:Person) RETURN n"
        )
        .is_some());
    }

    #[test]
    fn equivalent_queries_have_no_counterexample() {
        assert!(search("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a").is_none());
    }

    #[test]
    fn repeated_searches_reuse_the_exhausted_pool_and_agree() {
        // An equivalent pair exhausts the pool (no witness) and caches it;
        // the second search over the same vocabulary must reach the same
        // conclusion through the cached pool.
        let q1 = "MATCH (a)-[r]->(b) RETURN a";
        let q2 = "MATCH (b)<-[r]-(a) RETURN a";
        assert!(search(q1, q2).is_none());
        assert!(search(q1, q2).is_none());
        // A non-equivalent pair with the same (default) vocabulary is still
        // separated when scanning the now-cached pool.
        assert!(search("MATCH (a)-[r]->(b) RETURN a", "MATCH (a)-[r]->(b) RETURN b").is_some());
    }

    #[test]
    fn finds_limit_differences() {
        assert!(search(
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 1",
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 2"
        )
        .is_some());
    }
}
