//! CI bench-regression gate.
//!
//! Compares the freshly produced `BENCH_pr8.json` against the committed
//! previous report (`BENCH_pr7.json` by default) and exits non-zero when the
//! end-to-end time regressed by more than 15% or any verdict count changed
//! (CyEqSet must stay at the paper's 138/148 proved pairs).
//!
//! Usage:
//!
//! ```text
//! bench_gate [--current PATH] [--previous PATH] [--tolerance PCT] [--strict]
//!            [--stage search] [--stage eval] [--stage parse]
//!            [--stage normalize]
//! ```
//!
//! The performance comparison evaluates both a baseline-normalized view
//! (hardware-independent) and a raw wall-clock view, failing by default only
//! when **both** regress beyond tolerance — a genuine code regression moves
//! both, environment drift moves one. `--strict` requires each view to pass
//! individually (same-machine comparisons). `--stage search` additionally
//! enforces the counterexample-search stage (derived as e2e minus
//! decide-only from both reports) under the same rule, so search-only
//! regressions are caught like decide-only ones. `--stage eval` enforces the
//! evaluator stage (flat-row evaluation normalized by the in-run map-backed
//! oracle), `--stage parse` the stage-① parse cache (warm parse
//! normalized by the in-run cold parse), and `--stage normalize` the shared
//! stage-②+③ normalize/build cache (warm normalize+build normalized by the
//! in-run cold time). The `--stage` flag repeats. See
//! `graphqe_bench::gate` for the exact rules.

#![forbid(unsafe_code)]

use graphqe_bench::gate::{evaluate, GateConfig};
use graphqe_bench::json::Json;

struct Args {
    current: String,
    previous: String,
    config: GateConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        current: "BENCH_pr8.json".to_string(),
        previous: "BENCH_pr7.json".to_string(),
        config: GateConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--current" => {
                args.current = argv.next().ok_or("--current needs a path")?;
            }
            "--previous" => {
                args.previous = argv.next().ok_or("--previous needs a path")?;
            }
            "--tolerance" => {
                let raw = argv.next().ok_or("--tolerance needs a percentage")?;
                let percent: f64 =
                    raw.parse().map_err(|e| format!("invalid --tolerance {raw}: {e}"))?;
                if !(0.0..1000.0).contains(&percent) {
                    return Err(format!("--tolerance {percent} out of range"));
                }
                args.config.tolerance = percent / 100.0;
            }
            "--strict" => args.config.strict = true,
            "--stage" => {
                let stage = argv.next().ok_or("--stage needs a stage name")?;
                match stage.as_str() {
                    "search" => args.config.stage_search = true,
                    "eval" => args.config.stage_eval = true,
                    "parse" => args.config.stage_parse = true,
                    "normalize" => args.config.stage_normalize = true,
                    other => {
                        return Err(format!(
                            "unknown stage {other} (expected: search, eval, parse, normalize)"
                        ))
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "bench_gate [--current PATH] [--previous PATH] [--tolerance PCT] [--strict] \
                     [--stage search] [--stage eval] [--stage parse] [--stage normalize]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))?;
    Json::parse(&text).map_err(|error| format!("cannot parse {path}: {error}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(error) => {
            eprintln!("bench_gate: {error}");
            std::process::exit(2);
        }
    };
    let reports = (load(&args.current), load(&args.previous));
    let (current, previous) = match reports {
        (Ok(current), Ok(previous)) => (current, previous),
        (Err(error), _) | (_, Err(error)) => {
            eprintln!("bench_gate: {error}");
            std::process::exit(2);
        }
    };

    println!(
        "bench_gate: {} vs {} (tolerance {:.0}%{}{}{}{}{})",
        args.current,
        args.previous,
        args.config.tolerance * 100.0,
        if args.config.strict { ", strict" } else { ", drift-robust" },
        if args.config.stage_search { ", search stage enforced" } else { "" },
        if args.config.stage_eval { ", eval stage enforced" } else { "" },
        if args.config.stage_parse { ", parse stage enforced" } else { "" },
        if args.config.stage_normalize { ", normalize stage enforced" } else { "" },
    );
    let outcome = evaluate(&current, &previous, args.config);
    for line in &outcome.passed {
        println!("  PASS {line}");
    }
    for line in &outcome.failures {
        println!("  FAIL {line}");
    }
    if outcome.is_pass() {
        println!("bench_gate: OK ({} checks)", outcome.passed.len());
    } else {
        println!(
            "bench_gate: FAILED ({} of {} checks)",
            outcome.failures.len(),
            outcome.failures.len() + outcome.passed.len()
        );
        std::process::exit(1);
    }
}
