//! The single source of truth for the built-in scalar functions GraphQE-rs
//! models.
//!
//! The semantic check (stage ①), the static analyzer (stage ⓪) and
//! `property-graph`'s evaluator all dispatch on [`BuiltinFunction`], so the
//! supported set can never drift between the three: adding a function here
//! makes it known to the checker and forces the evaluator's `match` (which
//! is exhaustive over this enum) to handle it.

/// A built-in scalar function of the supported Cypher fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BuiltinFunction {
    /// `id(node_or_relationship)` — the entity id.
    Id,
    /// `labels(node)` — the list of node labels.
    Labels,
    /// `type(relationship)` — the relationship label.
    Type,
    /// `size(list_or_string)` — element / character count.
    Size,
    /// `length(path_or_list_or_string)` — path length (in relationships),
    /// list length or character count.
    Length,
    /// `head(list)` — first element.
    Head,
    /// `last(list)` — last element.
    Last,
    /// `abs(number)` — absolute value.
    Abs,
    /// `toUpper(string)` — uppercase conversion.
    ToUpper,
    /// `toLower(string)` — lowercase conversion.
    ToLower,
    /// `coalesce(v1, v2, ...)` — first non-null argument.
    Coalesce,
    /// `exists(value)` — `true` iff the argument is non-null.
    Exists,
    /// `startNode(relationship)` — source node.
    StartNode,
    /// `endNode(relationship)` — target node.
    EndNode,
    /// `index(list, i)` — list element access.
    Index,
}

impl BuiltinFunction {
    /// Every supported built-in, in canonical order.
    pub const ALL: &'static [BuiltinFunction] = &[
        BuiltinFunction::Id,
        BuiltinFunction::Labels,
        BuiltinFunction::Type,
        BuiltinFunction::Size,
        BuiltinFunction::Length,
        BuiltinFunction::Head,
        BuiltinFunction::Last,
        BuiltinFunction::Abs,
        BuiltinFunction::ToUpper,
        BuiltinFunction::ToLower,
        BuiltinFunction::Coalesce,
        BuiltinFunction::Exists,
        BuiltinFunction::StartNode,
        BuiltinFunction::EndNode,
        BuiltinFunction::Index,
    ];

    /// Resolves a function name case-insensitively (`toUpper`, `TOUPPER` and
    /// `toupper` are all the same function). Returns `None` for names outside
    /// the supported set.
    pub fn from_name(name: &str) -> Option<BuiltinFunction> {
        let lower = name.to_ascii_lowercase();
        BuiltinFunction::ALL.iter().copied().find(|f| f.name() == lower)
    }

    /// The canonical (all-lowercase) name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinFunction::Id => "id",
            BuiltinFunction::Labels => "labels",
            BuiltinFunction::Type => "type",
            BuiltinFunction::Size => "size",
            BuiltinFunction::Length => "length",
            BuiltinFunction::Head => "head",
            BuiltinFunction::Last => "last",
            BuiltinFunction::Abs => "abs",
            BuiltinFunction::ToUpper => "toupper",
            BuiltinFunction::ToLower => "tolower",
            BuiltinFunction::Coalesce => "coalesce",
            BuiltinFunction::Exists => "exists",
            BuiltinFunction::StartNode => "startnode",
            BuiltinFunction::EndNode => "endnode",
            BuiltinFunction::Index => "index",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_case_insensitively() {
        for f in BuiltinFunction::ALL {
            assert_eq!(BuiltinFunction::from_name(f.name()), Some(*f));
            assert_eq!(BuiltinFunction::from_name(&f.name().to_uppercase()), Some(*f));
        }
        assert_eq!(BuiltinFunction::from_name("toUpper"), Some(BuiltinFunction::ToUpper));
        assert_eq!(BuiltinFunction::from_name("startNode"), Some(BuiltinFunction::StartNode));
        assert_eq!(BuiltinFunction::from_name("nosuchfn"), None);
    }
}
