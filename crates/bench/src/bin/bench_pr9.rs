//! PR 9 certificate benchmark: the full PR 8 serving + dataset suite,
//! extended with a **certificate-emission overhead block** — the cost of
//! attaching (and independently checking) a proof certificate to every
//! definite verdict, measured against the plain certificates-off prove.
//!
//! Writes `BENCH_pr9.json` in the `BENCH_pr8.json` schema — so `bench_gate
//! --previous BENCH_pr8.json` can compare reports field by field. The
//! dataset e2e numbers the gate enforces are measured by the unchanged
//! certificates-off prove path; the new top-level `certificates` block
//! records, per dataset: a warm certificates-off replay, the same replay
//! with emission (`prove_certified(check = false)`), the same with emission
//! plus independent validation (`check = true`), the emitted-artifact count
//! (must cover every definite verdict), and the check-failure count (must
//! be zero — a nonzero count means prover/checker skew). The serve and
//! dataset blocks are unchanged from PR 8:
//!
//! * a **cold replay** of every dataset pair as HTTP requests (one pair per
//!   request over a keep-alive connection) against a freshly spawned
//!   server: wall clock, sustained throughput and client-observed p50/p99
//!   latency. The serve benchmark runs *before* the dataset suites, so the
//!   process-wide caches really are cold;
//! * a **warm replay** of the identical mix on the same (now warm) worker,
//!   with the cache hit rates `/v1/stats` reports afterwards. Verdict
//!   counts of both passes are asserted to match the committed corpus
//!   numbers exactly (138/0/10 and 0/121/27);
//! * an **overload drill**: a burst against a one-worker/one-slot server
//!   whose worker is held by an injected stall — the burst must be rejected
//!   with structured `503 overloaded` responses, never buffered;
//! * a **fault drill**: every `GRAPHQE_FAULT` spec (panic/stall at every
//!   stage, forced SMT unknown) armed against a live server; the server
//!   must keep answering with structured responses and stay healthy.
//!
//! Exits non-zero if any pipeline ever disagrees on a verdict, if a replay
//! pass moves a verdict count, or if the server dies under a drill.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cyeqset::{cyeqset, cyneqset, QueryPair};
use cypher_normalizer::normalize_query;
use cypher_parser::parse_and_check;
use graphqe::counterexample::{find_counterexample, find_counterexample_parallel};
use graphqe::{CacheStats, GraphQE, ProveLimits, SearchConfig, Verdict};
use graphqe_bench::{run_pairs_report, table3_rows, PairResult};
use graphqe_serve::json::Json as ServeJson;
use graphqe_serve::{ServeConfig, Server};
use liastar::{check_equivalence_with_opts, DecideOptions};
use limits::faults::{self, FaultKind};
use limits::Stage;
use property_graph::{
    evaluate_query, evaluate_query_scan, Evaluator, GraphGenerator, PropertyGraph,
};

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1000.0
}

/// Minimum wall-clock of three samples of `measured` — the same
/// least-contaminated-estimate rationale as `interleaved_mins`, applied to
/// the parse- and normalize-stage measurements the gate enforces across
/// reports.
fn min_of_samples(mut measured: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            measured();
            ms(start.elapsed())
        })
        .fold(f64::INFINITY, f64::min)
}

/// Rounds of the interleaved measurements below.
const SAMPLE_ROUNDS: usize = 9;

/// Round-robin minima: one sample of every measurement per round, minimum
/// per measurement across rounds. The gate enforces *ratios* of these
/// numbers across reports, and sampling the two sides of a ratio in
/// separate back-to-back blocks lets a single machine-noise burst
/// contaminate one whole block (every sample of one side, none of the
/// other) and flip the ratio. Interleaving puts adjacent samples of both
/// sides under the same burst, and the per-measurement minimum then
/// pierces it — the same rationale as the limits off/on interleave in
/// `run_dataset`.
fn interleaved_mins<const N: usize>(mut measured: [&mut dyn FnMut(); N]) -> [f64; N] {
    let mut mins = [f64::INFINITY; N];
    for _ in 0..SAMPLE_ROUNDS {
        for (slot, measure) in mins.iter_mut().zip(measured.iter_mut()) {
            let start = Instant::now();
            measure();
            *slot = slot.min(ms(start.elapsed()));
        }
    }
    mins
}

/// Times each pipeline stage separately over the dataset (sequentially, so
/// per-stage numbers are comparable across runs and against the committed
/// `BENCH_pr2.json`). Deliberately drives the *uncached* entry points: the
/// cached stage ①/②+③ replays are measured by `parse_stage` and
/// `normalize_stage` below.
fn stage_breakdown(pairs: &[QueryPair]) -> Vec<(&'static str, f64)> {
    let mut parse = Duration::ZERO;
    let mut rules = Duration::ZERO;
    let mut build = Duration::ZERO;
    let mut decide_tree = Duration::ZERO;
    let mut decide_arena = Duration::ZERO;
    for pair in pairs {
        let start = Instant::now();
        let parsed1 = parse_and_check(&pair.left);
        let parsed2 = parse_and_check(&pair.right);
        parse += start.elapsed();
        let (Ok(q1), Ok(q2)) = (parsed1, parsed2) else { continue };

        let start = Instant::now();
        let n1 = normalize_query(&q1);
        let n2 = normalize_query(&q2);
        rules += start.elapsed();

        let start = Instant::now();
        let built1 = gexpr::build_query(&n1);
        let built2 = gexpr::build_query(&n2);
        build += start.elapsed();
        let (Ok(b1), Ok(b2)) = (built1, built2) else { continue };

        let start = Instant::now();
        let tree = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: true },
        );
        decide_tree += start.elapsed();

        let start = Instant::now();
        let arena = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: false },
        );
        decide_arena += start.elapsed();
        assert_eq!(tree.0, arena.0, "decide mismatch on {} vs {}", pair.left, pair.right);
    }
    vec![
        ("parse_check", ms(parse)),
        ("rule_normalize", ms(rules)),
        ("gexpr_build", ms(build)),
        ("decide_tree", ms(decide_tree)),
        ("decide_arena", ms(decide_arena)),
    ]
}

/// Search-stage measurements over the pairs the prover actually searches
/// (those whose verdict is not EQUIVALENT), plus the scan-vs-indexed oracle
/// evaluation micro-comparison over a fixed graph set.
struct SearchStage {
    /// Sequential (lazy) search over all searched pairs, warm pools.
    sequential_ms: f64,
    /// Parallel search over the same pairs (identical on a 1-core machine).
    parallel_ms: f64,
    /// Evaluating every pair's two queries over the fixed graph set with the
    /// linear-scan matcher.
    oracle_scan_ms: f64,
    /// The same evaluations through the adjacency index.
    oracle_indexed_ms: f64,
    /// Pool index of every witness discovered by the main run, in pair
    /// order. The distribution shows how early the pool separates pairs.
    witness_indices: Vec<usize>,
    /// Search-result memo hits/misses over the optimized timed runs.
    memo_hits: u64,
    memo_misses: u64,
}

/// The fixed oracle workload shared by the search- and eval-stage
/// measurements: one graph pool and one parsed copy of every dataset pair,
/// built once per dataset run.
struct OracleWorkload {
    graphs: Vec<PropertyGraph>,
    parsed: Vec<(cypher_parser::ast::Query, cypher_parser::ast::Query)>,
}

impl OracleWorkload {
    fn new(pairs: &[QueryPair]) -> Self {
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::new(0xBEEF).generate_many(16));
        let parsed = pairs
            .iter()
            .filter_map(|pair| {
                Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
            })
            .collect();
        OracleWorkload { graphs, parsed }
    }
}

fn search_stage(
    pairs: &[QueryPair],
    results: &[PairResult],
    workload: &OracleWorkload,
    threads: usize,
) -> SearchStage {
    let witness_indices: Vec<usize> = results
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::NotEquivalent(example) => Some(example.pool_index),
            _ => None,
        })
        .collect();

    // The searched pairs: everything the decision stage could not prove.
    let searched: Vec<(_, _)> = pairs
        .iter()
        .zip(results)
        .filter(|(_, r)| !r.verdict.is_equivalent())
        .filter_map(|(pair, _)| {
            Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
        })
        .collect();
    // Memo bypassed: these timings must measure the search machinery itself
    // (pool iteration, evaluation, worker scheduling), not memo replay.
    // Pools stay shared/warm, which is what both variants see in steady
    // state. The four measurements are sampled interleaved because the gate
    // enforces the sequential/scan ratio across reports — see
    // `interleaved_mins`. Scan-vs-indexed oracle evaluation runs over the
    // shared fixed workload: the evaluator is what the search spends its
    // time in, so it isolates the adjacency index's contribution from pool
    // caching and early exits.
    let config = SearchConfig { use_memo: false, ..SearchConfig::default() };

    let mut sequential = || {
        for (q1, q2) in &searched {
            let _ = find_counterexample(q1, q2, &config);
        }
    };
    let mut parallel = || {
        for (q1, q2) in &searched {
            let _ = find_counterexample_parallel(q1, q2, &config, threads.max(2));
        }
    };
    let mut oracle_scan = || {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query_scan(graph, q1);
                let _ = evaluate_query_scan(graph, q2);
            }
        }
    };
    let mut oracle_indexed = || {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query(graph, q1);
                let _ = evaluate_query(graph, q2);
            }
        }
    };
    let [sequential_ms, parallel_ms, oracle_scan_ms, oracle_indexed_ms] =
        interleaved_mins([&mut sequential, &mut parallel, &mut oracle_scan, &mut oracle_indexed]);

    SearchStage {
        sequential_ms,
        parallel_ms,
        oracle_scan_ms,
        oracle_indexed_ms,
        witness_indices,
        memo_hits: 0,
        memo_misses: 0,
    }
}

/// Eval-stage measurements: every dataset query evaluated over a fixed
/// graph set under both row representations crossed with both matching
/// paths. The flat/map ratios are what `bench_gate --stage eval` enforces
/// across reports; the scan/indexed pairs additionally locate a regression
/// (row bookkeeping vs candidate enumeration).
struct EvalStage {
    /// Flat interned-symbol rows, adjacency-indexed matching (the
    /// production configuration of the counterexample oracle).
    flat_indexed_ms: f64,
    /// Flat rows over the linear-scan matcher.
    flat_scan_ms: f64,
    /// Map-backed rows (the differential oracle), indexed matching.
    map_indexed_ms: f64,
    /// Map-backed rows over the linear-scan matcher.
    map_scan_ms: f64,
    /// Flat rows through the name-resolving AST interpreter (the PR 5
    /// differential oracle for the compiled plans), indexed matching.
    interp_indexed_ms: f64,
    /// The interpreter over the linear-scan matcher.
    interp_scan_ms: f64,
}

fn eval_stage(workload: &OracleWorkload) -> EvalStage {
    // Plan once per query (what the search does), so the timings compare
    // evaluation proper — row bookkeeping and candidate enumeration —
    // across the six configurations.
    let prepare = |scan_matching: bool, map_rows: bool, interpret_patterns: bool| {
        let evaluator =
            Evaluator { scan_matching, map_rows, interpret_patterns, ..Evaluator::new() };
        let prepared: Vec<_> = workload
            .parsed
            .iter()
            .map(|(q1, q2)| (evaluator.prepare(q1), evaluator.prepare(q2)))
            .collect();
        (evaluator, prepared)
    };
    // (scan_matching, map_rows, interpret_patterns), in EvalStage field order.
    let configs = [
        prepare(false, false, false),
        prepare(true, false, false),
        prepare(false, true, false),
        prepare(true, true, false),
        prepare(false, false, true),
        prepare(true, false, true),
    ];
    // Sampled interleaved because the gate enforces the flat/map ratios
    // across reports — see `interleaved_mins`.
    let mut runs: Vec<_> = configs
        .iter()
        .map(|(evaluator, prepared)| {
            move || {
                for (left, right) in prepared {
                    for graph in &workload.graphs {
                        let _ = evaluator.evaluate_prepared(graph, left);
                        let _ = evaluator.evaluate_prepared(graph, right);
                    }
                }
            }
        })
        .collect();
    let [fi, fs, mi, mps, ii, is] = &mut runs[..] else { unreachable!() };
    let mins = interleaved_mins([fi, fs, mi, mps, ii, is]);
    EvalStage {
        flat_indexed_ms: mins[0],
        flat_scan_ms: mins[1],
        map_indexed_ms: mins[2],
        map_scan_ms: mins[3],
        interp_indexed_ms: mins[4],
        interp_scan_ms: mins[5],
    }
}

/// Parse-stage measurements: stage ① over every pair text of the dataset,
/// cold (cache cleared before each sample) vs warm (every text already
/// cached). The warm/cold ratio is what `bench_gate --stage parse`
/// enforces; hit/miss counters come from the timed optimized runs.
struct ParseStage {
    cold_ms: f64,
    warm_ms: f64,
    /// Parse-cache hits/misses over the timed optimized runs.
    hits: u64,
    misses: u64,
}

fn parse_stage(pairs: &[QueryPair]) -> ParseStage {
    let parse_all = || {
        for pair in pairs {
            let _ = graphqe::parse_check_cached(&pair.left);
            let _ = graphqe::parse_check_cached(&pair.right);
        }
    };
    let cold_ms = min_of_samples(|| {
        graphqe::clear_parse_cache();
        parse_all();
    });
    // Every text is now cached: the warm samples measure pure replay.
    let warm_ms = min_of_samples(parse_all);
    ParseStage { cold_ms, warm_ms, hits: 0, misses: 0 }
}

/// Normalize-stage measurements (PR 8): stages ②+③ — rule normalization
/// plus the G-expression build — over every pair text of the dataset,
/// through the shared normalize/build cache. Cold clears the cache before
/// each sample and so pays the full rewrite + build cost; warm replays the
/// memoized entries. The warm/cold ratio is what `bench_gate --stage
/// normalize` enforces; hit/miss counters come from the timed optimized
/// runs.
struct NormalizeStage {
    cold_ms: f64,
    warm_ms: f64,
    /// Normalize-cache hits/misses over the timed optimized runs.
    hits: u64,
    misses: u64,
}

fn normalize_stage(pairs: &[QueryPair]) -> NormalizeStage {
    // Parse once up front through the shared parse cache: the normalize
    // cache keys on the parsed `Arc<Query>` identity, so reusing the same
    // Arcs across samples is exactly the production replay pattern, and no
    // sample pays stage-① cost.
    let parsed: Vec<_> = pairs
        .iter()
        .flat_map(|pair| [&pair.left, &pair.right])
        .filter_map(|text| graphqe::parse_check_cached(text).ok())
        .collect();
    let normalize_all = || {
        for query in &parsed {
            if let Ok(stages) = graphqe::normalized_stages(query) {
                let _ = stages.build();
            }
        }
    };
    let cold_ms = min_of_samples(|| {
        graphqe::clear_normalize_cache();
        normalize_all();
    });
    // Every query is now cached with its build memoized: the warm samples
    // measure pure replay off the shared entries.
    let warm_ms = min_of_samples(normalize_all);
    NormalizeStage { cold_ms, warm_ms, hits: 0, misses: 0 }
}

/// Warm end-to-end cost of the cooperative limits layer (PR 6): the
/// optimized pipeline with no run token installed (`off`, the default) vs a
/// token with generous never-tripping budgets (`on`), so every checkpoint,
/// deadline probe and step counter executes.
struct LimitsOverhead {
    off_ms: f64,
    on_ms: f64,
    /// `on / off` — the acceptance target is < 1.05.
    overhead: f64,
}

struct DatasetRun {
    name: &'static str,
    baseline_ms: f64,
    arena_ms: f64,
    speedup: f64,
    /// The same comparison with the (pipeline-independent) counterexample
    /// search disabled: the speedup of the decision stages in isolation.
    baseline_decide_only_ms: f64,
    arena_decide_only_ms: f64,
    decide_only_speedup: f64,
    equivalent: usize,
    not_equivalent: usize,
    unknown: usize,
    stages: Vec<(&'static str, f64)>,
    cache: CacheStats,
    search: SearchStage,
    eval: EvalStage,
    parse: ParseStage,
    normalize: NormalizeStage,
    index_builds: u64,
    index_build_ms: f64,
    limits: LimitsOverhead,
    unknown_reasons: BTreeMap<String, usize>,
}

fn classify(results: &[PairResult]) -> (usize, usize, usize) {
    let equivalent = results.iter().filter(|r| r.verdict.is_equivalent()).count();
    let not_equivalent = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
    (equivalent, not_equivalent, results.len() - equivalent - not_equivalent)
}

/// The failure taxonomy of a run's unknown verdicts, keyed by the
/// category's display form (mirrors `BatchReport::unknown_reason_counts`).
fn unknown_reasons(results: &[PairResult]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for result in results {
        if let Some(category) = result.verdict.failure_category() {
            *counts.entry(category.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// Whole-suite repetitions per dataset, merged by per-field minima
/// (`min_merge`). One pass's interleaved rounds span only a few seconds —
/// shorter than the multi-second load bursts of a busy shared host, so a
/// burst can still contaminate every sample of one measurement within a
/// pass. Repeating the whole pass with idle gaps spreads the samples over
/// enough wall-clock that each enforced field sees at least one quiet
/// window, which is what makes the committed report reproducible.
const SUITE_REPS: usize = 3;
const SUITE_GAP: Duration = Duration::from_secs(3);

/// Per-field minima of two measurement passes. Timings take the quieter
/// sample; deterministic outputs (verdict counts, witness indices, failure
/// taxonomy) are asserted identical; counters keep the first pass's values
/// (they describe one pass's timed runs, and later passes run warmer).
fn min_merge(mut best: DatasetRun, next: DatasetRun) -> DatasetRun {
    assert_eq!(
        (best.equivalent, best.not_equivalent, best.unknown),
        (next.equivalent, next.not_equivalent, next.unknown),
        "verdict counts changed between measurement passes"
    );
    assert_eq!(
        best.unknown_reasons, next.unknown_reasons,
        "failure taxonomy changed between measurement passes"
    );
    assert_eq!(
        best.search.witness_indices, next.search.witness_indices,
        "witness indices changed between measurement passes"
    );
    best.baseline_ms = best.baseline_ms.min(next.baseline_ms);
    best.arena_ms = best.arena_ms.min(next.arena_ms);
    best.baseline_decide_only_ms = best.baseline_decide_only_ms.min(next.baseline_decide_only_ms);
    best.arena_decide_only_ms = best.arena_decide_only_ms.min(next.arena_decide_only_ms);
    best.speedup = best.baseline_ms / best.arena_ms.max(f64::EPSILON);
    best.decide_only_speedup =
        best.baseline_decide_only_ms / best.arena_decide_only_ms.max(f64::EPSILON);
    for (slot, (stage, value)) in best.stages.iter_mut().zip(&next.stages) {
        assert_eq!(slot.0, *stage, "stage order changed between measurement passes");
        slot.1 = slot.1.min(*value);
    }
    best.search.sequential_ms = best.search.sequential_ms.min(next.search.sequential_ms);
    best.search.parallel_ms = best.search.parallel_ms.min(next.search.parallel_ms);
    best.search.oracle_scan_ms = best.search.oracle_scan_ms.min(next.search.oracle_scan_ms);
    best.search.oracle_indexed_ms =
        best.search.oracle_indexed_ms.min(next.search.oracle_indexed_ms);
    best.eval.flat_indexed_ms = best.eval.flat_indexed_ms.min(next.eval.flat_indexed_ms);
    best.eval.flat_scan_ms = best.eval.flat_scan_ms.min(next.eval.flat_scan_ms);
    best.eval.map_indexed_ms = best.eval.map_indexed_ms.min(next.eval.map_indexed_ms);
    best.eval.map_scan_ms = best.eval.map_scan_ms.min(next.eval.map_scan_ms);
    best.eval.interp_indexed_ms = best.eval.interp_indexed_ms.min(next.eval.interp_indexed_ms);
    best.eval.interp_scan_ms = best.eval.interp_scan_ms.min(next.eval.interp_scan_ms);
    best.parse.cold_ms = best.parse.cold_ms.min(next.parse.cold_ms);
    best.parse.warm_ms = best.parse.warm_ms.min(next.parse.warm_ms);
    best.normalize.cold_ms = best.normalize.cold_ms.min(next.normalize.cold_ms);
    best.normalize.warm_ms = best.normalize.warm_ms.min(next.normalize.warm_ms);
    best.limits.off_ms = best.limits.off_ms.min(next.limits.off_ms);
    best.limits.on_ms = best.limits.on_ms.min(next.limits.on_ms);
    best.limits.overhead = best.limits.on_ms / best.limits.off_ms.max(f64::EPSILON);
    best
}

fn run_dataset(name: &'static str, pairs: Vec<QueryPair>, threads: usize) -> DatasetRun {
    let mut merged: Option<DatasetRun> = None;
    for rep in 0..SUITE_REPS {
        if rep > 0 {
            std::thread::sleep(SUITE_GAP);
        }
        let pass = run_dataset_pass(name, pairs.clone(), threads, rep);
        merged = Some(match merged {
            None => pass,
            Some(best) => min_merge(best, pass),
        });
    }
    merged.expect("at least one measurement pass")
}

fn run_dataset_pass(
    name: &'static str,
    pairs: Vec<QueryPair>,
    threads: usize,
    rep: usize,
) -> DatasetRun {
    property_graph::index::reset_build_stats();

    // Baseline: the paper-faithful configuration — reference tree normalizer,
    // cloning iso matcher, no decide caches, one pair at a time on one
    // thread, and the search-result memo disabled so the baseline pays the
    // real counterexample-search cost every sample (it still shares the
    // graph pools, as every configuration has since PR 1).
    let baseline_prover = GraphQE {
        use_tree_normalizer: true,
        search_config: SearchConfig { use_memo: false, ..SearchConfig::default() },
        // The baseline pays the real stage-① cost every sample, like it
        // pays the real search cost (memo off above).
        use_parse_cache: false,
        ..GraphQE::new()
    };
    // Optimized pipeline: id-native decide, indexed oracle evaluation,
    // shared pools, batched over all cores.
    let arena_prover = GraphQE::new();
    // Same two pipelines without the counterexample search (shared by both):
    // the decide-only timings isolate the speedup of the decision stages,
    // and e2e − decide-only is the search-stage time the gate enforces.
    let baseline_ns = GraphQE { search_counterexamples: false, ..baseline_prover.clone() };
    let arena_ns = GraphQE { search_counterexamples: false, ..GraphQE::new() };

    // One untimed warmup per configuration, then the four wall-clock
    // measurements sampled interleaved (see `interleaved_mins`): the gate
    // derives ratios across these numbers (speedups, e2e − decide-only), so
    // each round samples all four under the same machine conditions.
    run_pairs_report(&baseline_prover, pairs.clone(), 1);
    run_pairs_report(&arena_prover, pairs.clone(), threads);
    run_pairs_report(&baseline_ns, pairs.clone(), 1);
    run_pairs_report(&arena_ns, pairs.clone(), threads);

    let (mut baseline, mut arena) = (Vec::new(), Vec::new());
    let mut cache = CacheStats::default();
    let (mut memo_hits, mut memo_misses) = (0u64, 0u64);
    let (mut parse_hits, mut parse_misses) = (0u64, 0u64);
    let (mut normalize_hits, mut normalize_misses) = (0u64, 0u64);
    let mut run_baseline = || baseline = run_pairs_report(&baseline_prover, pairs.clone(), 1).0;
    let mut run_arena = || {
        // Cache counters cover exactly the timed optimized runs, as before
        // the interleave: snapshot around this prover's samples only.
        let memo_before = graphqe::counterexample::search_memo_stats();
        let parse_before = graphqe::parse_cache_stats();
        let normalize_before = graphqe::normalize_cache_stats();
        (arena, cache) = run_pairs_report(&arena_prover, pairs.clone(), threads);
        let memo_after = graphqe::counterexample::search_memo_stats();
        let parse_after = graphqe::parse_cache_stats();
        let normalize_after = graphqe::normalize_cache_stats();
        memo_hits += memo_after.0.saturating_sub(memo_before.0);
        memo_misses += memo_after.1.saturating_sub(memo_before.1);
        parse_hits += parse_after.0.saturating_sub(parse_before.0);
        parse_misses += parse_after.1.saturating_sub(parse_before.1);
        normalize_hits += normalize_after.0.saturating_sub(normalize_before.0);
        normalize_misses += normalize_after.1.saturating_sub(normalize_before.1);
    };
    let mut run_baseline_ns = || drop(run_pairs_report(&baseline_ns, pairs.clone(), 1));
    let mut run_arena_ns = || drop(run_pairs_report(&arena_ns, pairs.clone(), threads));
    let [baseline_ms, arena_ms, baseline_decide_only_ms, arena_decide_only_ms] =
        interleaved_mins([
            &mut run_baseline,
            &mut run_arena,
            &mut run_baseline_ns,
            &mut run_arena_ns,
        ]);

    // The refactor must not move a single verdict.
    for (old, new) in baseline.iter().zip(arena.iter()) {
        assert_eq!(
            (old.verdict.is_equivalent(), old.verdict.is_not_equivalent()),
            (new.verdict.is_equivalent(), new.verdict.is_not_equivalent()),
            "verdict changed on {} vs {}",
            old.pair.left,
            old.pair.right,
        );
    }

    // Limits overhead: the identical optimized pipeline, but with a run
    // token installed whose budgets are generous enough to never trip — a
    // one-hour deadline and effectively unbounded step budgets. Every
    // cooperative checkpoint now really loads the cancel flag, bumps its
    // step counter and (subsampled) probes the deadline clock; the on/off
    // ratio is the end-to-end cost of the PR 6 limits layer. Off/on samples
    // are **interleaved** so both configurations see the same load drift of
    // the shared machine — two back-to-back sample blocks would attribute
    // the drift between them to the limits layer.
    let limited_prover = GraphQE {
        limits: ProveLimits {
            deadline: Some(Duration::from_secs(3600)),
            smt_step_budget: u64::MAX,
            search_graph_budget: u64::MAX,
            ..ProveLimits::default()
        },
        ..GraphQE::new()
    };
    let (limited, _) = run_pairs_report(&limited_prover, pairs.clone(), threads); // warmup
    for (off, on) in arena.iter().zip(limited.iter()) {
        assert_eq!(
            (off.verdict.is_equivalent(), off.verdict.is_not_equivalent()),
            (on.verdict.is_equivalent(), on.verdict.is_not_equivalent()),
            "a never-tripping limits token changed the verdict on {} vs {}",
            off.pair.left,
            off.pair.right,
        );
    }
    let (mut limits_off_ms, mut limits_on_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        let start = Instant::now();
        run_pairs_report(&arena_prover, pairs.clone(), threads);
        limits_off_ms = limits_off_ms.min(ms(start.elapsed()));
        let start = Instant::now();
        run_pairs_report(&limited_prover, pairs.clone(), threads);
        limits_on_ms = limits_on_ms.min(ms(start.elapsed()));
    }
    let limits = LimitsOverhead {
        off_ms: limits_off_ms,
        on_ms: limits_on_ms,
        overhead: limits_on_ms / limits_off_ms.max(f64::EPSILON),
    };

    let (index_builds, index_build) = property_graph::index::build_stats();
    let workload = OracleWorkload::new(&pairs);
    let mut search = search_stage(&pairs, &arena, &workload, threads);
    search.memo_hits = memo_hits;
    search.memo_misses = memo_misses;
    let (equivalent, not_equivalent, unknown) = classify(&arena);
    if name == "cyeqset" && rep == 0 {
        println!("\nTable III (compiled-plan oracle pipeline):");
        print!("{}", graphqe_bench::format_table3(&table3_rows(&arena)));
    }
    let eval = eval_stage(&workload);
    let mut parse = parse_stage(&pairs);
    parse.hits = parse_hits;
    parse.misses = parse_misses;
    let mut normalize = normalize_stage(&pairs);
    normalize.hits = normalize_hits;
    normalize.misses = normalize_misses;
    DatasetRun {
        name,
        baseline_ms,
        arena_ms,
        speedup: baseline_ms / arena_ms.max(f64::EPSILON),
        baseline_decide_only_ms,
        arena_decide_only_ms,
        decide_only_speedup: baseline_decide_only_ms / arena_decide_only_ms.max(f64::EPSILON),
        equivalent,
        not_equivalent,
        unknown,
        stages: stage_breakdown(&pairs),
        cache,
        search,
        eval,
        parse,
        normalize,
        index_builds,
        index_build_ms: ms(index_build),
        limits,
        unknown_reasons: unknown_reasons(&arena),
    }
}

/// One keep-alive HTTP client connection to the benched server.
struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    fn connect(server: &Server) -> ServeClient {
        let stream = TcpStream::connect(server.local_addr()).expect("connect to bench server");
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        // One write per request + no Nagle: without this, head and body land
        // in two small segments and the second waits on a delayed ACK
        // (~40 ms), which would swamp every latency number below.
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        ServeClient { reader: BufReader::new(stream), writer }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, ServeJson) {
        let message = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(message.as_bytes()).unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, ServeJson) {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("Content-Length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("response body");
        let text = String::from_utf8(body).expect("UTF-8 response");
        (status, ServeJson::parse(&text).expect("JSON response"))
    }
}

/// One replay pass: wall clock, throughput, client-observed latency tail.
struct ReplayStats {
    wall_ms: f64,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// The serve block of the report.
struct ServeBench {
    requests_per_pass: usize,
    cold: ReplayStats,
    warm: ReplayStats,
    /// Cache hit rates from `/v1/stats` after the warm pass, in stats order.
    warm_hit_rates: Vec<(String, f64)>,
    /// Per-dataset verdict counts of a replay pass (identical cold/warm).
    verdicts: Vec<(&'static str, usize, usize, usize)>,
    overload_burst: usize,
    overload_rejected: usize,
    fault_specs: usize,
    fault_survived: usize,
    /// Warm worker-scaling replays, one entry per worker count (PR 8).
    scaling: Vec<(usize, ScalingStats)>,
}

/// One worker-scaling replay: wall clock and sustained throughput of two
/// concurrent client connections replaying disjoint halves of the corpus.
struct ScalingStats {
    wall_ms: f64,
    throughput_rps: f64,
}

fn percentile(sorted_us: &[f64], fraction: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 * fraction).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Replays every pair as its own request on one keep-alive connection,
/// returning the pass timings and the verdict counts per dataset.
fn replay_pass(
    client: &mut ServeClient,
    datasets: &[(&'static str, &[QueryPair])],
) -> (ReplayStats, Vec<(&'static str, usize, usize, usize)>) {
    let mut latencies_us = Vec::new();
    let mut verdicts = Vec::new();
    let wall = Instant::now();
    for (name, pairs) in datasets {
        let (mut eq, mut neq, mut unknown) = (0usize, 0usize, 0usize);
        for pair in *pairs {
            let body = format!("{{\"pairs\":[[{:?},{:?}]]}}", pair.left, pair.right);
            let start = Instant::now();
            let (status, response) = client.request("POST", "/v1/prove", &body);
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert_eq!(status, 200, "replay request failed on {} vs {}", pair.left, pair.right);
            eq += response.get("equivalent").and_then(ServeJson::as_u64).unwrap() as usize;
            neq += response.get("not_equivalent").and_then(ServeJson::as_u64).unwrap() as usize;
            unknown += response.get("unknown").and_then(ServeJson::as_u64).unwrap() as usize;
        }
        verdicts.push((*name, eq, neq, unknown));
    }
    let wall_ms = ms(wall.elapsed());
    latencies_us.sort_by(f64::total_cmp);
    let stats = ReplayStats {
        wall_ms,
        throughput_rps: latencies_us.len() as f64 / (wall_ms / 1000.0).max(f64::EPSILON),
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    };
    (stats, verdicts)
}

/// The committed corpus verdict counts every replay pass must reproduce.
const EXPECTED_VERDICTS: [(&str, usize, usize, usize); 2] =
    [("cyeqset", 138, 0, 10), ("cyneqset", 0, 121, 27)];

fn assert_replay_verdicts(label: &str, verdicts: &[(&'static str, usize, usize, usize)]) {
    for ((name, eq, neq, unknown), (expected_name, exp_eq, exp_neq, exp_unknown)) in
        verdicts.iter().zip(&EXPECTED_VERDICTS)
    {
        assert_eq!(name, expected_name);
        assert_eq!(
            (*eq, *neq, *unknown),
            (*exp_eq, *exp_neq, *exp_unknown),
            "{label} replay moved the {name} verdict counts"
        );
    }
}

/// Overload drill: hold the only worker with an injected stall, then burst
/// connections at a one-slot queue — everything past the slot must get a
/// structured `503 overloaded`, and the stalled request must still succeed.
fn overload_drill() -> (usize, usize) {
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    })
    .expect("spawn overload server");
    faults::arm(Stage::Normalize, FaultKind::Stall(Duration::from_millis(600)), 1);
    let mut stalled = ServeClient::connect(&server);
    let body = "{\"pairs\":[[\"MATCH (n) RETURN n\",\"MATCH (m) RETURN m\"]]}";
    let head = format!(
        "POST /v1/prove HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stalled.writer.write_all(head.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    const BURST: usize = 6;
    let mut rejected = 0usize;
    let mut queued = Vec::new();
    for _ in 0..BURST {
        let mut client = ServeClient::connect(&server);
        // A queued connection gets no bytes until the worker frees up; a
        // rejected one gets an inline 503. Distinguish with a short read
        // timeout.
        client.reader.get_ref().set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        let mut probe = [0u8; 12];
        match client.reader.get_mut().read(&mut probe) {
            Ok(n) if n > 0 => {
                let status = std::str::from_utf8(&probe[..n])
                    .ok()
                    .and_then(|line| line.split_whitespace().nth(1).map(str::to_string));
                assert_eq!(status.as_deref(), Some("503"), "burst got a non-overload response");
                rejected += 1;
            }
            _ => queued.push(client),
        }
    }
    let (status, _) = stalled.read_response();
    assert_eq!(status, 200, "the stalled request must still complete");
    faults::disarm();
    drop(queued);
    drop(stalled);
    server.shutdown();
    (BURST, rejected)
}

/// Fault drill: every `GRAPHQE_FAULT` spec armed (one shot) against a live
/// server; each request must come back structured and the server must stay
/// healthy. Returns (specs, survived).
fn fault_drill(server: &Server) -> (usize, usize) {
    let specs: Vec<(Stage, FaultKind)> = Stage::ALL
        .iter()
        .flat_map(|stage| {
            [(*stage, FaultKind::Panic), (*stage, FaultKind::Stall(Duration::from_millis(50)))]
        })
        .chain([(Stage::Smt, FaultKind::SmtUnknown)])
        .collect();
    let mut survived = 0usize;
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut client = ServeClient::connect(server);
    for (stage, kind) in &specs {
        faults::arm(*stage, *kind, 1);
        // Stall faults need a deadline under the 50ms stall to trip; the
        // other kinds degrade on their own.
        let deadline = if matches!(kind, FaultKind::Stall(_)) { ",\"deadline_ms\":25" } else { "" };
        let body = format!(
            "{{\"pairs\":[[\"MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n\",\
             \"MATCH (n) WHERE n.age > 5 RETURN n\"],\
             [\"MATCH (n:Person) RETURN n\",\"MATCH (n:Book) RETURN n\"],\
             [\"MATCH (a)-[r]->(b) RETURN a\",\"MATCH (b)<-[r]-(a) RETURN a\"]]{deadline}}}"
        );
        let (status, response) = client.request("POST", "/v1/prove", &body);
        faults::disarm();
        let results = response.get("results").and_then(ServeJson::as_array);
        let (health, _) = client.request("GET", "/v1/health", "");
        if status == 200 && results.map(<[ServeJson]>::len) == Some(3) && health == 200 {
            survived += 1;
        } else {
            println!("  fault drill FAILED: {kind:?}@{stage} -> status {status}");
        }
    }
    std::panic::set_hook(previous_hook);
    (specs.len(), survived)
}

/// Worker scaling (PR 8): the warm corpus split round-robin into two
/// halves and replayed by two concurrent keep-alive connections against a
/// server with `workers` workers. With one worker the second connection
/// waits in the admission queue, so the halves serialize; with two workers
/// they proceed concurrently — on a multi-core host that splits the wall
/// clock, on the one-core CI box it documents that workers without cores
/// don't help. Either way every artifact comes from the same process-wide
/// substrate, so the combined verdict totals must stay pinned.
fn scaling_pass(workers: usize, eq_pairs: &[QueryPair], neq_pairs: &[QueryPair]) -> ScalingStats {
    let server = Server::spawn(ServeConfig {
        workers,
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    })
    .expect("spawn scaling server");
    let datasets: [(&'static str, &[QueryPair]); 2] =
        [("cyeqset", eq_pairs), ("cyneqset", neq_pairs)];
    // Round-robin split, so both connections carry comparable load.
    let mut halves: [Vec<(&'static str, Vec<QueryPair>)>; 2] = [
        vec![("cyeqset", Vec::new()), ("cyneqset", Vec::new())],
        vec![("cyeqset", Vec::new()), ("cyneqset", Vec::new())],
    ];
    for (dataset_index, (_, pairs)) in datasets.iter().enumerate() {
        for (index, pair) in pairs.iter().enumerate() {
            halves[index % 2][dataset_index].1.push(pair.clone());
        }
    }
    let requests = eq_pairs.len() + neq_pairs.len();
    // One single-connection warmup: the caches are process-wide and warm
    // already, but this server's worker threads are cold.
    let mut client = ServeClient::connect(&server);
    let (_, verdicts) = replay_pass(&mut client, &datasets);
    assert_replay_verdicts("scaling warmup", &verdicts);
    drop(client);

    let mut best_wall_ms = f64::INFINITY;
    for _ in 0..3 {
        let wall = Instant::now();
        let handles: Vec<_> = halves
            .iter()
            .cloned()
            .map(|half| {
                let mut client = ServeClient::connect(&server);
                std::thread::spawn(move || {
                    let view: Vec<(&'static str, &[QueryPair])> =
                        half.iter().map(|(name, pairs)| (*name, pairs.as_slice())).collect();
                    let (_, verdicts) = replay_pass(&mut client, &view);
                    verdicts
                })
            })
            .collect();
        let mut totals = [(0usize, 0usize, 0usize); 2];
        for handle in handles {
            for (name, eq, neq, unknown) in handle.join().expect("scaling client thread") {
                let slot = usize::from(name != "cyeqset");
                totals[slot].0 += eq;
                totals[slot].1 += neq;
                totals[slot].2 += unknown;
            }
        }
        best_wall_ms = best_wall_ms.min(ms(wall.elapsed()));
        for ((eq, neq, unknown), (name, exp_eq, exp_neq, exp_unknown)) in
            totals.iter().zip(&EXPECTED_VERDICTS)
        {
            assert_eq!(
                (*eq, *neq, *unknown),
                (*exp_eq, *exp_neq, *exp_unknown),
                "{workers}-worker scaling replay moved the {name} verdict counts"
            );
        }
    }
    server.shutdown();
    ScalingStats {
        wall_ms: best_wall_ms,
        throughput_rps: requests as f64 / (best_wall_ms / 1000.0).max(f64::EPSILON),
    }
}

/// The full serving benchmark. Must run before the dataset suites: the
/// cold pass is only cold while this process has never parsed, planned or
/// searched the corpus.
fn serve_bench(eq_pairs: &[QueryPair], neq_pairs: &[QueryPair]) -> ServeBench {
    // One worker: every request lands on the same thread-local caches, so
    // the warm pass measures a genuinely warm worker (and the numbers are
    // stable on the one-core CI box).
    let server = Server::spawn(ServeConfig {
        workers: 1,
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    })
    .expect("spawn bench server");
    let datasets: [(&'static str, &[QueryPair]); 2] =
        [("cyeqset", eq_pairs), ("cyneqset", neq_pairs)];

    let mut client = ServeClient::connect(&server);
    let (cold, cold_verdicts) = replay_pass(&mut client, &datasets);
    assert_replay_verdicts("cold", &cold_verdicts);
    let (warm, warm_verdicts) = replay_pass(&mut client, &datasets);
    assert_replay_verdicts("warm", &warm_verdicts);

    let (status, stats) = client.request("GET", "/v1/stats", "");
    assert_eq!(status, 200);
    let warm_hit_rates = match stats.get("caches") {
        Some(ServeJson::Obj(fields)) => fields
            .iter()
            .filter_map(|(name, value)| Some((name.clone(), value.as_f64()?)))
            .collect(),
        _ => Vec::new(),
    };

    // The replay connection would sit idle past the server's read timeout
    // while the drill runs on its own connection; close it and reconnect.
    drop(client);

    let (fault_specs, fault_survived) = fault_drill(&server);
    // The drilled server still replays the corpus correctly afterwards: the
    // injections corrupted no cache.
    let mut client = ServeClient::connect(&server);
    let (_, post_drill_verdicts) = replay_pass(&mut client, &datasets);
    assert_replay_verdicts("post-drill", &post_drill_verdicts);
    drop(client);
    server.shutdown();

    let (overload_burst, overload_rejected) = overload_drill();

    let scaling = [1usize, 2]
        .iter()
        .map(|&workers| (workers, scaling_pass(workers, eq_pairs, neq_pairs)))
        .collect();

    ServeBench {
        requests_per_pass: eq_pairs.len() + neq_pairs.len(),
        cold,
        warm,
        warm_hit_rates,
        verdicts: warm_verdicts,
        overload_burst,
        overload_rejected,
        fault_specs,
        fault_survived,
        scaling,
    }
}

fn json_replay(stats: &ReplayStats) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"throughput_rps\": {:.2}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}}}",
        stats.wall_ms, stats.throughput_rps, stats.p50_us, stats.p99_us,
    )
}

fn json_serve(serve: &ServeBench) -> String {
    let rates: Vec<String> =
        serve.warm_hit_rates.iter().map(|(name, rate)| format!("\"{name}\": {rate:.4}")).collect();
    let verdicts: Vec<String> = serve
        .verdicts
        .iter()
        .map(|(name, eq, neq, unknown)| {
            format!(
                "\"{name}\": {{\"equivalent\": {eq}, \"not_equivalent\": {neq}, \
                 \"unknown\": {unknown}}}"
            )
        })
        .collect();
    let scaling: Vec<String> = serve
        .scaling
        .iter()
        .map(|(workers, stats)| {
            format!(
                "\"workers_{workers}\": {{\"wall_ms\": {:.3}, \"throughput_rps\": {:.2}}}",
                stats.wall_ms, stats.throughput_rps,
            )
        })
        .collect();
    format!(
        "{{\n    \"requests_per_pass\": {},\n    \"cold\": {},\n    \"warm\": {},\n    \
         \"warm_cache_hit_rates\": {{{}}},\n    \"verdicts\": {{{}}},\n    \
         \"overload\": {{\"burst\": {}, \"rejected\": {}}},\n    \
         \"fault_drill\": {{\"specs\": {}, \"survived\": {}}},\n    \
         \"worker_scaling\": {{{}}}\n  }}",
        serve.requests_per_pass,
        json_replay(&serve.cold),
        json_replay(&serve.warm),
        rates.join(", "),
        verdicts.join(", "),
        serve.overload_burst,
        serve.overload_rejected,
        serve.fault_specs,
        serve.fault_survived,
        scaling.join(", "),
    )
}

fn json_stages(stages: &[(&str, f64)]) -> String {
    let fields: Vec<String> =
        stages.iter().map(|(name, value)| format!("\"{name}\": {value:.3}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_cache(cache: &CacheStats) -> String {
    format!(
        "{{\"smt_formula_hits\": {}, \"smt_formula_misses\": {}, \
         \"smt_formula_hit_rate\": {:.4}, \"summand_hits\": {}, \"summand_misses\": {}, \
         \"summand_hit_rate\": {:.4}, \"disjoint_hits\": {}, \"disjoint_misses\": {}, \
         \"disjoint_hit_rate\": {:.4}, \"search_memo_hits\": {}, \
         \"search_memo_misses\": {}, \"search_memo_evictions\": {}, \
         \"parse_cache_hits\": {}, \"parse_cache_misses\": {}, \
         \"parse_cache_evictions\": {}, \"normalize_cache_hits\": {}, \
         \"normalize_cache_misses\": {}, \"normalize_cache_evictions\": {}, \
         \"plan_cache_hits\": {}, \
         \"plan_cache_misses\": {}, \"plan_cache_evictions\": {}, \
         \"epoch_resets\": {}}}",
        cache.smt_formula_hits,
        cache.smt_formula_misses,
        cache.smt_formula_hit_rate(),
        cache.summand_hits,
        cache.summand_misses,
        cache.summand_hit_rate(),
        cache.disjoint_hits,
        cache.disjoint_misses,
        cache.disjoint_hit_rate(),
        cache.search_memo_hits,
        cache.search_memo_misses,
        cache.search_memo_evictions,
        cache.parse_cache_hits,
        cache.parse_cache_misses,
        cache.parse_cache_evictions,
        cache.normalize_cache_hits,
        cache.normalize_cache_misses,
        cache.normalize_cache_evictions,
        cache.plan_cache_hits,
        cache.plan_cache_misses,
        cache.plan_cache_evictions,
        cache.epoch_resets,
    )
}

fn json_eval(eval: &EvalStage) -> String {
    format!(
        "{{\"flat_indexed_ms\": {:.3}, \"flat_scan_ms\": {:.3}, \"map_indexed_ms\": {:.3}, \
         \"map_scan_ms\": {:.3}, \"interp_indexed_ms\": {:.3}, \"interp_scan_ms\": {:.3}}}",
        eval.flat_indexed_ms,
        eval.flat_scan_ms,
        eval.map_indexed_ms,
        eval.map_scan_ms,
        eval.interp_indexed_ms,
        eval.interp_scan_ms,
    )
}

fn json_parse(parse: &ParseStage) -> String {
    format!(
        "{{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"hits\": {}, \"misses\": {}}}",
        parse.cold_ms, parse.warm_ms, parse.hits, parse.misses,
    )
}

fn json_normalize(normalize: &NormalizeStage) -> String {
    format!(
        "{{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"hits\": {}, \"misses\": {}}}",
        normalize.cold_ms, normalize.warm_ms, normalize.hits, normalize.misses,
    )
}

fn json_search(run: &DatasetRun) -> String {
    let indices: Vec<String> =
        run.search.witness_indices.iter().map(|index| index.to_string()).collect();
    format!(
        "{{\"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"oracle_scan_ms\": {:.3}, \
         \"oracle_indexed_ms\": {:.3}, \"index_builds\": {}, \"index_build_ms\": {:.3}, \
         \"memo_hits\": {}, \"memo_misses\": {}, \"witness_indices\": [{}]}}",
        run.search.sequential_ms,
        run.search.parallel_ms,
        run.search.oracle_scan_ms,
        run.search.oracle_indexed_ms,
        run.index_builds,
        run.index_build_ms,
        run.search.memo_hits,
        run.search.memo_misses,
        indices.join(", "),
    )
}

fn json_limits(limits: &LimitsOverhead) -> String {
    format!(
        "{{\"off_ms\": {:.3}, \"on_ms\": {:.3}, \"overhead\": {:.4}}}",
        limits.off_ms, limits.on_ms, limits.overhead,
    )
}

fn json_unknown_reasons(reasons: &BTreeMap<String, usize>) -> String {
    let fields: Vec<String> =
        reasons.iter().map(|(reason, count)| format!("\"{reason}\": {count}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_dataset(run: &DatasetRun) -> String {
    format!(
        "{{\n    \"baseline_tree_sequential_ms\": {:.3},\n    \
         \"arena_parallel_ms\": {:.3},\n    \"speedup\": {:.3},\n    \
         \"baseline_decide_only_ms\": {:.3},\n    \
         \"arena_decide_only_ms\": {:.3},\n    \"decide_only_speedup\": {:.3},\n    \
         \"equivalent\": {},\n    \"not_equivalent\": {},\n    \"unknown\": {},\n    \
         \"stages_ms\": {},\n    \"cache\": {},\n    \"peak_arena_nodes\": {},\n    \
         \"search\": {},\n    \"eval\": {},\n    \"parse\": {},\n    \
         \"normalize\": {},\n    \
         \"limits\": {},\n    \"unknown_reasons\": {}\n  }}",
        run.baseline_ms,
        run.arena_ms,
        run.speedup,
        run.baseline_decide_only_ms,
        run.arena_decide_only_ms,
        run.decide_only_speedup,
        run.equivalent,
        run.not_equivalent,
        run.unknown,
        json_stages(&run.stages),
        json_cache(&run.cache),
        run.cache.peak_arena_nodes,
        json_search(run),
        json_eval(&run.eval),
        json_parse(&run.parse),
        json_normalize(&run.normalize),
        json_limits(&run.limits),
        json_unknown_reasons(&run.unknown_reasons),
    )
}

/// Prints the trajectory against the committed previous report, when present
/// (informational — the enforced comparison is `bench_gate`'s job).
fn print_trajectory(runs: &[&DatasetRun]) {
    let Ok(previous_text) = std::fs::read_to_string("BENCH_pr7.json") else {
        println!("\nno BENCH_pr7.json next to the binary; skipping trajectory");
        return;
    };
    let Ok(previous) = graphqe_bench::json::Json::parse(&previous_text) else {
        println!("\nBENCH_pr7.json is unreadable; skipping trajectory");
        return;
    };
    println!("\ntrajectory vs committed BENCH_pr7.json:");
    for run in runs {
        let field = |name: &str| {
            previous.get_path(&[run.name, name]).and_then(graphqe_bench::json::Json::as_f64)
        };
        if let Some(before) = field("arena_parallel_ms") {
            println!(
                "  {}: e2e {before:.1} ms -> {:.1} ms ({:.2}x)",
                run.name,
                run.arena_ms,
                before / run.arena_ms.max(f64::EPSILON)
            );
        }
        if let (Some(e2e), Some(decide)) =
            (field("arena_parallel_ms"), field("arena_decide_only_ms"))
        {
            // Floor both sides at 0.25 ms: the subtraction of two noisy
            // measurements can go to (or below) zero, where ratios stop
            // meaning anything. `bench_gate` applies the same floor.
            let before_search = (e2e - decide).max(0.25);
            let after_search = (run.arena_ms - run.arena_decide_only_ms).max(0.25);
            println!(
                "  {}: search stage (e2e - decide-only) {before_search:.1} ms -> \
                 {after_search:.1} ms ({:.2}x)",
                run.name,
                before_search / after_search
            );
        }
        // The tentpole number: warm stage-②+③ through the shared cache vs
        // the per-prove rewrite + build cost PR 7 paid every time.
        let stage = |name: &str| {
            previous
                .get_path(&[run.name, "stages_ms", name])
                .and_then(graphqe_bench::json::Json::as_f64)
        };
        if let (Some(rules), Some(build)) = (stage("rule_normalize"), stage("gexpr_build")) {
            let before = rules + build;
            let after = run.normalize.warm_ms.max(0.001);
            println!(
                "  {}: warm normalize+build {before:.2} ms (pr7 per-prove stages) -> \
                 {after:.3} ms ({:.0}x collapse)",
                run.name,
                before / after,
            );
        }
    }
}

/// Certificate-emission overhead over one dataset (PR 9), warm caches: the
/// plain certificates-off prove, the same replay with artifact emission,
/// and the same with emission plus independent validation. The three are
/// interleaved so a machine-noise burst cannot contaminate one side of the
/// overhead ratios.
struct CertificateBench {
    name: &'static str,
    /// Warm certificates-off replay — the unchanged hot path.
    prove_ms: f64,
    /// `prove_certified(check = false)`: emission without validation.
    emit_ms: f64,
    /// `prove_certified(check = true)`: emission plus the checker.
    checked_ms: f64,
    /// Definite verdicts in the dataset (every one must yield an artifact).
    definite: usize,
    /// Artifacts emitted by one clean checked pass.
    emitted: u64,
    /// Checker rejections in that pass (must be zero).
    check_failures: u64,
}

fn certificate_bench(name: &'static str, pairs: &[QueryPair]) -> CertificateBench {
    let prover = GraphQE::new();
    // One clean pass first: counts, and every cache layer warmed so the
    // timed passes compare the marginal cost of certification.
    let before = graphqe::certificate_counters();
    let mut definite = 0usize;
    for pair in pairs {
        let (verdict, _) = prover.prove_certified(&pair.left, &pair.right, true);
        if !verdict.is_unknown() {
            definite += 1;
        }
    }
    let after = graphqe::certificate_counters();
    let (emitted, check_failures) =
        (after.0.saturating_sub(before.0), after.1.saturating_sub(before.1));
    assert_eq!(
        check_failures, 0,
        "{name}: the checker rejected {check_failures} emitted certificates (prover/checker skew)"
    );
    assert_eq!(
        emitted as usize, definite,
        "{name}: not every definite verdict yielded a certificate"
    );

    let mut prove = || {
        for pair in pairs {
            std::hint::black_box(prover.prove(&pair.left, &pair.right));
        }
    };
    let mut emit = || {
        for pair in pairs {
            std::hint::black_box(prover.prove_certified(&pair.left, &pair.right, false));
        }
    };
    let mut checked = || {
        for pair in pairs {
            std::hint::black_box(prover.prove_certified(&pair.left, &pair.right, true));
        }
    };
    let [prove_ms, emit_ms, checked_ms] = interleaved_mins([&mut prove, &mut emit, &mut checked]);
    CertificateBench { name, prove_ms, emit_ms, checked_ms, definite, emitted, check_failures }
}

fn json_certificates(benches: &[CertificateBench]) -> String {
    let blocks: Vec<String> = benches
        .iter()
        .map(|b| {
            format!(
                "\"{}\": {{\"prove_ms\": {:.3}, \"emit_ms\": {:.3}, \"checked_ms\": {:.3}, \
                 \"definite\": {}, \"emitted\": {}, \"check_failures\": {}}}",
                b.name,
                b.prove_ms,
                b.emit_ms,
                b.checked_ms,
                b.definite,
                b.emitted,
                b.check_failures,
            )
        })
        .collect();
    format!("{{{}}}", blocks.join(", "))
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("bench_pr9: {threads} worker thread(s)");

    // The serve benchmark goes first: its cold replay is only cold while
    // this process has never parsed, planned or searched the corpus.
    let eq_pairs = cyeqset();
    let neq_pairs = cyneqset();
    let serve = serve_bench(&eq_pairs, &neq_pairs);
    println!(
        "serve: {} requests/pass, cold {:.1} ms ({:.0} rps, p50 {:.0} us, p99 {:.0} us)",
        serve.requests_per_pass,
        serve.cold.wall_ms,
        serve.cold.throughput_rps,
        serve.cold.p50_us,
        serve.cold.p99_us,
    );
    println!(
        "       warm {:.1} ms ({:.0} rps, p50 {:.0} us, p99 {:.0} us), {:.2}x cold->warm",
        serve.warm.wall_ms,
        serve.warm.throughput_rps,
        serve.warm.p50_us,
        serve.warm.p99_us,
        serve.cold.wall_ms / serve.warm.wall_ms.max(f64::EPSILON),
    );
    for (name, rate) in &serve.warm_hit_rates {
        println!("       warm cache {name}: {:.1}% hit", rate * 100.0);
    }
    println!(
        "       overload drill: {}/{} burst connections rejected with 503; \
         fault drill: {}/{} specs survived",
        serve.overload_rejected, serve.overload_burst, serve.fault_survived, serve.fault_specs,
    );
    assert_eq!(
        serve.fault_survived, serve.fault_specs,
        "server failed to survive a fault-injection spec"
    );
    for (workers, stats) in &serve.scaling {
        println!(
            "       scaling: {workers} worker(s), two-connection warm replay {:.1} ms \
             ({:.0} rps)",
            stats.wall_ms, stats.throughput_rps,
        );
    }

    let eq = run_dataset("cyeqset", eq_pairs, threads);
    let neq = run_dataset("cyneqset", neq_pairs, threads);

    for run in [&eq, &neq] {
        println!(
            "\n{}: baseline {:.1} ms -> indexed oracle {:.1} ms ({:.2}x), \
             verdicts: {} eq / {} neq / {} unknown",
            run.name,
            run.baseline_ms,
            run.arena_ms,
            run.speedup,
            run.equivalent,
            run.not_equivalent,
            run.unknown
        );
        println!(
            "  decide-only (no counterexample search): {:.1} ms -> {:.1} ms ({:.2}x)",
            run.baseline_decide_only_ms, run.arena_decide_only_ms, run.decide_only_speedup
        );
        for (stage, stage_ms) in &run.stages {
            println!("  stage {stage:<16} {stage_ms:>10.1} ms");
        }
        println!(
            "  search: sequential {:.1} ms, parallel {:.1} ms, oracle eval scan {:.1} ms -> \
             indexed {:.1} ms ({:.2}x), {} index builds in {:.2} ms",
            run.search.sequential_ms,
            run.search.parallel_ms,
            run.search.oracle_scan_ms,
            run.search.oracle_indexed_ms,
            run.search.oracle_scan_ms / run.search.oracle_indexed_ms.max(f64::EPSILON),
            run.index_builds,
            run.index_build_ms,
        );
        println!(
            "  search memo (timed optimized runs): {} hits / {} misses, {} LRU evictions \
             process-wide",
            run.search.memo_hits,
            run.search.memo_misses,
            graphqe::counterexample::search_memo_evictions(),
        );
        println!(
            "  eval stage: flat indexed {:.1} ms / map indexed {:.1} ms ({:.2}x), \
             flat scan {:.1} ms / map scan {:.1} ms ({:.2}x)",
            run.eval.flat_indexed_ms,
            run.eval.map_indexed_ms,
            run.eval.map_indexed_ms / run.eval.flat_indexed_ms.max(f64::EPSILON),
            run.eval.flat_scan_ms,
            run.eval.map_scan_ms,
            run.eval.map_scan_ms / run.eval.flat_scan_ms.max(f64::EPSILON),
        );
        println!(
            "  compiled vs interpreted: indexed {:.1} ms vs {:.1} ms ({:.2}x), \
             scan {:.1} ms vs {:.1} ms ({:.2}x)",
            run.eval.flat_indexed_ms,
            run.eval.interp_indexed_ms,
            run.eval.interp_indexed_ms / run.eval.flat_indexed_ms.max(f64::EPSILON),
            run.eval.flat_scan_ms,
            run.eval.interp_scan_ms,
            run.eval.interp_scan_ms / run.eval.flat_scan_ms.max(f64::EPSILON),
        );
        println!(
            "  parse stage: cold {:.2} ms -> warm {:.2} ms ({:.1}x), \
             {} cache hits / {} misses in the timed runs",
            run.parse.cold_ms,
            run.parse.warm_ms,
            run.parse.cold_ms / run.parse.warm_ms.max(f64::EPSILON),
            run.parse.hits,
            run.parse.misses,
        );
        println!(
            "  normalize stage (shared \u{2461}+\u{2462} cache): cold {:.2} ms -> \
             warm {:.3} ms ({:.0}x), {} cache hits / {} misses in the timed runs",
            run.normalize.cold_ms,
            run.normalize.warm_ms,
            run.normalize.cold_ms / run.normalize.warm_ms.max(0.001),
            run.normalize.hits,
            run.normalize.misses,
        );
        // The PR 8 acceptance bar: a warm prove must skip at least 5x of
        // the rewrite + build cost it used to pay per prove.
        assert!(
            run.normalize.cold_ms / run.normalize.warm_ms.max(0.001) >= 5.0,
            "{}: warm normalize+build did not collapse at least 5x (cold {:.3} ms, warm {:.3} ms)",
            run.name,
            run.normalize.cold_ms,
            run.normalize.warm_ms,
        );
        println!(
            "  limits layer: off {:.1} ms -> on (never-tripping token) {:.1} ms \
             ({:+.1}% overhead)",
            run.limits.off_ms,
            run.limits.on_ms,
            (run.limits.overhead - 1.0) * 100.0,
        );
        if !run.unknown_reasons.is_empty() {
            let reasons: Vec<String> = run
                .unknown_reasons
                .iter()
                .map(|(reason, count)| format!("{reason}: {count}"))
                .collect();
            println!("  unknown reasons: {}", reasons.join(", "));
        }
        if !run.search.witness_indices.is_empty() {
            let max = run.search.witness_indices.iter().max().unwrap();
            let sum: usize = run.search.witness_indices.iter().sum();
            println!(
                "  witnesses: {} found, pool index mean {:.1}, max {}",
                run.search.witness_indices.len(),
                sum as f64 / run.search.witness_indices.len() as f64,
                max,
            );
        }
        println!(
            "  caches (warm run): smt formula {:.0}% hit ({}h/{}m), summand {:.0}% hit \
             ({}h/{}m), disjoint {:.0}% hit ({}h/{}m), peak arena {} nodes",
            run.cache.smt_formula_hit_rate() * 100.0,
            run.cache.smt_formula_hits,
            run.cache.smt_formula_misses,
            run.cache.summand_hit_rate() * 100.0,
            run.cache.summand_hits,
            run.cache.summand_misses,
            run.cache.disjoint_hit_rate() * 100.0,
            run.cache.disjoint_hits,
            run.cache.disjoint_misses,
            run.cache.peak_arena_nodes,
        );
    }
    print_trajectory(&[&eq, &neq]);

    // PR 9: certificate-emission overhead, on warm caches (the dataset
    // suites above already replayed everything).
    let certificates =
        [certificate_bench("cyeqset", &cyeqset()), certificate_bench("cyneqset", &cyneqset())];
    println!();
    for bench in &certificates {
        println!(
            "{}: certificates — prove {:.1} ms, +emit {:.1} ms ({:.2}x), \
             +check {:.1} ms ({:.2}x); {} artifacts for {} definite verdicts, {} rejections",
            bench.name,
            bench.prove_ms,
            bench.emit_ms,
            bench.emit_ms / bench.prove_ms.max(f64::EPSILON),
            bench.checked_ms,
            bench.checked_ms / bench.prove_ms.max(f64::EPSILON),
            bench.emitted,
            bench.definite,
            bench.check_failures,
        );
    }

    let json = format!(
        "{{\n  \"threads\": {},\n  \"serve\": {},\n  \"certificates\": {},\n  \
         \"cyeqset\": {},\n  \"cyneqset\": {}\n}}\n",
        threads,
        json_serve(&serve),
        json_certificates(&certificates),
        json_dataset(&eq),
        json_dataset(&neq),
    );
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    println!("\nwrote BENCH_pr9.json");
}
