//! A minimal bag-semantics Cypher evaluator for counterexample re-validation.
//!
//! This is an independent port of the repository's reference evaluator,
//! specialized to the checker's needs: map-backed rows and linear-scan
//! candidate enumeration (the two baseline representations the main evaluator
//! keeps as differential oracles — both are proven row-for-row identical to
//! the default paths by the `property-graph` test suite). Candidate order
//! matters beyond bag equality: `LIMIT` without `ORDER BY` makes results
//! depend on row production order, so enumeration here must stay ascending by
//! node/relationship id, with variable-length paths explored depth-first
//! exactly like the original.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use cypher_parser::ast::{
    Aggregate, BinaryOp, Clause, Expr, Literal, MatchClause, NodePattern, PathPattern, Projection,
    ProjectionItems, Query, RelDirection, RelationshipPattern, SingleQuery, UnaryOp, UnionKind,
    WithClause,
};

use crate::graph::{EntityId, Graph};
use crate::value::{
    add, and3, cypher_cmp, cypher_eq, div, mul, neg, not3, or3, pow, rem, sub, total_cmp, xor3,
    NodeId, RelId, Value,
};

/// A binding row: variable name → value.
pub type Row = BTreeMap<String, Value>;

/// The tabular result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names, in `RETURN` order.
    pub columns: Vec<String>,
    /// The result rows, in result order.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Rows sorted by the total value order (canonical bag representation).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    /// Bag equality: same arity, same tuples with the same multiplicities.
    /// Column names are ignored, matching the prover's Definition 4.
    pub fn bag_equal(&self, other: &QueryResult) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.sorted_rows()
            .iter()
            .zip(other.sorted_rows().iter())
            .all(|(a, b)| cmp_rows(a, b) == Ordering::Equal)
    }
}

/// Elementwise total order on rows, then by length.
pub fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = total_cmp(x, y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Evaluates `query` over `graph` starting from one empty row.
pub fn evaluate_query(graph: &Graph, query: &Query) -> Result<QueryResult, String> {
    evaluate_union_query(graph, query, vec![Row::new()], true)
}

fn evaluate_union_query(
    graph: &Graph,
    query: &Query,
    initial_rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, String> {
    let mut combined: Option<QueryResult> = None;
    for (index, part) in query.parts.iter().enumerate() {
        let result = evaluate_single(graph, part, initial_rows.clone(), require_return)?;
        combined = Some(match combined {
            None => result,
            Some(acc) => {
                if acc.columns.len() != result.columns.len() {
                    return Err(
                        "UNION requires sub-queries with the same number of columns".to_string()
                    );
                }
                let mut rows = acc.rows;
                rows.extend(result.rows);
                let merged = QueryResult { columns: acc.columns, rows };
                match query.unions[index - 1] {
                    UnionKind::All => merged,
                    UnionKind::Distinct => QueryResult {
                        columns: merged.columns,
                        rows: dedup_first_occurrence(merged.rows, |a, b| cmp_rows(a, b)),
                    },
                }
            }
        });
    }
    Ok(combined.unwrap_or(QueryResult { columns: Vec::new(), rows: Vec::new() }))
}

/// Keeps the first occurrence of every distinct element under `cmp`,
/// preserving input order.
fn dedup_first_occurrence<T>(mut items: Vec<T>, cmp: impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    if items.len() <= 1 {
        return items;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_unstable_by(|&a, &b| cmp(&items[a], &items[b]).then(a.cmp(&b)));
    let mut keep = vec![false; items.len()];
    let mut leader: Option<usize> = None;
    for &index in &order {
        if leader.is_none_or(|l| cmp(&items[l], &items[index]) != Ordering::Equal) {
            keep[index] = true;
            leader = Some(index);
        }
    }
    let mut keep = keep.into_iter();
    items.retain(|_| keep.next().expect("mask covers every element"));
    items
}

fn evaluate_single(
    graph: &Graph,
    query: &SingleQuery,
    mut rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, String> {
    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                rows = apply_match(graph, m, rows)?;
            }
            Clause::Unwind(u) => {
                let mut next = Vec::new();
                for row in rows {
                    let value = eval_expr(graph, &row, &u.expr)?;
                    match value {
                        Value::Null => {}
                        Value::List(items) => {
                            for item in items {
                                let mut extended = row.clone();
                                extended.insert(u.alias.clone(), item);
                                next.push(extended);
                            }
                        }
                        other => {
                            let mut extended = row.clone();
                            extended.insert(u.alias.clone(), other);
                            next.push(extended);
                        }
                    }
                }
                rows = next;
            }
            Clause::With(w) => {
                rows = apply_with(graph, w, rows)?;
            }
            Clause::Return(p) => {
                let (columns, projected) = apply_projection(graph, p, &rows)?;
                let result_rows = projected.into_iter().map(|(values, _)| values).collect();
                return Ok(QueryResult { columns, rows: result_rows });
            }
        }
    }
    if require_return {
        return Err("query does not end with a RETURN clause".to_string());
    }
    // Subquery (EXISTS) without RETURN: expose the surviving multiplicity.
    Ok(QueryResult { columns: Vec::new(), rows: rows.into_iter().map(|_| Vec::new()).collect() })
}

fn apply_match(graph: &Graph, clause: &MatchClause, rows: Vec<Row>) -> Result<Vec<Row>, String> {
    let mut next = Vec::new();
    let mut optional_variables: Option<Vec<String>> = None;
    for row in rows {
        let matches = match_clause(graph, clause, &row)?;
        if matches.is_empty() && clause.optional {
            let variables = optional_variables.get_or_insert_with(|| pattern_variables(clause));
            let mut extended = row.clone();
            for name in variables {
                extended.entry(name.clone()).or_insert(Value::Null);
            }
            next.push(extended);
        } else {
            next.extend(matches);
        }
    }
    Ok(next)
}

fn pattern_variables(clause: &MatchClause) -> Vec<String> {
    let mut names = Vec::new();
    for pattern in &clause.patterns {
        if let Some(v) = &pattern.variable {
            names.push(v.clone());
        }
        for node in pattern.nodes() {
            if let Some(v) = &node.variable {
                names.push(v.clone());
            }
        }
        for rel in pattern.relationships() {
            if let Some(v) = &rel.variable {
                names.push(v.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn apply_with(graph: &Graph, clause: &WithClause, rows: Vec<Row>) -> Result<Vec<Row>, String> {
    let (columns, projected) = apply_projection(graph, &clause.projection, &rows)?;
    let mut next = Vec::new();
    for (values, env) in projected {
        let mut row = Row::new();
        for (name, value) in columns.iter().zip(values) {
            row.insert(name.clone(), value);
        }
        if let Some(predicate) = &clause.where_clause {
            // The WHERE of a WITH sees both the projected names and the
            // pre-projection bindings (projected names win).
            let mut combined = env.clone();
            for (name, value) in &row {
                combined.insert(name.clone(), value.clone());
            }
            if !eval_predicate(graph, &combined, predicate)? {
                continue;
            }
        }
        next.push(row);
    }
    Ok(next)
}

/// Applies a projection (shared by `WITH` and `RETURN`); returns output
/// column names and, per output row, the projected values and the
/// environment row (pre-projection bindings merged with the projected ones)
/// that `ORDER BY` and `WITH ... WHERE` refer to.
#[allow(clippy::type_complexity)]
fn apply_projection(
    graph: &Graph,
    projection: &Projection,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<(Vec<Value>, Row)>), String> {
    let items: Vec<(String, Expr)> = match &projection.items {
        ProjectionItems::Star => {
            let names: BTreeSet<String> = rows.iter().flat_map(|r| r.keys().cloned()).collect();
            names.into_iter().map(|n| (n.clone(), Expr::Variable(n))).collect()
        }
        ProjectionItems::Items(items) => {
            items.iter().map(|item| (item.output_name(), item.expr.clone())).collect()
        }
    };
    let columns: Vec<String> = items.iter().map(|(name, _)| name.clone()).collect();
    let exprs: Vec<&Expr> = items.iter().map(|(_, expr)| expr).collect();

    let has_aggregate = exprs.iter().any(|expr| expr.contains_aggregate());
    let mut produced: Vec<(Vec<Value>, Row)> = Vec::new();

    if has_aggregate {
        // Group rows by the values of the non-aggregate items, in
        // first-occurrence order.
        let grouping: Vec<&Expr> =
            exprs.iter().filter(|e| !e.contains_aggregate()).copied().collect();
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        for row in rows {
            let key =
                grouping.iter().map(|e| eval_expr(graph, row, e)).collect::<Result<Vec<_>, _>>()?;
            match groups.iter_mut().find(|(k, _)| cmp_rows(k, &key) == Ordering::Equal) {
                Some((_, members)) => members.push(row.clone()),
                None => groups.push((key, vec![row.clone()])),
            }
        }
        // A global aggregate over zero rows still produces one row.
        if groups.is_empty() && grouping.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        for (_, members) in groups {
            let representative = members.first().cloned().unwrap_or_default();
            let mut values = Vec::new();
            for expr in &exprs {
                values.push(eval_with_aggregates(graph, &members, &representative, expr)?);
            }
            let mut env = representative.clone();
            for (name, value) in columns.iter().zip(values.iter()) {
                env.insert(name.clone(), value.clone());
            }
            produced.push((values, env));
        }
    } else {
        for row in rows {
            let mut values = Vec::new();
            for expr in &exprs {
                values.push(eval_expr(graph, row, expr)?);
            }
            let mut env = row.clone();
            for (name, value) in columns.iter().zip(values.iter()) {
                env.insert(name.clone(), value.clone());
            }
            produced.push((values, env));
        }
    }

    if projection.distinct {
        produced = dedup_first_occurrence(produced, |(a, _), (b, _)| cmp_rows(a, b));
    }

    if !projection.order_by.is_empty() {
        let mut keyed: Vec<(Vec<(Value, bool)>, (Vec<Value>, Row))> = Vec::new();
        for entry in produced {
            let mut keys = Vec::new();
            for order in &projection.order_by {
                keys.push((eval_expr(graph, &entry.1, &order.expr)?, order.ascending));
            }
            keyed.push((keys, entry));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for ((va, asc), (vb, _)) in a.iter().zip(b.iter()) {
                let ord = total_cmp(va, vb);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        produced = keyed.into_iter().map(|(_, entry)| entry).collect();
    }

    if let Some(skip) = &projection.skip {
        let n = constant_usize(graph, skip, "SKIP")?;
        produced = produced.into_iter().skip(n).collect();
    }
    if let Some(limit) = &projection.limit {
        let n = constant_usize(graph, limit, "LIMIT")?;
        produced.truncate(n);
    }
    Ok((columns, produced))
}

fn eval_with_aggregates(
    graph: &Graph,
    group: &[Row],
    representative: &Row,
    expr: &Expr,
) -> Result<Value, String> {
    match expr {
        Expr::CountStar { distinct } => {
            if *distinct {
                // Whole-row values in name order (the map iteration order).
                let value_rows: Vec<Vec<Value>> =
                    group.iter().map(|row| row.values().cloned().collect()).collect();
                let distinct_rows = dedup_first_occurrence(value_rows, |a, b| cmp_rows(a, b));
                Ok(Value::Integer(distinct_rows.len() as i64))
            } else {
                Ok(Value::Integer(group.len() as i64))
            }
        }
        Expr::AggregateCall { func, distinct, arg } => {
            let mut values = Vec::new();
            for row in group {
                let value = eval_expr(graph, row, arg)?;
                if !value.is_null() {
                    values.push(value);
                }
            }
            if *distinct {
                values = dedup_first_occurrence(values, total_cmp);
            }
            Ok(compute_aggregate(*func, values))
        }
        Expr::Binary(op, lhs, rhs) => {
            let left = eval_with_aggregates(graph, group, representative, lhs)?;
            let right = eval_with_aggregates(graph, group, representative, rhs)?;
            // Re-dispatch on literal values by delegating to the scalar path.
            let lit = Expr::Binary(
                *op,
                Box::new(Expr::Variable("·agg_lhs".to_string())),
                Box::new(Expr::Variable("·agg_rhs".to_string())),
            );
            let mut row = representative.clone();
            row.insert("·agg_lhs".to_string(), left);
            row.insert("·agg_rhs".to_string(), right);
            eval_expr(graph, &row, &lit)
        }
        Expr::Unary(op, inner) => {
            let value = eval_with_aggregates(graph, group, representative, inner)?;
            let mut row = representative.clone();
            row.insert("·agg".to_string(), value);
            eval_expr(graph, &row, &Expr::Unary(*op, Box::new(Expr::Variable("·agg".to_string()))))
        }
        _ if !expr.contains_aggregate() => eval_expr(graph, representative, expr),
        other => Err(format!("unsupported aggregate expression shape: {other:?}")),
    }
}

fn compute_aggregate(func: Aggregate, values: Vec<Value>) -> Value {
    match func {
        Aggregate::Count => Value::Integer(values.len() as i64),
        Aggregate::Collect => Value::List(values),
        Aggregate::Sum => {
            if values.is_empty() {
                return Value::Integer(0);
            }
            let mut acc = Value::Integer(0);
            for value in values {
                acc = add(&acc, &value);
            }
            acc
        }
        Aggregate::Min => values.into_iter().min_by(total_cmp).unwrap_or(Value::Null),
        Aggregate::Max => values.into_iter().max_by(total_cmp).unwrap_or(Value::Null),
        Aggregate::Avg => {
            if values.is_empty() {
                return Value::Null;
            }
            let count = values.len() as f64;
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            Value::Float(sum / count)
        }
    }
}

fn constant_usize(graph: &Graph, expr: &Expr, what: &str) -> Result<usize, String> {
    let value = eval_expr(graph, &Row::new(), expr)?;
    match value {
        Value::Integer(v) if v >= 0 => Ok(v as usize),
        other => Err(format!("{what} requires a non-negative integer, got {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluates an expression to a [`Value`] in the given row.
pub fn eval_expr(graph: &Graph, row: &Row, expr: &Expr) -> Result<Value, String> {
    match expr {
        Expr::Literal(lit) => Ok(eval_literal(lit)),
        Expr::Variable(name) => Ok(row.get(name).cloned().unwrap_or(Value::Null)),
        Expr::Parameter(name) => Err(format!(
            "unbound query parameter `${name}` (the checker evaluator does not take parameters)"
        )),
        Expr::Property(base, key) => {
            let base = eval_expr(graph, row, base)?;
            Ok(read_property(graph, &base, key))
        }
        Expr::Unary(op, inner) => {
            let value = eval_expr(graph, row, inner)?;
            Ok(match op {
                UnaryOp::Not => bool3_to_value(not3(value.as_bool())),
                UnaryOp::Neg => neg(&value),
                UnaryOp::Pos => value,
            })
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(graph, row, *op, lhs, rhs),
        Expr::IsNull { expr, negated } => {
            let value = eval_expr(graph, row, expr)?;
            let is_null = value.is_null();
            Ok(Value::Boolean(if *negated { !is_null } else { is_null }))
        }
        Expr::List(items) => {
            let values = items
                .iter()
                .map(|item| eval_expr(graph, row, item))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::List(values))
        }
        Expr::Map(entries) => {
            let mut map = BTreeMap::new();
            for (key, value) in entries {
                map.insert(key.clone(), eval_expr(graph, row, value)?);
            }
            Ok(Value::Map(map))
        }
        Expr::FunctionCall { name, args } => {
            let values =
                args.iter().map(|arg| eval_expr(graph, row, arg)).collect::<Result<Vec<_>, _>>()?;
            Ok(eval_function(graph, name, &values))
        }
        Expr::AggregateCall { .. } | Expr::CountStar { .. } => {
            Err("aggregate expressions can only appear in WITH/RETURN projections".to_string())
        }
        Expr::Exists(query) => {
            let result = evaluate_union_query(graph, query, vec![row.clone()], false)?;
            Ok(Value::Boolean(!result.rows.is_empty()))
        }
        Expr::Case { branches, otherwise } => {
            for (cond, value) in branches {
                if eval_expr(graph, row, cond)?.as_bool() == Some(true) {
                    return eval_expr(graph, row, value);
                }
            }
            match otherwise {
                Some(e) => eval_expr(graph, row, e),
                None => Ok(Value::Null),
            }
        }
    }
}

fn eval_predicate(graph: &Graph, row: &Row, expr: &Expr) -> Result<bool, String> {
    Ok(eval_expr(graph, row, expr)?.as_bool() == Some(true))
}

fn eval_literal(lit: &Literal) -> Value {
    match lit {
        Literal::Integer(v) => Value::Integer(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::String(s.clone()),
        Literal::Boolean(b) => Value::Boolean(*b),
        Literal::Null => Value::Null,
    }
}

fn eval_binary(
    graph: &Graph,
    row: &Row,
    op: BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
) -> Result<Value, String> {
    if matches!(op, BinaryOp::And | BinaryOp::Or | BinaryOp::Xor) {
        let left = eval_expr(graph, row, lhs)?.as_bool();
        let right = eval_expr(graph, row, rhs)?.as_bool();
        return Ok(bool3_to_value(match op {
            BinaryOp::And => and3(left, right),
            BinaryOp::Or => or3(left, right),
            BinaryOp::Xor => xor3(left, right),
            _ => unreachable!(),
        }));
    }
    let left = eval_expr(graph, row, lhs)?;
    let right = eval_expr(graph, row, rhs)?;
    Ok(match op {
        BinaryOp::Eq => bool3_to_value(cypher_eq(&left, &right)),
        BinaryOp::Neq => bool3_to_value(not3(cypher_eq(&left, &right))),
        BinaryOp::Lt => bool3_to_value(cypher_cmp(&left, &right).map(|o| o.is_lt())),
        BinaryOp::Le => bool3_to_value(cypher_cmp(&left, &right).map(|o| o.is_le())),
        BinaryOp::Gt => bool3_to_value(cypher_cmp(&left, &right).map(|o| o.is_gt())),
        BinaryOp::Ge => bool3_to_value(cypher_cmp(&left, &right).map(|o| o.is_ge())),
        BinaryOp::Add => add(&left, &right),
        BinaryOp::Sub => sub(&left, &right),
        BinaryOp::Mul => mul(&left, &right),
        BinaryOp::Div => div(&left, &right),
        BinaryOp::Mod => rem(&left, &right),
        BinaryOp::Pow => pow(&left, &right),
        BinaryOp::In => eval_in(&left, &right),
        BinaryOp::StartsWith => eval_string_predicate(&left, &right, |a, b| a.starts_with(b)),
        BinaryOp::EndsWith => eval_string_predicate(&left, &right, |a, b| a.ends_with(b)),
        BinaryOp::Contains => eval_string_predicate(&left, &right, |a, b| a.contains(b)),
        BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => unreachable!(),
    })
}

fn eval_in(needle: &Value, haystack: &Value) -> Value {
    match haystack {
        Value::Null => Value::Null,
        Value::List(items) => {
            let mut saw_null = false;
            for item in items {
                match cypher_eq(needle, item) {
                    Some(true) => return Value::Boolean(true),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            }
        }
        _ => Value::Null,
    }
}

fn eval_string_predicate(left: &Value, right: &Value, f: impl Fn(&str, &str) -> bool) -> Value {
    match (left, right) {
        (Value::String(a), Value::String(b)) => Value::Boolean(f(a, b)),
        _ => Value::Null,
    }
}

fn bool3_to_value(value: Option<bool>) -> Value {
    match value {
        Some(b) => Value::Boolean(b),
        None => Value::Null,
    }
}

fn read_property(graph: &Graph, base: &Value, key: &str) -> Value {
    match base {
        Value::Node(id) => graph.property(EntityId::Node(*id), key),
        Value::Relationship(id) => graph.property(EntityId::Relationship(*id), key),
        Value::Map(map) => map.get(key).cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

fn eval_function(graph: &Graph, name: &str, args: &[Value]) -> Value {
    let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Null);
    match name {
        "id" => match arg(0) {
            Value::Node(id) => Value::Integer(id.0 as i64),
            // Relationship ids live in a disjoint range (matching the main
            // evaluator) so `id(n) = id(r)` can never hold across kinds.
            Value::Relationship(id) => Value::Integer(1_000_000_000 + id.0 as i64),
            _ => Value::Null,
        },
        "labels" => match arg(0) {
            Value::Node(id) => match graph.node(id) {
                Some(node) => Value::List(node.labels.iter().cloned().map(Value::String).collect()),
                None => Value::Null,
            },
            _ => Value::Null,
        },
        "type" => match arg(0) {
            Value::Relationship(id) => match graph.relationship(id) {
                Some(rel) => Value::String(rel.label.clone()),
                None => Value::Null,
            },
            _ => Value::Null,
        },
        "size" => match arg(0) {
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        "length" => match arg(0) {
            Value::Path(items) => Value::Integer((items.len().saturating_sub(1) / 2) as i64),
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        "head" => match arg(0) {
            Value::List(items) => items.first().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        "last" => match arg(0) {
            Value::List(items) => items.last().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        "abs" => match arg(0) {
            Value::Integer(v) => Value::Integer(v.abs()),
            Value::Float(v) => Value::Float(v.abs()),
            _ => Value::Null,
        },
        "toupper" | "toUpper" => match arg(0) {
            Value::String(s) => Value::String(s.to_uppercase()),
            _ => Value::Null,
        },
        "tolower" | "toLower" => match arg(0) {
            Value::String(s) => Value::String(s.to_lowercase()),
            _ => Value::Null,
        },
        "coalesce" => args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null),
        "exists" => Value::Boolean(!arg(0).is_null()),
        "startnode" => match arg(0) {
            Value::Relationship(id) => match graph.relationship(id) {
                Some(rel) => Value::Node(rel.source),
                None => Value::Null,
            },
            _ => Value::Null,
        },
        "endnode" => match arg(0) {
            Value::Relationship(id) => match graph.relationship(id) {
                Some(rel) => Value::Node(rel.target),
                None => Value::Null,
            },
            _ => Value::Null,
        },
        "index" => match (arg(0), arg(1)) {
            (Value::List(items), Value::Integer(i)) if i >= 0 && (i as usize) < items.len() => {
                items[i as usize].clone()
            }
            _ => Value::Null,
        },
        // Unknown / unmodelled functions: NULL.
        _ => Value::Null,
    }
}

// ---------------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------------

fn match_clause(graph: &Graph, clause: &MatchClause, base: &Row) -> Result<Vec<Row>, String> {
    let mut results = Vec::new();
    let mut used = Vec::new();
    match_pattern_list(graph, &clause.patterns, 0, base.clone(), &mut used, &mut results)?;
    match &clause.where_clause {
        None => Ok(results),
        Some(predicate) => {
            let mut kept = Vec::new();
            for row in results {
                if eval_predicate(graph, &row, predicate)? {
                    kept.push(row);
                }
            }
            Ok(kept)
        }
    }
}

type OnComplete<'a> = &'a mut dyn FnMut(Row, &mut Vec<RelId>, &[Value]) -> Result<(), String>;

fn match_pattern_list(
    graph: &Graph,
    patterns: &[PathPattern],
    index: usize,
    row: Row,
    used: &mut Vec<RelId>,
    results: &mut Vec<Row>,
) -> Result<(), String> {
    if index == patterns.len() {
        results.push(row);
        return Ok(());
    }
    let pattern = &patterns[index];
    let candidates = candidate_nodes(graph, &row, &pattern.start)?;
    for node in candidates {
        let mut next_row = row.clone();
        bind_node(&mut next_row, &pattern.start, node);
        let mut trace = vec![Value::Node(node)];
        let used_before = used.len();
        match_segments(
            graph,
            pattern,
            0,
            node,
            next_row,
            used,
            &mut trace,
            &mut |row, used, trace| {
                let mut row = row;
                if let Some(path_var) = &pattern.variable {
                    row.insert(path_var.clone(), Value::Path(trace.to_vec()));
                }
                match_pattern_list(graph, patterns, index + 1, row, used, results)
            },
        )?;
        used.truncate(used_before);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn match_segments(
    graph: &Graph,
    pattern: &PathPattern,
    segment_index: usize,
    current: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), String> {
    if segment_index == pattern.segments.len() {
        return on_complete(row, used, trace);
    }
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;

    if rel_pattern.is_var_length() {
        match_var_length(graph, pattern, segment_index, current, row, used, trace, on_complete)
    } else {
        let candidates = candidate_relationships(graph, &row, rel_pattern, current)?;
        for (rel, next_node) in candidates {
            if violates_injectivity(&row, rel_pattern, rel, used) {
                continue;
            }
            if !node_matches(graph, &row, next_node, &segment.node)?
                || !node_binding_consistent(&row, &segment.node, next_node)
            {
                continue;
            }
            let mut next_row = row.clone();
            if let Some(var) = &rel_pattern.variable {
                next_row.insert(var.clone(), Value::Relationship(rel));
            }
            bind_node(&mut next_row, &segment.node, next_node);
            used.push(rel);
            trace.push(Value::Relationship(rel));
            trace.push(Value::Node(next_node));
            match_segments(
                graph,
                pattern,
                segment_index + 1,
                next_node,
                next_row,
                used,
                trace,
                on_complete,
            )?;
            trace.pop();
            trace.pop();
            used.pop();
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn match_var_length(
    graph: &Graph,
    pattern: &PathPattern,
    segment_index: usize,
    start: NodeId,
    row: Row,
    used: &mut Vec<RelId>,
    trace: &mut Vec<Value>,
    on_complete: OnComplete<'_>,
) -> Result<(), String> {
    let segment = &pattern.segments[segment_index];
    let rel_pattern = &segment.relationship;
    let length = rel_pattern.length.expect("var-length pattern");
    let min = length.effective_min();
    let max = length.max.unwrap_or(graph.relationship_count() as u32).max(min);

    // Depth-first expansion of simple paths (no repeated relationship),
    // mirroring the reference matcher's explicit stack exactly: extensions
    // are pushed in ascending relationship id order, so they pop descending.
    struct Frame {
        node: NodeId,
        rels: Vec<RelId>,
    }
    let mut stack = vec![Frame { node: start, rels: Vec::new() }];
    while let Some(frame) = stack.pop() {
        let hops = frame.rels.len() as u32;
        if hops >= min {
            // Try to close the pattern at this node.
            let end = frame.node;
            if node_matches(graph, &row, end, &segment.node)?
                && node_binding_consistent(&row, &segment.node, end)
            {
                let mut next_row = row.clone();
                if let Some(var) = &rel_pattern.variable {
                    next_row.insert(
                        var.clone(),
                        Value::List(frame.rels.iter().map(|r| Value::Relationship(*r)).collect()),
                    );
                }
                bind_node(&mut next_row, &segment.node, end);
                let used_before = used.len();
                let trace_before = trace.len();
                for rel in &frame.rels {
                    used.push(*rel);
                    trace.push(Value::Relationship(*rel));
                }
                trace.push(Value::Node(end));
                match_segments(
                    graph,
                    pattern,
                    segment_index + 1,
                    end,
                    next_row,
                    used,
                    trace,
                    on_complete,
                )?;
                trace.truncate(trace_before);
                used.truncate(used_before);
            }
        }
        if hops >= max {
            continue;
        }
        let extensions = candidate_relationships(graph, &row, rel_pattern, frame.node)?;
        for (rel, next) in extensions {
            if frame.rels.contains(&rel) || used.contains(&rel) {
                continue;
            }
            let mut rels = frame.rels.clone();
            rels.push(rel);
            stack.push(Frame { node: next, rels });
        }
    }
    Ok(())
}

/// `(relationship, neighbour)` pairs adjacent to `from` satisfying the
/// pattern, in ascending relationship id order (the linear-scan baseline).
fn candidate_relationships(
    graph: &Graph,
    row: &Row,
    pattern: &RelationshipPattern,
    from: NodeId,
) -> Result<Vec<(RelId, NodeId)>, String> {
    let mut out = Vec::new();
    for rel_id in graph.relationship_ids() {
        let rel = graph.relationship(rel_id).expect("id enumerated");
        let neighbour = match pattern.direction {
            RelDirection::Outgoing => {
                if rel.source != from {
                    continue;
                }
                rel.target
            }
            RelDirection::Incoming => {
                if rel.target != from {
                    continue;
                }
                rel.source
            }
            RelDirection::Undirected => {
                // The source branch wins for self-loops, yielding them once.
                if rel.source == from {
                    rel.target
                } else if rel.target == from {
                    rel.source
                } else {
                    continue;
                }
            }
        };
        if !pattern.labels.is_empty() && !pattern.labels.contains(&rel.label) {
            continue;
        }
        if !properties_match(graph, row, EntityId::Relationship(rel_id), &pattern.properties)? {
            continue;
        }
        // A bound relationship variable restricts to that exact relationship.
        if let Some(var) = &pattern.variable {
            if let Some(Value::Relationship(bound)) = row.get(var) {
                if *bound != rel_id {
                    continue;
                }
            }
        }
        out.push((rel_id, neighbour));
    }
    Ok(out)
}

/// Relationship-injectivity: a candidate violates injectivity when it was
/// already matched by a *different* relationship pattern of the same `MATCH`
/// clause; a pattern whose variable is already bound to this relationship
/// refers to the same one and is allowed.
fn violates_injectivity(
    row: &Row,
    pattern: &RelationshipPattern,
    rel: RelId,
    used: &[RelId],
) -> bool {
    if !used.contains(&rel) {
        return false;
    }
    match &pattern.variable {
        Some(var) => !matches!(row.get(var), Some(Value::Relationship(bound)) if *bound == rel),
        None => true,
    }
}

fn candidate_nodes(graph: &Graph, row: &Row, pattern: &NodePattern) -> Result<Vec<NodeId>, String> {
    // A bound variable restricts the candidates to the bound node.
    if let Some(var) = &pattern.variable {
        match row.get(var) {
            Some(Value::Node(id)) => {
                return if node_matches(graph, row, *id, pattern)? {
                    Ok(vec![*id])
                } else {
                    Ok(vec![])
                };
            }
            Some(_) => return Ok(vec![]),
            None => {}
        }
    }
    let mut out = Vec::new();
    for id in graph.node_ids() {
        if node_matches(graph, row, id, pattern)? {
            out.push(id);
        }
    }
    Ok(out)
}

fn node_matches(
    graph: &Graph,
    row: &Row,
    id: NodeId,
    pattern: &NodePattern,
) -> Result<bool, String> {
    if !pattern.labels.iter().all(|label| graph.node_has_label(id, label)) {
        return Ok(false);
    }
    properties_match(graph, row, EntityId::Node(id), &pattern.properties)
}

fn node_binding_consistent(row: &Row, pattern: &NodePattern, id: NodeId) -> bool {
    match &pattern.variable {
        Some(var) => match row.get(var) {
            Some(Value::Node(bound)) => *bound == id,
            Some(_) => false,
            None => true,
        },
        None => true,
    }
}

fn properties_match(
    graph: &Graph,
    row: &Row,
    entity: EntityId,
    properties: &[(String, Expr)],
) -> Result<bool, String> {
    for (key, expr) in properties {
        let expected = eval_expr(graph, row, expr)?;
        let actual = graph.property(entity, key);
        if cypher_eq(&actual, &expected) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn bind_node(row: &mut Row, pattern: &NodePattern, id: NodeId) {
    if let Some(var) = &pattern.variable {
        row.insert(var.clone(), Value::Node(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NodeData, RelData};
    use cypher_parser::parse_query;

    fn paper_example() -> Graph {
        let mut graph = Graph::new();
        let mut rowling = NodeData::default();
        rowling.labels.insert("Person".to_string());
        rowling.properties.insert("name".to_string(), Value::String("J. K. Rowling".to_string()));
        rowling.properties.insert("age".to_string(), Value::Integer(59));
        let mut book = NodeData::default();
        book.labels.insert("Book".to_string());
        book.properties.insert("title".to_string(), Value::String("Harry Potter".to_string()));
        book.properties.insert("language".to_string(), Value::String("English".to_string()));
        let mut jack = NodeData::default();
        jack.labels.insert("Person".to_string());
        jack.properties.insert("name".to_string(), Value::String("Jack".to_string()));
        jack.properties.insert("age".to_string(), Value::Integer(26));
        let mut alice = NodeData::default();
        alice.labels.insert("Person".to_string());
        alice.properties.insert("name".to_string(), Value::String("Alice".to_string()));
        alice.properties.insert("age".to_string(), Value::Integer(27));
        let r = graph.add_node(rowling);
        let b = graph.add_node(book);
        let j = graph.add_node(jack);
        let a = graph.add_node(alice);
        for (label, source, target) in [("WRITE", r, b), ("READ", j, b), ("READ", a, b)] {
            let mut props = BTreeMap::new();
            props.insert(
                "date".to_string(),
                Value::Integer(if label == "WRITE" { 1997 } else { 2024 }),
            );
            graph
                .add_relationship(RelData {
                    label: label.to_string(),
                    source,
                    target,
                    properties: props,
                })
                .unwrap();
        }
        graph
    }

    fn run(graph: &Graph, text: &str) -> QueryResult {
        let query = parse_query(text).unwrap();
        evaluate_query(graph, &query).unwrap()
    }

    #[test]
    fn evaluates_the_paper_listing() {
        let graph = paper_example();
        let result = run(
            &graph,
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
             WHERE reader.name = 'Alice' RETURN writer.name",
        );
        assert_eq!(result.columns, vec!["writer.name"]);
        assert_eq!(result.rows, vec![vec![Value::String("J. K. Rowling".to_string())]]);
    }

    #[test]
    fn evaluates_aggregates_and_distinct() {
        let graph = paper_example();
        let result = run(&graph, "MATCH (p:Person) RETURN COUNT(*), SUM(p.age)");
        assert_eq!(result.rows, vec![vec![Value::Integer(3), Value::Integer(112)]]);
        let result = run(&graph, "UNWIND [3, 1, 3, 2, 1] AS x RETURN DISTINCT x");
        assert_eq!(
            result.rows,
            vec![vec![Value::Integer(3)], vec![Value::Integer(1)], vec![Value::Integer(2)]]
        );
    }

    #[test]
    fn evaluates_optional_match_and_unions() {
        let graph = paper_example();
        let result = run(&graph, "MATCH (n) OPTIONAL MATCH (n)-[r]->(m) RETURN n, r");
        assert_eq!(result.rows.len(), 4);
        let nulls = result.rows.iter().filter(|row| row[1].is_null()).count();
        assert_eq!(nulls, 1);
        let distinct =
            run(&graph, "MATCH (p:Person) RETURN p.name UNION MATCH (p:Person) RETURN p.name");
        assert_eq!(distinct.rows.len(), 3);
    }

    #[test]
    fn evaluates_var_length_in_dfs_order() {
        let mut graph = Graph::new();
        let mut make_node = |name: &str| {
            let mut node = NodeData::default();
            node.labels.insert("N".to_string());
            node.properties.insert("name".to_string(), Value::String(name.to_string()));
            graph.add_node(node)
        };
        let a = make_node("a");
        let b = make_node("b");
        let c = make_node("c");
        let d = make_node("d");
        for (source, target) in [(a, b), (b, c), (c, d)] {
            graph
                .add_relationship(RelData {
                    label: "E".to_string(),
                    source,
                    target,
                    properties: BTreeMap::new(),
                })
                .unwrap();
        }
        let rows = run(&graph, "MATCH (x {name: 'a'})-[*1..3]->(y) RETURN y");
        assert_eq!(rows.rows.len(), 3);
        let exact = run(&graph, "MATCH (x)-[*2]->(y) RETURN x");
        assert_eq!(exact.rows.len(), 2);
    }

    #[test]
    fn bag_equality_ignores_column_names_but_not_arity() {
        let graph = paper_example();
        let a = run(&graph, "MATCH (p:Person) RETURN p.name AS x");
        let b = run(&graph, "MATCH (p:Person) RETURN p.name AS y");
        assert!(a.bag_equal(&b));
        let c = run(&graph, "MATCH (p:Person) RETURN p.name, p.age");
        assert!(!a.bag_equal(&c));
    }
}
