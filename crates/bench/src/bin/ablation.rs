//! Ablation study: how many CyEqSet pairs are provable with parts of the
//! pipeline disabled (DESIGN.md §7).

#![forbid(unsafe_code)]

use graphqe::GraphQE;
use graphqe_bench::run_cyeqset;

fn main() {
    let configurations = [
        ("full pipeline", GraphQE::new()),
        ("without Table II normalization", GraphQE { normalize: false, ..GraphQE::new() }),
        (
            "without counterexample search",
            GraphQE { search_counterexamples: false, ..GraphQE::new() },
        ),
    ];
    println!("Ablation: proved CyEqSet pairs per configuration");
    for (name, prover) in configurations {
        let results = run_cyeqset(&prover);
        let proved = results.iter().filter(|r| r.verdict.is_equivalent()).count();
        let rejected = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
        println!(
            "  {name:<34} proved {proved:>3} / {} (spurious rejections: {rejected})",
            results.len()
        );
    }
}
