//! An independent port of the Table II normalization rules, used to replay
//! derivations.
//!
//! The checker must not trust (or link against) the normalizer, so it carries
//! its own copy of the six rewrite rules and the fixpoint driver, and
//! re-derives the full trace from the recorded source. A certificate's
//! derivation is accepted only if it matches this re-derivation step for
//! step — same rule, same position, same resulting query.

use cypher_parser::ast::*;

/// One recorded (or re-derived) rule application.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Stable rule identifier (`"undirected"`, `"var_length"`, ...).
    pub rule: &'static str,
    /// Index of the first union part changed by the step.
    pub part: usize,
    /// Index of the first clause changed inside that part.
    pub clause: usize,
    /// The query after the step.
    pub after: Query,
}

/// Stable identifiers for the six rules, in Table II order.
pub mod rule_names {
    /// Rule ①: undirected relationship elimination.
    pub const UNDIRECTED: &str = "undirected";
    /// Rule ②: bounded variable-length path expansion.
    pub const VAR_LENGTH: &str = "var_length";
    /// Rule ③: `RETURN *` / `WITH *` expansion.
    pub const RETURN_STAR: &str = "return_star";
    /// Rule ④: redundant `WITH` elimination.
    pub const REDUNDANT_WITH: &str = "redundant_with";
    /// Rule ⑤: variable standardization.
    pub const STANDARDIZE: &str = "standardize";
    /// Rule ⑥: `id(a) = id(b)` simplification.
    pub const ID_EQUALITY: &str = "id_equality";
}

/// The position `(part, clause)` of the first difference between two queries.
///
/// This function must stay in lock-step with the emitter's copy in the
/// normalizer crate: both sides compute positions with the same definition, so
/// a replayed trace can compare them verbatim.
pub fn diff_position(before: &Query, after: &Query) -> (usize, usize) {
    for (i, (b, a)) in before.parts.iter().zip(after.parts.iter()).enumerate() {
        if b != a {
            for (j, (bc, ac)) in b.clauses.iter().zip(a.clauses.iter()).enumerate() {
                if bc != ac {
                    return (i, j);
                }
            }
            return (i, b.clauses.len().min(a.clauses.len()));
        }
    }
    if before.parts.len() != after.parts.len() {
        return (before.parts.len().min(after.parts.len()), 0);
    }
    (0, 0)
}

/// Normalizes `query` with the Table II fixpoint driver, recording every rule
/// application (rule ⑤ only when it changed something). Returns the
/// normalized query and the trace.
pub fn normalize_with_trace(query: &Query) -> (Query, Vec<TraceStep>) {
    let mut trace = Vec::new();
    let mut current = query.clone();
    let mut record = |rule: &'static str, before: &Query, after: Query| {
        let (part, clause) = diff_position(before, &after);
        trace.push(TraceStep { rule, part, clause, after: after.clone() });
        after
    };
    // One rule per round, in the same order and with the same bound as the
    // normalizer's driver.
    for _ in 0..64 {
        if let Some(next) = rule2_var_length::apply(&current) {
            current = record(rule_names::VAR_LENGTH, &current, next);
            continue;
        }
        if let Some(next) = rule1_undirected::apply(&current) {
            current = record(rule_names::UNDIRECTED, &current, next);
            continue;
        }
        if let Some(next) = rule3_return_star::apply(&current) {
            current = record(rule_names::RETURN_STAR, &current, next);
            continue;
        }
        if let Some(next) = rule4_redundant_with::apply(&current) {
            current = record(rule_names::REDUNDANT_WITH, &current, next);
            continue;
        }
        if let Some(next) = rule6_id_equality::apply(&current) {
            current = record(rule_names::ID_EQUALITY, &current, next);
            continue;
        }
        break;
    }
    // Rule ⑤ last: pure renaming, applied once, recorded only when it fired.
    let (renamed, changed) = rule5_standardize::apply(&current);
    if changed {
        current = record(rule_names::STANDARDIZE, &current, renamed);
    }
    (current, trace)
}

mod util {
    use super::*;

    pub fn map_expressions(query: &mut SingleQuery, f: &impl Fn(Expr) -> Expr) {
        for clause in &mut query.clauses {
            match clause {
                Clause::Match(m) => {
                    for pattern in &mut m.patterns {
                        map_pattern(pattern, f);
                    }
                    if let Some(w) = m.where_clause.take() {
                        m.where_clause = Some(w.map(f));
                    }
                }
                Clause::Unwind(u) => {
                    u.expr = u.expr.clone().map(f);
                }
                Clause::With(w) => {
                    map_projection(&mut w.projection, f);
                    if let Some(p) = w.where_clause.take() {
                        w.where_clause = Some(p.map(f));
                    }
                }
                Clause::Return(p) => map_projection(p, f),
            }
        }
    }

    pub fn map_projection(projection: &mut Projection, f: &impl Fn(Expr) -> Expr) {
        if let ProjectionItems::Items(items) = &mut projection.items {
            for item in items {
                item.expr = item.expr.clone().map(f);
            }
        }
        for order in &mut projection.order_by {
            order.expr = order.expr.clone().map(f);
        }
        if let Some(skip) = projection.skip.take() {
            projection.skip = Some(skip.map(f));
        }
        if let Some(limit) = projection.limit.take() {
            projection.limit = Some(limit.map(f));
        }
    }

    pub fn map_pattern(pattern: &mut PathPattern, f: &impl Fn(Expr) -> Expr) {
        for (_, value) in &mut pattern.start.properties {
            *value = value.clone().map(f);
        }
        for segment in &mut pattern.segments {
            for (_, value) in &mut segment.relationship.properties {
                *value = value.clone().map(f);
            }
            for (_, value) in &mut segment.node.properties {
                *value = value.clone().map(f);
            }
        }
    }

    pub fn visible_variables(clauses: &[Clause]) -> Vec<String> {
        let mut scope: Vec<String> = Vec::new();
        for clause in clauses {
            match clause {
                Clause::Match(m) => {
                    for pattern in &m.patterns {
                        if let Some(v) = &pattern.variable {
                            push_unique(&mut scope, v);
                        }
                        for node in pattern.nodes() {
                            if let Some(v) = &node.variable {
                                push_unique(&mut scope, v);
                            }
                        }
                        for rel in pattern.relationships() {
                            if let Some(v) = &rel.variable {
                                push_unique(&mut scope, v);
                            }
                        }
                    }
                }
                Clause::Unwind(u) => push_unique(&mut scope, &u.alias),
                Clause::With(w) => {
                    if let ProjectionItems::Items(items) = &w.projection.items {
                        scope = items.iter().map(|item| item.output_name()).collect();
                    }
                }
                Clause::Return(_) => {}
            }
        }
        scope.sort();
        scope
    }

    fn push_unique(scope: &mut Vec<String>, name: &str) {
        if !scope.iter().any(|s| s == name) {
            scope.push(name.to_string());
        }
    }

    pub fn splice_parts(query: &Query, index: usize, replacements: Vec<SingleQuery>) -> Query {
        let mut parts = Vec::new();
        let mut unions = Vec::new();
        for (i, part) in query.parts.iter().enumerate() {
            if i == index {
                for (j, replacement) in replacements.iter().enumerate() {
                    if !parts.is_empty() {
                        unions.push(if j == 0 && i > 0 {
                            query.unions[i - 1]
                        } else {
                            UnionKind::All
                        });
                    }
                    parts.push(replacement.clone());
                }
            } else {
                if !parts.is_empty() {
                    unions.push(if i > 0 { query.unions[i - 1] } else { UnionKind::All });
                }
                parts.push(part.clone());
            }
        }
        Query { parts, unions }
    }

    pub fn all_unions_are_all(query: &Query) -> bool {
        query.unions.iter().all(|u| *u == UnionKind::All)
    }
}

mod rule1_undirected {
    use super::util;
    use super::*;

    pub fn apply(query: &Query) -> Option<Query> {
        if !util::all_unions_are_all(query) {
            return None;
        }
        for (part_index, part) in query.parts.iter().enumerate() {
            for (clause_index, clause) in part.clauses.iter().enumerate() {
                let Clause::Match(m) = clause else { continue };
                for (pattern_index, pattern) in m.patterns.iter().enumerate() {
                    for (segment_index, segment) in pattern.segments.iter().enumerate() {
                        let rel = &segment.relationship;
                        if rel.direction == RelDirection::Undirected && !rel.is_var_length() {
                            let mut forward = part.clone();
                            let mut backward = part.clone();
                            set_direction(
                                &mut forward,
                                clause_index,
                                pattern_index,
                                segment_index,
                                RelDirection::Outgoing,
                            );
                            set_direction(
                                &mut backward,
                                clause_index,
                                pattern_index,
                                segment_index,
                                RelDirection::Incoming,
                            );
                            return Some(util::splice_parts(
                                query,
                                part_index,
                                vec![forward, backward],
                            ));
                        }
                    }
                }
            }
        }
        None
    }

    fn set_direction(
        part: &mut SingleQuery,
        clause_index: usize,
        pattern_index: usize,
        segment_index: usize,
        direction: RelDirection,
    ) {
        if let Clause::Match(m) = &mut part.clauses[clause_index] {
            m.patterns[pattern_index].segments[segment_index].relationship.direction = direction;
        }
    }
}

mod rule2_var_length {
    use super::util;
    use super::*;

    const MAX_EXPANSION: u32 = 5;

    pub fn apply(query: &Query) -> Option<Query> {
        if !util::all_unions_are_all(query) {
            return None;
        }
        for (part_index, part) in query.parts.iter().enumerate() {
            for (clause_index, clause) in part.clauses.iter().enumerate() {
                let Clause::Match(m) = clause else { continue };
                for (pattern_index, pattern) in m.patterns.iter().enumerate() {
                    for (segment_index, segment) in pattern.segments.iter().enumerate() {
                        let rel = &segment.relationship;
                        let Some(length) = rel.length else { continue };
                        let (Some(max), min) = (length.max, length.effective_min()) else {
                            continue;
                        };
                        if rel.variable.is_some() || min == 0 || max < min || max > MAX_EXPANSION {
                            continue;
                        }
                        let mut replacements = Vec::new();
                        for hops in min..=max {
                            let mut copy = part.clone();
                            expand(&mut copy, clause_index, pattern_index, segment_index, hops);
                            replacements.push(copy);
                        }
                        return Some(util::splice_parts(query, part_index, replacements));
                    }
                }
            }
        }
        None
    }

    fn expand(
        part: &mut SingleQuery,
        clause_index: usize,
        pattern_index: usize,
        segment_index: usize,
        hops: u32,
    ) {
        let Clause::Match(m) = &mut part.clauses[clause_index] else {
            return;
        };
        let pattern = &mut m.patterns[pattern_index];
        let original = pattern.segments[segment_index].clone();
        let mut replacement_segments = Vec::new();
        for hop in 0..hops {
            let relationship = RelationshipPattern {
                variable: None,
                labels: original.relationship.labels.clone(),
                properties: original.relationship.properties.clone(),
                direction: original.relationship.direction,
                length: None,
            };
            let node =
                if hop + 1 == hops { original.node.clone() } else { NodePattern::anonymous() };
            replacement_segments.push(PathSegment { relationship, node });
        }
        pattern.segments.splice(segment_index..=segment_index, replacement_segments);
    }
}

mod rule3_return_star {
    use super::util;
    use super::*;

    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        let mut changed = false;
        for part in &mut result.parts {
            for index in 0..part.clauses.len() {
                let scope = util::visible_variables(&part.clauses[..index]);
                let projection = match &mut part.clauses[index] {
                    Clause::With(w) => &mut w.projection,
                    Clause::Return(p) => p,
                    _ => continue,
                };
                if projection.items == ProjectionItems::Star && !scope.is_empty() {
                    projection.items = ProjectionItems::Items(
                        scope
                            .iter()
                            .map(|name| ProjectionItem::expr(Expr::Variable(name.clone())))
                            .collect(),
                    );
                    changed = true;
                }
            }
        }
        if changed {
            Some(result)
        } else {
            None
        }
    }
}

mod rule4_redundant_with {
    use super::util;
    use super::*;
    use std::collections::BTreeMap;

    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        for part in &mut result.parts {
            for index in 0..part.clauses.len() {
                let Clause::With(w) = &part.clauses[index] else {
                    continue;
                };
                if w.projection.distinct
                    || w.projection.has_sort_or_truncation()
                    || w.where_clause.is_some()
                {
                    continue;
                }
                let Some(items) = w.projection.explicit_items() else {
                    continue;
                };
                if items.iter().any(|item| item.expr.contains_aggregate()) {
                    continue;
                }
                let mut substitution: BTreeMap<String, Expr> = BTreeMap::new();
                for item in items {
                    let name = item.output_name();
                    if item.alias.is_none() && matches!(item.expr, Expr::Variable(_)) {
                        continue;
                    }
                    substitution.insert(name, item.expr.clone());
                }
                part.clauses.remove(index);
                let mut tail = SingleQuery { clauses: part.clauses.split_off(index) };
                util::map_expressions(&mut tail, &|expr| match &expr {
                    Expr::Variable(name) => substitution.get(name).cloned().unwrap_or(expr),
                    _ => expr,
                });
                part.clauses.extend(tail.clauses);
                return Some(result);
            }
        }
        None
    }
}

mod rule5_standardize {
    use super::util;
    use super::*;
    use std::collections::BTreeMap;

    pub fn apply(query: &Query) -> (Query, bool) {
        let mut result = query.clone();
        let mut changed = false;
        for part in &mut result.parts {
            let mapping = build_mapping(part);
            if mapping.iter().any(|(from, to)| from != to) {
                changed = true;
            }
            rename_part(part, &mapping);
        }
        (result, changed)
    }

    fn build_mapping(part: &SingleQuery) -> BTreeMap<String, String> {
        let mut mapping = BTreeMap::new();
        let mut nodes = 0usize;
        let mut rels = 0usize;
        let mut paths = 0usize;
        for clause in &part.clauses {
            let Clause::Match(m) = clause else { continue };
            for pattern in &m.patterns {
                if let Some(v) = &pattern.variable {
                    paths += 1;
                    mapping.entry(v.clone()).or_insert_with(|| format!("p{paths}"));
                }
                for node in pattern.nodes() {
                    if let Some(v) = &node.variable {
                        if !mapping.contains_key(v) {
                            nodes += 1;
                            mapping.insert(v.clone(), format!("n{nodes}"));
                        }
                    }
                }
                for rel in pattern.relationships() {
                    if let Some(v) = &rel.variable {
                        if !mapping.contains_key(v) {
                            rels += 1;
                            mapping.insert(v.clone(), format!("r{rels}"));
                        }
                    }
                }
            }
        }
        mapping
    }

    fn rename_part(part: &mut SingleQuery, mapping: &BTreeMap<String, String>) {
        for clause in &mut part.clauses {
            if let Clause::Match(m) = clause {
                for pattern in &mut m.patterns {
                    if let Some(v) = &mut pattern.variable {
                        if let Some(new) = mapping.get(v) {
                            *v = new.clone();
                        }
                    }
                    if let Some(v) = &mut pattern.start.variable {
                        if let Some(new) = mapping.get(v) {
                            *v = new.clone();
                        }
                    }
                    for segment in &mut pattern.segments {
                        if let Some(v) = &mut segment.relationship.variable {
                            if let Some(new) = mapping.get(v) {
                                *v = new.clone();
                            }
                        }
                        if let Some(v) = &mut segment.node.variable {
                            if let Some(new) = mapping.get(v) {
                                *v = new.clone();
                            }
                        }
                    }
                }
            }
        }
        util::map_expressions(part, &|expr| match &expr {
            Expr::Variable(name) => match mapping.get(name) {
                Some(new) => Expr::Variable(new.clone()),
                None => expr,
            },
            _ => expr,
        });
    }
}

mod rule6_id_equality {
    use super::util;
    use super::*;

    pub fn apply(query: &Query) -> Option<Query> {
        let mut result = query.clone();
        for part in &mut result.parts {
            for clause_index in 0..part.clauses.len() {
                let Clause::Match(m) = &mut part.clauses[clause_index] else {
                    continue;
                };
                let Some(predicate) = &m.where_clause else {
                    continue;
                };
                let Some((keep, drop, remainder)) = find_id_equality(predicate) else {
                    continue;
                };
                m.where_clause = remainder;
                for clause in &mut part.clauses {
                    if let Clause::Match(m) = clause {
                        for pattern in &mut m.patterns {
                            rename_pattern_variable(pattern, &drop, &keep);
                        }
                    }
                }
                util::map_expressions(part, &|expr| match &expr {
                    Expr::Variable(name) if *name == drop => Expr::Variable(keep.clone()),
                    _ => expr,
                });
                if let Clause::Match(m) = &mut part.clauses[clause_index] {
                    let mut seen: Vec<PathPattern> = Vec::new();
                    m.patterns.retain(|pattern| {
                        let bare = pattern.segments.is_empty()
                            && pattern.start.labels.is_empty()
                            && pattern.start.properties.is_empty()
                            && pattern.start.variable.is_some();
                        if bare && seen.contains(pattern) {
                            false
                        } else {
                            seen.push(pattern.clone());
                            true
                        }
                    });
                }
                return Some(result);
            }
        }
        None
    }

    fn rename_pattern_variable(pattern: &mut PathPattern, from: &str, to: &str) {
        if pattern.start.variable.as_deref() == Some(from) {
            pattern.start.variable = Some(to.to_string());
        }
        for segment in &mut pattern.segments {
            if segment.node.variable.as_deref() == Some(from) {
                segment.node.variable = Some(to.to_string());
            }
            if segment.relationship.variable.as_deref() == Some(from) {
                segment.relationship.variable = Some(to.to_string());
            }
        }
    }

    fn find_id_equality(predicate: &Expr) -> Option<(String, String, Option<Expr>)> {
        let conjuncts = flatten_and(predicate);
        for (index, conjunct) in conjuncts.iter().enumerate() {
            if let Expr::Binary(BinaryOp::Eq, lhs, rhs) = conjunct {
                if let (Some(a), Some(b)) = (id_argument(lhs), id_argument(rhs)) {
                    if a != b {
                        let mut remaining = conjuncts.clone();
                        remaining.remove(index);
                        let remainder = remaining.into_iter().reduce(Expr::and);
                        return Some((a, b, remainder));
                    }
                }
            }
        }
        None
    }

    fn flatten_and(expr: &Expr) -> Vec<Expr> {
        match expr {
            Expr::Binary(BinaryOp::And, lhs, rhs) => {
                let mut out = flatten_and(lhs);
                out.extend(flatten_and(rhs));
                out
            }
            other => vec![other.clone()],
        }
    }

    fn id_argument(expr: &Expr) -> Option<String> {
        match expr {
            Expr::FunctionCall { name, args } if name == "id" && args.len() == 1 => {
                match &args[0] {
                    Expr::Variable(v) => Some(v.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    #[test]
    fn trace_records_each_rule_with_its_position() {
        let query = parse_query("MATCH (a)-[*1..2]->(b) RETURN *").unwrap();
        let (normalized, trace) = normalize_with_trace(&query);
        let rules: Vec<&str> = trace.iter().map(|s| s.rule).collect();
        assert!(rules.contains(&rule_names::VAR_LENGTH));
        assert!(rules.contains(&rule_names::RETURN_STAR));
        assert!(rules.contains(&rule_names::STANDARDIZE));
        assert_eq!(trace.last().unwrap().after, normalized);
    }

    #[test]
    fn trace_is_empty_for_already_normal_queries() {
        let query = parse_query("MATCH (n1) RETURN n1").unwrap();
        let (normalized, trace) = normalize_with_trace(&query);
        assert!(trace.is_empty());
        assert_eq!(normalized, query);
    }

    #[test]
    fn diff_position_finds_the_first_changed_clause() {
        let before = parse_query("MATCH (a) WITH a.x AS y RETURN y").unwrap();
        let after = rule4_redundant_with::apply(&before).unwrap();
        assert_eq!(diff_position(&before, &after), (0, 1));
    }
}
