//! # property-graph
//!
//! The property graph substrate of GraphQE-rs: the graph model of
//! Definition 1 of *"Proving Cypher Query Equivalence"* (ICDE 2025),
//! isomorphism-based graph pattern matching with relationship-injective
//! semantics (Definition 2), and a bag-semantics reference evaluator for the
//! Cypher fragment the prover supports.
//!
//! The evaluator serves as the **oracle** of the reproduction: property tests
//! check that queries proven equivalent return identical bags on random
//! graphs, and the prover's counterexample search uses it to certify
//! non-equivalence with a concrete differing graph.
//!
//! ```
//! use property_graph::{evaluate_query, PropertyGraph};
//! use cypher_parser::parse_query;
//!
//! let graph = PropertyGraph::paper_example();
//! let query = parse_query(
//!     "MATCH (reader:Person)-[:READ]->(b:Book)<-[:WRITE]-(writer) \
//!      WHERE reader.name = 'Alice' RETURN writer.name",
//! )
//! .unwrap();
//! let result = evaluate_query(&graph, &query).unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod expr;
pub mod frozen;
pub mod fxhash;
pub mod generator;
pub mod graph;
pub mod index;
pub mod matching;
pub mod plan;
pub mod rng;
pub mod value;

pub use eval::{
    evaluate_query, evaluate_query_interpreted, evaluate_query_map_rows, evaluate_query_scan,
    EvalError, Evaluator, PreparedQuery, QueryResult,
};
pub use expr::{EvalCtx, Row, SymId, SymbolTable};
pub use frozen::FrozenPlan;
pub use generator::{GeneratorConfig, GraphGenerator};
pub use graph::{EntityId, NodeData, NodeId, PropertyGraph, RelData, RelId};
pub use index::{AdjacencyIndex, IdBitset};
pub use plan::QueryPlan;
pub use value::Value;
