//! Congruence closure for equality with uninterpreted functions (EUF).
//!
//! Given a conjunction of equalities and disequalities over variables,
//! constants and function applications, the checker decides consistency by
//! computing the congruence closure of the asserted equalities and checking
//! every disequality (and every pair of distinct interpreted constants)
//! against it.

use std::collections::HashMap;

use crate::term::Term;

/// The result of a theory consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TheoryResult {
    /// The conjunction is consistent (a model exists for this theory).
    Consistent,
    /// The conjunction is inconsistent.
    Inconsistent,
}

/// A congruence-closure based EUF solver.
#[derive(Debug, Default)]
pub struct CongruenceClosure {
    /// All distinct sub-terms, indexed densely.
    terms: Vec<Term>,
    index: HashMap<Term, usize>,
    parent: Vec<usize>,
    /// Asserted disequalities (pairs of term indices).
    disequalities: Vec<(usize, usize)>,
}

impl CongruenceClosure {
    /// Creates an empty solver.
    pub fn new() -> Self {
        CongruenceClosure::default()
    }

    fn intern(&mut self, term: &Term) -> usize {
        if let Some(&index) = self.index.get(term) {
            return index;
        }
        // Intern sub-terms of applications first so congruence can see them.
        if let Term::App(_, args) = term {
            for arg in args {
                self.intern(arg);
            }
        }
        let index = self.terms.len();
        self.terms.push(term.clone());
        self.parent.push(index);
        self.index.insert(term.clone(), index);
        index
    }

    fn find(&mut self, mut index: usize) -> usize {
        while self.parent[index] != index {
            self.parent[index] = self.parent[self.parent[index]];
            index = self.parent[index];
        }
        index
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Asserts an equality between two terms.
    pub fn assert_eq(&mut self, lhs: &Term, rhs: &Term) {
        let a = self.intern(lhs);
        let b = self.intern(rhs);
        self.union(a, b);
    }

    /// Asserts a disequality between two terms.
    pub fn assert_neq(&mut self, lhs: &Term, rhs: &Term) {
        let a = self.intern(lhs);
        let b = self.intern(rhs);
        self.disequalities.push((a, b));
    }

    /// Checks consistency of the asserted literals.
    pub fn check(&mut self) -> TheoryResult {
        self.close_congruence();
        // Disequalities must not join classes.
        for (a, b) in self.disequalities.clone() {
            if self.find(a) == self.find(b) {
                return TheoryResult::Inconsistent;
            }
        }
        // Two distinct interpreted constants in one class are inconsistent.
        let class_count = self.terms.len();
        let mut constant_of_class: HashMap<usize, Term> = HashMap::new();
        for index in 0..class_count {
            if let Some(constant) = interpreted_constant(&self.terms[index]) {
                let root = self.find(index);
                match constant_of_class.get(&root) {
                    Some(existing) if *existing != constant => {
                        return TheoryResult::Inconsistent;
                    }
                    _ => {
                        constant_of_class.insert(root, constant);
                    }
                }
            }
        }
        TheoryResult::Consistent
    }

    /// Returns `true` if the two terms are currently known to be equal.
    pub fn are_equal(&mut self, lhs: &Term, rhs: &Term) -> bool {
        // Intern first so newly mentioned applications participate in the
        // congruence propagation.
        let a = self.intern(lhs);
        let b = self.intern(rhs);
        self.close_congruence();
        self.find(a) == self.find(b)
    }

    /// Propagates congruence (`x ≃ y ⇒ f(x) ≃ f(y)`) to a fixpoint.
    fn close_congruence(&mut self) {
        loop {
            let mut changed = false;
            // Signature table: (function name, argument class roots) -> term.
            let mut signatures: HashMap<(String, Vec<usize>), usize> = HashMap::new();
            for index in 0..self.terms.len() {
                let signature = match self.terms[index].clone() {
                    Term::App(name, args) => {
                        let roots: Vec<usize> = args
                            .iter()
                            .map(|arg| {
                                let i = self.intern(arg);
                                self.find(i)
                            })
                            .collect();
                        (name, roots)
                    }
                    _ => continue,
                };
                match signatures.get(&signature) {
                    Some(&other) => {
                        let ra = self.find(index);
                        let rb = self.find(other);
                        if ra != rb {
                            self.parent[ra] = rb;
                            changed = true;
                        }
                    }
                    None => {
                        signatures.insert(signature, index);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Interpreted constants: integers, booleans, and nullary applications whose
/// name starts with `const:` (the encoding used for string / named constants).
fn interpreted_constant(term: &Term) -> Option<Term> {
    match term {
        Term::IntConst(_) | Term::BoolConst(_) => Some(term.clone()),
        Term::App(name, args) if args.is_empty() && name.starts_with("const:") => {
            Some(term.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::value_var(name)
    }

    fn f(name: &str, args: Vec<Term>) -> Term {
        Term::App(name.to_string(), args)
    }

    #[test]
    fn transitivity() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&v("a"), &v("b"));
        cc.assert_eq(&v("b"), &v("c"));
        assert!(cc.are_equal(&v("a"), &v("c")));
        assert_eq!(cc.check(), TheoryResult::Consistent);
        cc.assert_neq(&v("a"), &v("c"));
        assert_eq!(cc.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn congruence_propagates_through_functions() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&v("x"), &v("y"));
        assert!(cc.are_equal(&f("f", vec![v("x")]), &f("f", vec![v("y")])));
        // And functions of functions.
        assert!(
            cc.are_equal(&f("g", vec![f("f", vec![v("x")])]), &f("g", vec![f("f", vec![v("y")])]))
        );
        // Different functions stay apart.
        assert!(!cc.are_equal(&f("f", vec![v("x")]), &f("g", vec![v("x")])));
    }

    #[test]
    fn classic_euf_inconsistency() {
        // f(f(f(a))) = a ∧ f(f(f(f(f(a))))) = a ∧ f(a) ≠ a is inconsistent.
        let a = v("a");
        let fa = |n: usize| {
            let mut t = a.clone();
            for _ in 0..n {
                t = f("f", vec![t]);
            }
            t
        };
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&fa(3), &a);
        cc.assert_eq(&fa(5), &a);
        cc.assert_neq(&fa(1), &a);
        assert_eq!(cc.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&v("x"), &Term::int(1));
        cc.assert_eq(&v("x"), &Term::int(2));
        assert_eq!(cc.check(), TheoryResult::Inconsistent);

        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&v("x"), &f("const:alice", vec![]));
        cc.assert_eq(&v("y"), &f("const:bob", vec![]));
        assert_eq!(cc.check(), TheoryResult::Consistent);
        cc.assert_eq(&v("x"), &v("y"));
        assert_eq!(cc.check(), TheoryResult::Inconsistent);
    }

    #[test]
    fn consistent_assignments_stay_consistent() {
        let mut cc = CongruenceClosure::new();
        cc.assert_eq(&v("a"), &v("b"));
        cc.assert_neq(&v("a"), &v("c"));
        cc.assert_neq(&f("f", vec![v("a")]), &f("g", vec![v("a")]));
        assert_eq!(cc.check(), TheoryResult::Consistent);
    }
}
