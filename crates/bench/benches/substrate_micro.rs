//! Micro-benchmarks of the substrates: parser, evaluator, SMT solver and
//! G-expression construction.

use criterion::{criterion_group, criterion_main, Criterion};
use cypher_parser::parse_query;
use property_graph::{evaluate_query, PropertyGraph};
use smt::{Solver, Term};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    let text = "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
                WHERE reader.name = 'Alice' RETURN writer.name";
    group.bench_function("parser/listing1", |b| b.iter(|| parse_query(text).unwrap()));

    let graph = PropertyGraph::paper_example();
    let query = parse_query(text).unwrap();
    group.bench_function("evaluator/listing1", |b| {
        b.iter(|| evaluate_query(&graph, &query).unwrap())
    });

    let parsed = parse_query(text).unwrap();
    group.bench_function("gexpr/build_listing1", |b| {
        b.iter(|| gexpr::build_query(&parsed).unwrap())
    });

    group.bench_function("smt/lia_unsat", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let x = Term::int_var("x");
            solver.assert(Term::le(x.clone(), Term::int(3)));
            solver.assert(Term::ge(x, Term::int(5)));
            assert!(solver.check().is_unsat());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
