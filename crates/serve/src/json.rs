//! A minimal JSON value, parser and serializer for the wire protocol.
//!
//! The workspace is offline (no crates.io), so the server carries its own
//! ~200-line JSON implementation instead of `serde`. Objects preserve
//! insertion order (`Vec` of pairs, not a map), so serialized responses are
//! byte-deterministic — the property the docs' worked examples and the
//! loopback tests rely on. Parsing is strict on structure (unterminated
//! strings, trailing garbage and bad escapes are errors) and lenient on
//! nothing; numbers are kept as `f64`, which is exact for every integer the
//! protocol carries (counts, microseconds, budgets all fit in 2^53).

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
    /// A pre-serialized JSON document, emitted verbatim. Producer-only: the
    /// parser never yields this variant. Used to embed certificate artifacts
    /// (already serialized by `graphqe-checker`) without re-parsing them.
    Raw(String),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters after JSON value at byte {pos}"));
        }
        Ok(value)
    }

    /// The value of an object's field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// that is one (rejects negatives, NaN and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integers print without a trailing `.0`, like every other
                // JSON emitter (and like the bench reports).
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (index, (key, value)) in fields.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
            Json::Raw(text) => f.write_str(text),
        }
    }
}

/// Convenience constructor for an ordered object.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor for a string value.
pub fn str(value: impl Into<String>) -> Json {
    Json::Str(value.into())
}

/// Convenience constructor for a numeric value.
pub fn num(value: impl Into<f64>) -> Json {
    Json::Num(value.into())
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        // Surrogate pairs are not reassembled; lone
                        // surrogates degrade to U+FFFD. Query texts are
                        // plain Cypher, so this path is untrodden in
                        // practice.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape sequence".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the body arrived as a `&str`,
                // so the encoding is already valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let doc = r#"{"pairs":[["MATCH (n) RETURN n","MATCH (m) RETURN m"]],"deadline_ms":250}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(parsed.get("deadline_ms").unwrap().as_u64(), Some(250));
        let pair = &parsed.get("pairs").unwrap().as_array().unwrap()[0];
        assert_eq!(pair.as_array().unwrap()[0].as_str(), Some("MATCH (n) RETURN n"));
        assert_eq!(Json::parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn serialization_is_ordered_and_escaped() {
        let value = obj(vec![("b", num(1.0)), ("a", str("line\none \"two\""))]);
        assert_eq!(value.to_string(), r#"{"b":1,"a":"line\none \"two\""}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1e999", "[] []", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn number_accessors_guard_their_domain() {
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
        let mut rendered = String::new();
        write!(rendered, "{}", Json::Num(3.0)).unwrap();
        assert_eq!(rendered, "3");
    }
}
