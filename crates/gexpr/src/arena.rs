//! Hash-consed G-expression arena with memoized normalization.
//!
//! The tree representation in [`crate::expr`] is ideal for construction and
//! for the paper-faithful reference algorithms, but it is expensive on the
//! prover's hottest path: normalization repeatedly clones and rebuilds whole
//! subtrees, and every structural equality check walks both operands. This
//! module provides the interned alternative:
//!
//! * a [`GStore`] arena that **hash-conses** every term and expression node
//!   into a dense `u32` id ([`TermId`] / [`NodeId`]), with string interning
//!   ([`Sym`]) for labels, property keys and function names — structurally
//!   equal subtrees are stored exactly once, so equality and hashing are O(1)
//!   id comparisons and shared subtrees are built once;
//! * a **memoized normalizer** over the arena: the result of normalizing a
//!   node is cached by id (`NodeId -> NodeId`), so re-normalizing a shared
//!   subexpression — across fixpoint passes, across the two sides of a pair,
//!   and across *pairs in a batch* — is a single hash-map lookup instead of a
//!   clone-and-rebuild pass;
//! * conversions to and from the [`GExpr`] tree form, so the arena can slot
//!   under the existing public API without disturbing callers.
//!
//! The normalization algorithm is a faithful port of the reference
//! implementation in [`crate::normalize()`] (same rewrites, same canonical
//! ordering, same fixpoint bound), so `normalize_via_arena` returns exactly
//! the same tree as the reference `normalize_tree` — property tests in the
//! crate assert this on every dataset pair.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::expr::GExpr;
use crate::normalize::compare_constants;
use crate::term::{CmpOp, GAggKind, GAtom, GConst, GTerm, VarId};

/// An interned string (label, property key, function or predicate name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

/// An interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(u32);

/// An interned scalar term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

/// An interned G-expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

/// Hashable identity key for a [`GConst`] (floats are compared by bit
/// pattern, which is exactly the identity hash-consing needs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
    Null,
}

impl ConstKey {
    fn of(c: &GConst) -> ConstKey {
        match c {
            GConst::Integer(v) => ConstKey::Int(*v),
            GConst::Float(v) => ConstKey::Float(v.to_bits()),
            GConst::String(s) => ConstKey::Str(s.clone()),
            GConst::Boolean(b) => ConstKey::Bool(*b),
            GConst::Null => ConstKey::Null,
        }
    }
}

/// The interned form of [`GTerm`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ATerm {
    /// A summation-bound variable.
    Var(VarId),
    /// Column `i` of the output tuple.
    OutCol(usize),
    /// Column `i` of the output tuple with an integer-sort typing fact
    /// (mirror of [`GTerm::IntCol`]).
    IntCol(usize),
    /// A property access `base.key`.
    Prop(TermId, Sym),
    /// A constant.
    Const(ConstId),
    /// An (uninterpreted) function application.
    App(Sym, Box<[TermId]>),
    /// An aggregate over a group expression.
    Agg {
        /// Which aggregate function.
        kind: GAggKind,
        /// Whether the aggregate deduplicates its input.
        distinct: bool,
        /// The aggregated term.
        arg: TermId,
        /// The group's G-expression.
        group: NodeId,
    },
}

/// The interned form of [`GAtom`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AAtom {
    /// A comparison between two terms.
    Cmp(CmpOp, TermId, TermId),
    /// `IS NULL` / `IS NOT NULL`.
    IsNull(TermId, bool),
    /// An uninterpreted boolean predicate.
    Pred(Sym, Box<[TermId]>),
}

/// The interned form of [`GExpr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ANode {
    /// The additive identity 0.
    Zero,
    /// The multiplicative identity 1.
    One,
    /// A natural-number constant.
    Const(u64),
    /// The bracket operator applied to an atom.
    Atom(AAtom),
    /// `Node(e)`.
    NodeFn(TermId),
    /// `Rel(e)`.
    RelFn(TermId),
    /// `Lab(e, label)`.
    Lab(TermId, Sym),
    /// `UNBOUNDED(e)`.
    Unbounded(TermId),
    /// An n-ary product.
    Mul(Box<[NodeId]>),
    /// An n-ary sum.
    Add(Box<[NodeId]>),
    /// The squash operator.
    Squash(NodeId),
    /// The `not` operator.
    Not(NodeId),
    /// An unbounded summation.
    Sum(Box<[VarId]>, NodeId),
}

/// The hash-consing arena plus the normalizer's memo tables.
#[derive(Debug, Default)]
pub struct GStore {
    strings: Vec<String>,
    string_ids: HashMap<String, Sym>,
    consts: Vec<GConst>,
    const_ids: HashMap<ConstKey, ConstId>,
    terms: Vec<ATerm>,
    term_ids: HashMap<ATerm, TermId>,
    nodes: Vec<ANode>,
    node_ids: HashMap<ANode, NodeId>,
    /// Memo: node -> result of one `normalize_once` pass.
    once_cache: HashMap<NodeId, NodeId>,
    /// Memo: node -> fully normalized (fixpoint + canonical sort) node.
    full_cache: HashMap<NodeId, NodeId>,
    /// Memo: node -> canonically sorted node.
    sort_cache: HashMap<NodeId, NodeId>,
    /// Memo: rendered text of a node (the canonical sort key).
    node_text: HashMap<NodeId, String>,
    /// Memo: rendered text of a term.
    term_text: HashMap<TermId, String>,
    /// Memo: every distinct variable occurring in a node (free *and*
    /// Σ-bound, including inside aggregate groups), in first-occurrence
    /// order — exactly what the iso matcher's structural walk binds on an
    /// identical pair, powering its same-node fast path.
    all_vars_cache: HashMap<NodeId, std::rc::Rc<[VarId]>>,
    /// Bumped by [`GStore::reset_epoch`]; caches elsewhere that key on this
    /// store's ids compare epochs to detect staleness.
    epoch: u64,
}

/// High-water mark of [`GStore::node_count`] across every store of the
/// process (updated on interning, so it also covers stores that were since
/// epoch-reset). Drives the `peak_arena_nodes` benchmark metric.
static PEAK_NODES: AtomicUsize = AtomicUsize::new(0);

/// The process-wide peak node count (see [`reset_peak_node_count`]).
pub fn peak_node_count() -> usize {
    PEAK_NODES.load(Ordering::Relaxed)
}

/// Resets the process-wide peak node counter (benchmark bookkeeping).
pub fn reset_peak_node_count() {
    PEAK_NODES.store(0, Ordering::Relaxed);
}

/// Folds an observed arena size into the process-wide peak. Interning
/// already updates the peak, but after [`reset_peak_node_count`] a warm
/// arena interns nothing new — batch workers call this with their current
/// [`GStore::node_count`] so per-run peaks stay accurate.
pub fn note_node_peak(nodes: usize) {
    PEAK_NODES.fetch_max(nodes, Ordering::Relaxed);
}

impl GStore {
    /// An empty arena.
    pub fn new() -> GStore {
        GStore::default()
    }

    /// Number of distinct expression nodes interned so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct terms interned so far.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct strings interned so far.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }

    /// The store's current epoch (starts at 0, bumped by
    /// [`GStore::reset_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drops every interned node, term, string and memo entry and bumps the
    /// store's epoch.
    ///
    /// This is the arena's eviction story: a long-running batch worker calls
    /// this between pairs once the arena outgrows its budget, so memory stops
    /// growing monotonically. **Every id handed out before the reset is
    /// invalidated** — callers that cache ids must compare [`GStore::epoch`]
    /// and drop their caches on mismatch (`liastar` does exactly that for its
    /// summand and disjointness caches).
    pub fn reset_epoch(&mut self) {
        self.strings.clear();
        self.string_ids.clear();
        self.consts.clear();
        self.const_ids.clear();
        self.terms.clear();
        self.term_ids.clear();
        self.nodes.clear();
        self.node_ids.clear();
        self.once_cache.clear();
        self.full_cache.clear();
        self.sort_cache.clear();
        self.node_text.clear();
        self.term_text.clear();
        self.all_vars_cache.clear();
        self.epoch += 1;
    }

    /// Every distinct variable **occurring** in the node (at `Var` leaves,
    /// including inside aggregate groups), in first-occurrence order.
    ///
    /// This is exactly the set of variables the iso matcher's structural
    /// walk binds on an identical pair — Σ binder lists are deliberately
    /// *not* included, because the walk only compares binder-list lengths
    /// and never binds a binder that has no occurrence in the body (the
    /// normalizer keeps such unused binders as unbounded domain factors).
    /// Memoized per id and computed bottom-up through the memo, so shared
    /// sub-DAGs are walked once per arena, not once per root.
    pub fn node_all_variables(&mut self, n: NodeId) -> std::rc::Rc<[VarId]> {
        if let Some(vars) = self.all_vars_cache.get(&n) {
            return vars.clone();
        }
        let mut out = Vec::new();
        match self.node_of(n).clone() {
            ANode::Zero | ANode::One | ANode::Const(_) => {}
            ANode::Atom(atom) => match atom {
                AAtom::Cmp(_, lhs, rhs) => {
                    self.collect_term_occurring_vars(lhs, &mut out);
                    self.collect_term_occurring_vars(rhs, &mut out);
                }
                AAtom::IsNull(t, _) => self.collect_term_occurring_vars(t, &mut out),
                AAtom::Pred(_, args) => {
                    for arg in args.iter() {
                        self.collect_term_occurring_vars(*arg, &mut out);
                    }
                }
            },
            ANode::NodeFn(t) | ANode::RelFn(t) | ANode::Unbounded(t) | ANode::Lab(t, _) => {
                self.collect_term_occurring_vars(t, &mut out)
            }
            ANode::Mul(items) | ANode::Add(items) => {
                for item in items.iter() {
                    self.merge_node_vars(*item, &mut out);
                }
            }
            ANode::Squash(inner) | ANode::Not(inner) => self.merge_node_vars(inner, &mut out),
            ANode::Sum(_, body) => self.merge_node_vars(body, &mut out),
        }
        let vars: std::rc::Rc<[VarId]> = out.into();
        self.all_vars_cache.insert(n, vars.clone());
        vars
    }

    /// Merges a child node's (memoized) variable set into `out`.
    fn merge_node_vars(&mut self, n: NodeId, out: &mut Vec<VarId>) {
        let child = self.node_all_variables(n);
        for v in child.iter() {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }

    fn collect_term_occurring_vars(&mut self, t: TermId, out: &mut Vec<VarId>) {
        match self.term_of(t).clone() {
            ATerm::Var(v) => {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            ATerm::OutCol(_) | ATerm::IntCol(_) | ATerm::Const(_) => {}
            ATerm::Prop(base, _) => self.collect_term_occurring_vars(base, out),
            ATerm::App(_, args) => {
                for arg in args.iter() {
                    self.collect_term_occurring_vars(*arg, out);
                }
            }
            ATerm::Agg { arg, group, .. } => {
                self.collect_term_occurring_vars(arg, out);
                self.merge_node_vars(group, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Interning primitives
    // ------------------------------------------------------------------

    /// Interns a string.
    pub fn sym(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    /// The string behind a [`Sym`].
    pub fn str_of(&self, s: Sym) -> &str {
        &self.strings[s.0 as usize]
    }

    /// Interns a constant.
    pub fn konst(&mut self, c: &GConst) -> ConstId {
        let key = ConstKey::of(c);
        if let Some(&id) = self.const_ids.get(&key) {
            return id;
        }
        let id = ConstId(self.consts.len() as u32);
        self.consts.push(c.clone());
        self.const_ids.insert(key, id);
        id
    }

    /// The constant behind a [`ConstId`].
    pub fn const_of(&self, c: ConstId) -> &GConst {
        &self.consts[c.0 as usize]
    }

    /// Interns a term, returning its unique id.
    pub fn term(&mut self, t: ATerm) -> TermId {
        if let Some(&id) = self.term_ids.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.term_ids.insert(t, id);
        id
    }

    /// The structure behind a [`TermId`].
    pub fn term_of(&self, t: TermId) -> &ATerm {
        &self.terms[t.0 as usize]
    }

    /// Interns an expression node, returning its unique id.
    pub fn node(&mut self, n: ANode) -> NodeId {
        if let Some(&id) = self.node_ids.get(&n) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.node_ids.insert(n, id);
        PEAK_NODES.fetch_max(self.nodes.len(), Ordering::Relaxed);
        id
    }

    /// The structure behind a [`NodeId`].
    pub fn node_of(&self, n: NodeId) -> &ANode {
        &self.nodes[n.0 as usize]
    }

    // ------------------------------------------------------------------
    // Tree <-> arena conversion
    // ------------------------------------------------------------------

    /// Interns a [`GTerm`] tree.
    pub fn intern_term(&mut self, t: &GTerm) -> TermId {
        let node = match t {
            GTerm::Var(v) => ATerm::Var(*v),
            GTerm::OutCol(i) => ATerm::OutCol(*i),
            GTerm::IntCol(i) => ATerm::IntCol(*i),
            GTerm::Prop(base, key) => {
                let base = self.intern_term(base);
                let key = self.sym(key);
                ATerm::Prop(base, key)
            }
            GTerm::Const(c) => ATerm::Const(self.konst(c)),
            GTerm::App(name, args) => {
                let name = self.sym(name);
                let args: Vec<TermId> = args.iter().map(|a| self.intern_term(a)).collect();
                ATerm::App(name, args.into())
            }
            GTerm::Agg { kind, distinct, arg, group } => {
                let arg = self.intern_term(arg);
                let group = self.intern_expr(group);
                ATerm::Agg { kind: *kind, distinct: *distinct, arg, group }
            }
        };
        self.term(node)
    }

    fn intern_atom(&mut self, a: &GAtom) -> AAtom {
        match a {
            GAtom::Cmp(op, lhs, rhs) => {
                let lhs = self.intern_term(lhs);
                let rhs = self.intern_term(rhs);
                AAtom::Cmp(*op, lhs, rhs)
            }
            GAtom::IsNull(t, negated) => AAtom::IsNull(self.intern_term(t), *negated),
            GAtom::Pred(name, args) => {
                let name = self.sym(name);
                let args: Vec<TermId> = args.iter().map(|a| self.intern_term(a)).collect();
                AAtom::Pred(name, args.into())
            }
        }
    }

    /// Interns a [`GExpr`] tree.
    pub fn intern_expr(&mut self, e: &GExpr) -> NodeId {
        let node = match e {
            GExpr::Zero => ANode::Zero,
            GExpr::One => ANode::One,
            GExpr::Const(v) => ANode::Const(*v),
            GExpr::Atom(a) => ANode::Atom(self.intern_atom(a)),
            GExpr::NodeFn(t) => {
                let t = self.intern_term(t);
                ANode::NodeFn(t)
            }
            GExpr::RelFn(t) => {
                let t = self.intern_term(t);
                ANode::RelFn(t)
            }
            GExpr::LabFn(t, label) => {
                let t = self.intern_term(t);
                let label = self.sym(label);
                ANode::Lab(t, label)
            }
            GExpr::Unbounded(t) => {
                let t = self.intern_term(t);
                ANode::Unbounded(t)
            }
            GExpr::Mul(items) => {
                let items: Vec<NodeId> = items.iter().map(|i| self.intern_expr(i)).collect();
                ANode::Mul(items.into())
            }
            GExpr::Add(items) => {
                let items: Vec<NodeId> = items.iter().map(|i| self.intern_expr(i)).collect();
                ANode::Add(items.into())
            }
            GExpr::Squash(inner) => ANode::Squash(self.intern_expr(inner)),
            GExpr::Not(inner) => ANode::Not(self.intern_expr(inner)),
            GExpr::Sum { vars, body } => {
                let body = self.intern_expr(body);
                ANode::Sum(vars.clone().into(), body)
            }
        };
        self.node(node)
    }

    /// Reconstructs the [`GTerm`] tree of a term id.
    pub fn extern_term(&self, t: TermId) -> GTerm {
        match self.term_of(t).clone() {
            ATerm::Var(v) => GTerm::Var(v),
            ATerm::OutCol(i) => GTerm::OutCol(i),
            ATerm::IntCol(i) => GTerm::IntCol(i),
            ATerm::Prop(base, key) => {
                GTerm::Prop(Box::new(self.extern_term(base)), self.str_of(key).to_string())
            }
            ATerm::Const(c) => GTerm::Const(self.const_of(c).clone()),
            ATerm::App(name, args) => GTerm::App(
                self.str_of(name).to_string(),
                args.iter().map(|a| self.extern_term(*a)).collect(),
            ),
            ATerm::Agg { kind, distinct, arg, group } => GTerm::Agg {
                kind,
                distinct,
                arg: Box::new(self.extern_term(arg)),
                group: Box::new(self.extern_expr(group)),
            },
        }
    }

    fn extern_atom(&self, a: &AAtom) -> GAtom {
        match a {
            AAtom::Cmp(op, lhs, rhs) => {
                GAtom::Cmp(*op, self.extern_term(*lhs), self.extern_term(*rhs))
            }
            AAtom::IsNull(t, negated) => GAtom::IsNull(self.extern_term(*t), *negated),
            AAtom::Pred(name, args) => GAtom::Pred(
                self.str_of(*name).to_string(),
                args.iter().map(|a| self.extern_term(*a)).collect(),
            ),
        }
    }

    /// Reconstructs the [`GExpr`] tree of a node id.
    pub fn extern_expr(&self, n: NodeId) -> GExpr {
        match self.node_of(n).clone() {
            ANode::Zero => GExpr::Zero,
            ANode::One => GExpr::One,
            ANode::Const(v) => GExpr::Const(v),
            ANode::Atom(a) => GExpr::Atom(self.extern_atom(&a)),
            ANode::NodeFn(t) => GExpr::NodeFn(self.extern_term(t)),
            ANode::RelFn(t) => GExpr::RelFn(self.extern_term(t)),
            ANode::Lab(t, label) => {
                GExpr::LabFn(self.extern_term(t), self.str_of(label).to_string())
            }
            ANode::Unbounded(t) => GExpr::Unbounded(self.extern_term(t)),
            ANode::Mul(items) => GExpr::Mul(items.iter().map(|i| self.extern_expr(*i)).collect()),
            ANode::Add(items) => GExpr::Add(items.iter().map(|i| self.extern_expr(*i)).collect()),
            ANode::Squash(inner) => GExpr::Squash(Box::new(self.extern_expr(inner))),
            ANode::Not(inner) => GExpr::Not(Box::new(self.extern_expr(inner))),
            ANode::Sum(vars, body) => {
                GExpr::Sum { vars: vars.to_vec(), body: Box::new(self.extern_expr(body)) }
            }
        }
    }

    // ------------------------------------------------------------------
    // Smart constructors (mirrors of the GExpr constructors)
    // ------------------------------------------------------------------

    fn zero(&mut self) -> NodeId {
        self.node(ANode::Zero)
    }

    fn one(&mut self) -> NodeId {
        self.node(ANode::One)
    }

    /// Builds a product, flattening nested products and dropping units.
    pub fn mk_mul(&mut self, factors: Vec<NodeId>) -> NodeId {
        let mut flat = Vec::new();
        for factor in factors {
            match self.node_of(factor) {
                ANode::One => {}
                ANode::Zero => return self.zero(),
                ANode::Mul(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(factor),
            }
        }
        match flat.len() {
            0 => self.one(),
            1 => flat[0],
            _ => self.node(ANode::Mul(flat.into())),
        }
    }

    /// Builds a sum, flattening nested sums and dropping zeros.
    pub fn mk_add(&mut self, terms: Vec<NodeId>) -> NodeId {
        let mut flat = Vec::new();
        for term in terms {
            match self.node_of(term) {
                ANode::Zero => {}
                ANode::Add(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(term),
            }
        }
        match flat.len() {
            0 => self.zero(),
            1 => flat[0],
            _ => self.node(ANode::Add(flat.into())),
        }
    }

    /// Builds a squash, collapsing trivial cases.
    pub fn mk_squash(&mut self, inner: NodeId) -> NodeId {
        match self.node_of(inner) {
            ANode::Zero | ANode::One | ANode::Squash(_) => inner,
            _ => self.node(ANode::Squash(inner)),
        }
    }

    /// Builds a negation, collapsing trivial cases.
    pub fn mk_not(&mut self, inner: NodeId) -> NodeId {
        match self.node_of(inner) {
            ANode::Zero => self.one(),
            ANode::One => self.zero(),
            _ => self.node(ANode::Not(inner)),
        }
    }

    /// Builds a summation; an empty variable list is the body itself.
    pub fn mk_sum(&mut self, vars: Vec<VarId>, body: NodeId) -> NodeId {
        if vars.is_empty() {
            return body;
        }
        match self.node_of(body) {
            ANode::Zero => self.zero(),
            ANode::Sum(inner_vars, inner_body) => {
                let mut all = vars;
                all.extend(inner_vars.iter().copied());
                let inner_body = *inner_body;
                self.node(ANode::Sum(all.into(), inner_body))
            }
            _ => self.node(ANode::Sum(vars.into(), body)),
        }
    }

    // ------------------------------------------------------------------
    // Term utilities
    // ------------------------------------------------------------------

    /// Collects every variable occurring in the term (including inside
    /// aggregate groups), preserving first-occurrence order.
    pub fn term_variables(&self, t: TermId, out: &mut Vec<VarId>) {
        match self.term_of(t) {
            ATerm::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            ATerm::OutCol(_) | ATerm::IntCol(_) | ATerm::Const(_) => {}
            ATerm::Prop(base, _) => self.term_variables(*base, out),
            ATerm::App(_, args) => {
                for arg in args.iter() {
                    self.term_variables(*arg, out);
                }
            }
            ATerm::Agg { arg, group, .. } => {
                self.term_variables(*arg, out);
                self.node_free_variables(*group, out);
            }
        }
    }

    /// Returns `true` if the term mentions the given variable
    /// (short-circuits on the first occurrence).
    pub fn term_mentions(&self, t: TermId, var: VarId) -> bool {
        match self.term_of(t) {
            ATerm::Var(v) => *v == var,
            ATerm::OutCol(_) | ATerm::IntCol(_) | ATerm::Const(_) => false,
            ATerm::Prop(base, _) => self.term_mentions(*base, var),
            ATerm::App(_, args) => args.iter().any(|arg| self.term_mentions(*arg, var)),
            ATerm::Agg { arg, group, .. } => {
                if self.term_mentions(*arg, var) {
                    return true;
                }
                // Free variables of the group (bound Σ-variables shadow).
                let mut vars = Vec::new();
                self.node_free_variables(*group, &mut vars);
                vars.contains(&var)
            }
        }
    }

    /// Collects the free variables of an expression node (mirror of
    /// [`GExpr::free_variables`]).
    pub fn node_free_variables(&self, n: NodeId, out: &mut Vec<VarId>) {
        match self.node_of(n) {
            ANode::Zero | ANode::One | ANode::Const(_) => {}
            ANode::Atom(atom) => match atom {
                AAtom::Cmp(_, lhs, rhs) => {
                    self.term_variables(*lhs, out);
                    self.term_variables(*rhs, out);
                }
                AAtom::IsNull(t, _) => self.term_variables(*t, out),
                AAtom::Pred(_, args) => {
                    for arg in args.iter() {
                        self.term_variables(*arg, out);
                    }
                }
            },
            ANode::NodeFn(t) | ANode::RelFn(t) | ANode::Unbounded(t) | ANode::Lab(t, _) => {
                self.term_variables(*t, out)
            }
            ANode::Mul(items) | ANode::Add(items) => {
                for item in items.iter() {
                    self.node_free_variables(*item, out);
                }
            }
            ANode::Squash(inner) | ANode::Not(inner) => self.node_free_variables(*inner, out),
            ANode::Sum(vars, body) => {
                let mut inner = Vec::new();
                self.node_free_variables(*body, &mut inner);
                for v in inner {
                    if !vars.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// Substitutes a variable by a term throughout a term.
    pub fn subst_term(&mut self, t: TermId, var: VarId, replacement: TermId) -> TermId {
        match self.term_of(t).clone() {
            ATerm::Var(v) if v == var => replacement,
            ATerm::Var(_) | ATerm::OutCol(_) | ATerm::IntCol(_) | ATerm::Const(_) => t,
            ATerm::Prop(base, key) => {
                let base = self.subst_term(base, var, replacement);
                self.term(ATerm::Prop(base, key))
            }
            ATerm::App(name, args) => {
                let args: Vec<TermId> =
                    args.iter().map(|a| self.subst_term(*a, var, replacement)).collect();
                self.term(ATerm::App(name, args.into()))
            }
            ATerm::Agg { kind, distinct, arg, group } => {
                let arg = self.subst_term(arg, var, replacement);
                let group = self.subst_node(group, var, replacement);
                self.term(ATerm::Agg { kind, distinct, arg, group })
            }
        }
    }

    fn subst_atom(&mut self, a: &AAtom, var: VarId, replacement: TermId) -> AAtom {
        match a {
            AAtom::Cmp(op, lhs, rhs) => AAtom::Cmp(
                *op,
                self.subst_term(*lhs, var, replacement),
                self.subst_term(*rhs, var, replacement),
            ),
            AAtom::IsNull(t, negated) => {
                AAtom::IsNull(self.subst_term(*t, var, replacement), *negated)
            }
            AAtom::Pred(name, args) => {
                let args: Vec<TermId> =
                    args.iter().map(|a| self.subst_term(*a, var, replacement)).collect();
                AAtom::Pred(*name, args.into())
            }
        }
    }

    /// Substitutes a (free) variable by a term throughout an expression
    /// (mirror of [`GExpr::substitute`], including `Σ` shadowing).
    pub fn subst_node(&mut self, n: NodeId, var: VarId, replacement: TermId) -> NodeId {
        match self.node_of(n).clone() {
            ANode::Zero | ANode::One | ANode::Const(_) => n,
            ANode::Atom(a) => {
                let a = self.subst_atom(&a, var, replacement);
                self.node(ANode::Atom(a))
            }
            ANode::NodeFn(t) => {
                let t = self.subst_term(t, var, replacement);
                self.node(ANode::NodeFn(t))
            }
            ANode::RelFn(t) => {
                let t = self.subst_term(t, var, replacement);
                self.node(ANode::RelFn(t))
            }
            ANode::Lab(t, label) => {
                let t = self.subst_term(t, var, replacement);
                self.node(ANode::Lab(t, label))
            }
            ANode::Unbounded(t) => {
                let t = self.subst_term(t, var, replacement);
                self.node(ANode::Unbounded(t))
            }
            ANode::Mul(items) => {
                let items: Vec<NodeId> =
                    items.iter().map(|i| self.subst_node(*i, var, replacement)).collect();
                self.node(ANode::Mul(items.into()))
            }
            ANode::Add(items) => {
                let items: Vec<NodeId> =
                    items.iter().map(|i| self.subst_node(*i, var, replacement)).collect();
                self.node(ANode::Add(items.into()))
            }
            ANode::Squash(inner) => {
                let inner = self.subst_node(inner, var, replacement);
                self.node(ANode::Squash(inner))
            }
            ANode::Not(inner) => {
                let inner = self.subst_node(inner, var, replacement);
                self.node(ANode::Not(inner))
            }
            ANode::Sum(vars, body) => {
                if vars.contains(&var) {
                    // The variable is shadowed; nothing to substitute.
                    n
                } else {
                    let body = self.subst_node(body, var, replacement);
                    self.node(ANode::Sum(vars, body))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Rendering (the canonical sort key — mirrors the Display impls)
    // ------------------------------------------------------------------

    fn write_const(out: &mut String, c: &GConst) {
        match c {
            GConst::Integer(v) => {
                let _ = write!(out, "{v}");
            }
            GConst::Float(v) => {
                let _ = write!(out, "{v}");
            }
            GConst::String(s) => {
                let _ = write!(out, "'{s}'");
            }
            GConst::Boolean(b) => {
                let _ = write!(out, "{b}");
            }
            GConst::Null => out.push_str("null"),
        }
    }

    fn write_var(out: &mut String, v: VarId, anon: bool) {
        if anon {
            out.push_str("e0");
        } else {
            let _ = write!(out, "e{}", v.0);
        }
    }

    fn write_term(&self, out: &mut String, t: TermId, anon: bool) {
        match self.term_of(t) {
            ATerm::Var(v) => Self::write_var(out, *v, anon),
            ATerm::OutCol(i) => {
                let _ = write!(out, "t.col{}", i + 1);
            }
            ATerm::IntCol(i) => {
                let _ = write!(out, "t.col{}:int", i + 1);
            }
            ATerm::Prop(base, key) => {
                self.write_term(out, *base, anon);
                out.push('.');
                out.push_str(self.str_of(*key));
            }
            ATerm::Const(c) => Self::write_const(out, self.const_of(*c)),
            ATerm::App(name, args) => {
                out.push_str(self.str_of(*name));
                out.push('(');
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.write_term(out, *arg, anon);
                }
                out.push(')');
            }
            ATerm::Agg { kind, distinct, arg, group } => {
                out.push_str(kind.name());
                out.push('(');
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                self.write_term(out, *arg, anon);
                out.push_str(" | ");
                self.write_node(out, *group, anon);
                out.push(')');
            }
        }
    }

    fn write_atom(&self, out: &mut String, a: &AAtom, anon: bool) {
        match a {
            AAtom::Cmp(op, lhs, rhs) => {
                out.push('[');
                self.write_term(out, *lhs, anon);
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
                self.write_term(out, *rhs, anon);
                out.push(']');
            }
            AAtom::IsNull(t, negated) => {
                out.push_str(if *negated { "[isNotNull(" } else { "[isNull(" });
                self.write_term(out, *t, anon);
                out.push_str(")]");
            }
            AAtom::Pred(name, args) => {
                out.push('[');
                out.push_str(self.str_of(*name));
                out.push('(');
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.write_term(out, *arg, anon);
                }
                out.push_str(")]");
            }
        }
    }

    fn write_node(&self, out: &mut String, n: NodeId, anon: bool) {
        match self.node_of(n) {
            ANode::Zero => out.push('0'),
            ANode::One => out.push('1'),
            ANode::Const(v) => {
                let _ = write!(out, "{v}");
            }
            ANode::Atom(a) => self.write_atom(out, a, anon),
            ANode::NodeFn(t) => {
                out.push_str("Node(");
                self.write_term(out, *t, anon);
                out.push(')');
            }
            ANode::RelFn(t) => {
                out.push_str("Rel(");
                self.write_term(out, *t, anon);
                out.push(')');
            }
            ANode::Lab(t, label) => {
                out.push_str("Lab(");
                self.write_term(out, *t, anon);
                out.push_str(", ");
                out.push_str(self.str_of(*label));
                out.push(')');
            }
            ANode::Unbounded(t) => {
                out.push_str("UNBOUNDED(");
                self.write_term(out, *t, anon);
                out.push(')');
            }
            ANode::Mul(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" × ");
                    }
                    if matches!(self.node_of(*item), ANode::Add(_)) {
                        out.push('(');
                        self.write_node(out, *item, anon);
                        out.push(')');
                    } else {
                        self.write_node(out, *item, anon);
                    }
                }
            }
            ANode::Add(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" + ");
                    }
                    self.write_node(out, *item, anon);
                }
            }
            ANode::Squash(inner) => {
                out.push('‖');
                self.write_node(out, *inner, anon);
                out.push('‖');
            }
            ANode::Not(inner) => {
                out.push_str("not(");
                self.write_node(out, *inner, anon);
                out.push(')');
            }
            ANode::Sum(vars, body) => {
                out.push_str("Σ_{");
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::write_var(out, *v, anon);
                }
                out.push_str("}(");
                self.write_node(out, *body, anon);
                out.push(')');
            }
        }
    }

    /// The rendered text of a node — identical to `GExpr::to_string` on the
    /// externalized tree. Cached per id.
    pub fn node_string(&mut self, n: NodeId) -> String {
        if let Some(text) = self.node_text.get(&n) {
            return text.clone();
        }
        let mut out = String::new();
        self.write_node(&mut out, n, false);
        self.node_text.insert(n, out.clone());
        out
    }

    /// The rendered text of a term — identical to `GTerm::to_string`.
    pub fn term_string(&mut self, t: TermId) -> String {
        if let Some(text) = self.term_text.get(&t) {
            return text.clone();
        }
        let mut out = String::new();
        self.write_term(&mut out, t, false);
        self.term_text.insert(t, out.clone());
        out
    }

    /// The variable-anonymized rendering of a term (every variable printed as
    /// `e0`) — identical to `term.rename_vars(|_| VarId(0)).to_string()`.
    fn term_anon_string(&self, t: TermId) -> String {
        let mut out = String::new();
        self.write_term(&mut out, t, true);
        out
    }

    // ------------------------------------------------------------------
    // Normalization (memoized mirror of crate::normalize)
    // ------------------------------------------------------------------

    /// Returns `true` if the node is guaranteed to evaluate to 0 or 1 in
    /// every interpretation (mirror of [`crate::normalize::is_zero_one`]).
    pub fn is_zero_one(&self, n: NodeId) -> bool {
        match self.node_of(n) {
            ANode::Zero | ANode::One => true,
            ANode::Const(v) => *v <= 1,
            ANode::Atom(_)
            | ANode::NodeFn(_)
            | ANode::RelFn(_)
            | ANode::Lab(_, _)
            | ANode::Unbounded(_)
            | ANode::Squash(_)
            | ANode::Not(_) => true,
            ANode::Mul(items) => items.iter().all(|i| self.is_zero_one(*i)),
            ANode::Add(_) | ANode::Sum(_, _) => false,
        }
    }

    /// Canonicalizes + constant-folds an atom (mirror of `simplify_atom`).
    fn simplify_atom(&mut self, atom: &AAtom) -> NodeId {
        // Orientation: the lexicographically smaller rendering goes left.
        let atom = match atom {
            AAtom::Cmp(op, lhs, rhs) => {
                let key_l = self.term_string(*lhs);
                let key_r = self.term_string(*rhs);
                if key_r < key_l {
                    AAtom::Cmp(op.flipped(), *rhs, *lhs)
                } else {
                    atom.clone()
                }
            }
            _ => atom.clone(),
        };
        if let AAtom::Cmp(op, lhs, rhs) = &atom {
            // Identical terms: O(1) id comparison thanks to hash-consing.
            if lhs == rhs {
                return match op {
                    CmpOp::Eq | CmpOp::Le | CmpOp::Ge => self.one(),
                    CmpOp::Neq | CmpOp::Lt | CmpOp::Gt => self.zero(),
                };
            }
            // Comparisons between distinct constants.
            if let (ATerm::Const(a), ATerm::Const(b)) =
                (self.term_of(*lhs).clone(), self.term_of(*rhs).clone())
            {
                let (a, b) = (self.const_of(a).clone(), self.const_of(b).clone());
                if let Some(result) = compare_constants(*op, &a, &b) {
                    return if result { self.one() } else { self.zero() };
                }
            }
        }
        if let AAtom::IsNull(t, negated) = &atom {
            if let ATerm::Const(c) = self.term_of(*t) {
                let is_null = matches!(self.const_of(*c), GConst::Null);
                let truth = if *negated { !is_null } else { is_null };
                return if truth { self.one() } else { self.zero() };
            }
        }
        self.node(ANode::Atom(atom))
    }

    /// One normalization pass over a node (memoized mirror of
    /// `normalize_once`).
    fn normalize_once(&mut self, n: NodeId) -> NodeId {
        if let Some(&cached) = self.once_cache.get(&n) {
            return cached;
        }
        let result = match self.node_of(n).clone() {
            ANode::Zero | ANode::One | ANode::Const(_) => n,
            ANode::Atom(atom) => self.simplify_atom(&atom),
            ANode::NodeFn(_) | ANode::RelFn(_) | ANode::Lab(_, _) | ANode::Unbounded(_) => n,
            ANode::Mul(items) => {
                let items: Vec<NodeId> = items.iter().map(|i| self.normalize_once(*i)).collect();
                self.distribute_product(items)
            }
            ANode::Add(items) => {
                let items: Vec<NodeId> = items.iter().map(|i| self.normalize_once(*i)).collect();
                self.mk_add(items)
            }
            ANode::Squash(inner) => {
                let inner = self.normalize_once(inner);
                if self.is_zero_one(inner) {
                    inner
                } else {
                    self.mk_squash(inner)
                }
            }
            ANode::Not(inner) => {
                let inner = self.normalize_once(inner);
                match self.node_of(inner).clone() {
                    // Brackets are 0/1-valued, so `not([φ]) = [¬φ]`.
                    ANode::Atom(AAtom::Cmp(op, lhs, rhs)) => {
                        self.simplify_atom(&AAtom::Cmp(op.negated(), lhs, rhs))
                    }
                    ANode::Atom(AAtom::IsNull(t, negated)) => {
                        self.simplify_atom(&AAtom::IsNull(t, !negated))
                    }
                    _ => self.mk_not(inner),
                }
            }
            ANode::Sum(vars, body) => {
                let body = self.normalize_once(body);
                match self.node_of(body).clone() {
                    // Σ over a sum splits into a sum of Σs.
                    ANode::Add(items) => {
                        let terms: Vec<NodeId> = items
                            .iter()
                            .map(|item| {
                                let summed = self.mk_sum(vars.to_vec(), *item);
                                self.normalize_once(summed)
                            })
                            .collect();
                        self.mk_add(terms)
                    }
                    _ => self.eliminate_pinned_variables(vars.to_vec(), body),
                }
            }
        };
        self.once_cache.insert(n, result);
        result
    }

    /// Mirror of `distribute_product`: expands sums, pulls out summations and
    /// deduplicates idempotent factors.
    fn distribute_product(&mut self, items: Vec<NodeId>) -> NodeId {
        // First check whether any factor is a sum that must be expanded.
        if let Some(position) = items.iter().position(|i| matches!(self.node_of(*i), ANode::Add(_)))
        {
            let ANode::Add(alternatives) = self.node_of(items[position]).clone() else {
                unreachable!()
            };
            let mut expanded = Vec::new();
            for alternative in alternatives.iter() {
                let mut factors = items.clone();
                factors[position] = *alternative;
                let product = self.mk_mul(factors);
                expanded.push(self.normalize_once(product));
            }
            return self.mk_add(expanded);
        }
        // Pull inner summations out of the product: `A × Σ_v B = Σ_v (A × B)`
        // (sound because summation variables are globally unique).
        if let Some(position) =
            items.iter().position(|i| matches!(self.node_of(*i), ANode::Sum(_, _)))
        {
            let ANode::Sum(vars, body) = self.node_of(items[position]).clone() else {
                unreachable!()
            };
            let mut factors = items.clone();
            factors[position] = body;
            let product = self.mk_mul(factors);
            let summed = self.mk_sum(vars.to_vec(), product);
            return self.normalize_once(summed);
        }
        // Deduplicate idempotent (0/1-valued) factors.
        let one = self.one();
        let zero = self.zero();
        let mut deduped: Vec<NodeId> = Vec::new();
        for item in items {
            if item == one {
                continue;
            }
            if item == zero {
                return zero;
            }
            if self.is_zero_one(item) && deduped.contains(&item) {
                continue;
            }
            // A factor and its negation in the same product make it zero.
            if let ANode::Not(inner) = self.node_of(item) {
                if deduped.contains(inner) {
                    return zero;
                }
            }
            if deduped
                .iter()
                .any(|d| matches!(self.node_of(*d), ANode::Not(inner) if *inner == item))
            {
                return zero;
            }
            deduped.push(item);
        }
        self.mk_mul(deduped)
    }

    /// Mirror of `eliminate_pinned_variables`: applies
    /// `Σ_v [v = t] × F(v) = F(t)` repeatedly with the same canonical choice
    /// of replacement, then rebuilds the summation.
    fn eliminate_pinned_variables(&mut self, mut vars: Vec<VarId>, body: NodeId) -> NodeId {
        let mut factors = match self.node_of(body).clone() {
            ANode::Mul(items) => items.to_vec(),
            _ => vec![body],
        };
        loop {
            // Collect, per bound variable, every factor of the form [v = t]
            // (or [t = v]) where `t` does not mention `v`.
            let mut pins: Vec<(VarId, usize, TermId)> = Vec::new();
            for (index, factor) in factors.iter().enumerate() {
                if let ANode::Atom(AAtom::Cmp(CmpOp::Eq, lhs, rhs)) = self.node_of(*factor) {
                    for (var_side, other) in [(*lhs, *rhs), (*rhs, *lhs)] {
                        if let ATerm::Var(v) = self.term_of(var_side) {
                            let v = *v;
                            if vars.contains(&v) && !self.term_mentions(other, v) {
                                pins.push((v, index, other));
                            }
                        }
                    }
                }
            }
            if pins.is_empty() {
                break;
            }
            // Pick the replacement canonically — prefer terms without bound
            // variables, then the smallest variable-anonymized rendering; a
            // variable with an ambiguous minimal key is left alone (see the
            // tree implementation for the full rationale).
            let mut best: Option<(usize, VarId, TermId, (bool, String))> = None;
            for candidate_var in vars.clone() {
                let candidate_pins: Vec<&(VarId, usize, TermId)> =
                    pins.iter().filter(|(v, _, _)| *v == candidate_var).collect();
                if candidate_pins.is_empty() {
                    continue;
                }
                let mut keyed: Vec<((bool, String), usize, TermId)> = candidate_pins
                    .iter()
                    .map(|(_, index, term)| {
                        let mut term_vars = Vec::new();
                        self.term_variables(*term, &mut term_vars);
                        let has_bound = term_vars.iter().any(|v| vars.contains(v));
                        let anonymized = self.term_anon_string(*term);
                        ((has_bound, anonymized), *index, *term)
                    })
                    .collect();
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                // Ambiguous minimal key: skip this variable.
                if keyed.len() > 1 && keyed[0].0 == keyed[1].0 {
                    continue;
                }
                let (candidate_key, index, term) = keyed.into_iter().next().expect("non-empty");
                let better = match &best {
                    None => true,
                    Some((_, _, _, best_key)) => candidate_key < *best_key,
                };
                if better {
                    best = Some((index, candidate_var, term, candidate_key));
                }
            }
            let Some((index, var, replacement, _)) = best else { break };
            factors.remove(index);
            factors = factors.iter().map(|f| self.subst_node(*f, var, replacement)).collect();
            vars.retain(|x| *x != var);
        }
        // Variables no longer occurring in the body still contribute an
        // unbounded domain factor, so the summation is rebuilt over all of
        // them (mirror of the tree implementation).
        let rebuilt = self.distribute_product(factors);
        match self.node_of(rebuilt).clone() {
            ANode::Add(items) => {
                let terms: Vec<NodeId> =
                    items.iter().map(|item| self.mk_sum(vars.clone(), *item)).collect();
                self.mk_add(terms)
            }
            _ => self.mk_sum(vars, rebuilt),
        }
    }

    /// Canonical ordering: sorts products and sums by their rendered text
    /// (memoized mirror of `sort_expr`).
    fn sort_node(&mut self, n: NodeId) -> NodeId {
        if let Some(&cached) = self.sort_cache.get(&n) {
            return cached;
        }
        let result = match self.node_of(n).clone() {
            ANode::Mul(items) => {
                let mut items: Vec<NodeId> = items.iter().map(|i| self.sort_node(*i)).collect();
                items.sort_by_key(|i| self.node_string(*i));
                self.node(ANode::Mul(items.into()))
            }
            ANode::Add(items) => {
                let mut items: Vec<NodeId> = items.iter().map(|i| self.sort_node(*i)).collect();
                items.sort_by_key(|i| self.node_string(*i));
                self.node(ANode::Add(items.into()))
            }
            ANode::Squash(inner) => {
                let inner = self.sort_node(inner);
                self.node(ANode::Squash(inner))
            }
            ANode::Not(inner) => {
                let inner = self.sort_node(inner);
                self.node(ANode::Not(inner))
            }
            ANode::Sum(vars, body) => {
                let body = self.sort_node(body);
                self.node(ANode::Sum(vars, body))
            }
            _ => n,
        };
        self.sort_cache.insert(n, result);
        result
    }

    /// Fully normalizes a node: the same bounded fixpoint of rewrite passes
    /// as the reference tree normalizer, followed by the canonical sort. The
    /// result is cached per id, so normalizing a shared subexpression twice —
    /// including across different pairs of a batch — is a hash lookup.
    pub fn normalize_id(&mut self, id: NodeId) -> NodeId {
        if let Some(&cached) = self.full_cache.get(&id) {
            return cached;
        }
        let mut current = id;
        // The rewrite system is terminating but individual passes can enable
        // new rewrites; iterate to a fixpoint with the same safety bound as
        // the tree implementation.
        for _ in 0..16 {
            let next = self.normalize_once(current);
            if next == current {
                break;
            }
            current = next;
        }
        let result = self.sort_node(current);
        self.full_cache.insert(id, result);
        // Note: `result` is deliberately NOT marked as its own fixpoint here.
        // If the pass bound above was hit without convergence, re-normalizing
        // the result must keep rewriting, exactly like the tree reference —
        // the memoized `once_cache` makes that re-run cheap anyway.
        result
    }

    /// Tree-level convenience: interns, normalizes, externalizes.
    pub fn normalize_expr(&mut self, expr: &GExpr) -> GExpr {
        let id = self.intern_expr(expr);
        let normalized = self.normalize_id(id);
        self.extern_expr(normalized)
    }
}

thread_local! {
    static THREAD_STORE: RefCell<GStore> = RefCell::new(GStore::new());
}

/// Normalizes through the calling thread's shared arena. Repeated calls on
/// structurally overlapping expressions (the common case in a batch of
/// related query pairs) hit the arena's memo tables.
pub fn normalize_via_arena(expr: &GExpr) -> GExpr {
    THREAD_STORE.with(|store| store.borrow_mut().normalize_expr(expr))
}

/// Runs `f` with the calling thread's shared arena.
pub fn with_thread_store<R>(f: impl FnOnce(&mut GStore) -> R) -> R {
    THREAD_STORE.with(|store| f(&mut store.borrow_mut()))
}

/// Node count of the calling thread's shared arena (budget checks).
pub fn thread_store_node_count() -> usize {
    with_thread_store(|store| store.node_count())
}

/// Epoch of the calling thread's shared arena.
pub fn thread_store_epoch() -> u64 {
    with_thread_store(|store| store.epoch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_tree;

    fn var(i: u32) -> GTerm {
        GTerm::Var(VarId(i))
    }

    fn sample_expressions() -> Vec<GExpr> {
        vec![
            GExpr::Zero,
            GExpr::One,
            GExpr::Const(3),
            GExpr::sum(
                vec![VarId(0), VarId(1)],
                GExpr::mul(vec![
                    GExpr::NodeFn(var(0)),
                    GExpr::RelFn(var(1)),
                    GExpr::LabFn(var(0), "Person".into()),
                    GExpr::eq(GTerm::app("src", vec![var(1)]), var(0)),
                    GExpr::eq(GTerm::OutCol(0), GTerm::prop(var(0), "name")),
                ]),
            ),
            GExpr::squash(GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(0))])),
            GExpr::not(GExpr::sum(vec![VarId(2)], GExpr::NodeFn(var(2)))),
            GExpr::sum(
                vec![VarId(0)],
                GExpr::mul(vec![
                    GExpr::NodeFn(var(0)),
                    GExpr::add(vec![
                        GExpr::Atom(GAtom::Cmp(
                            CmpOp::Lt,
                            GTerm::prop(var(0), "age"),
                            GTerm::int(10),
                        )),
                        GExpr::Atom(GAtom::Cmp(
                            CmpOp::Gt,
                            GTerm::prop(var(0), "age"),
                            GTerm::int(20),
                        )),
                    ]),
                ]),
            ),
            GExpr::Atom(GAtom::IsNull(GTerm::Const(GConst::Null), false)),
            GExpr::sum(
                vec![VarId(0), VarId(1)],
                GExpr::mul(vec![
                    GExpr::eq(var(1), GTerm::prop(var(0), "name")),
                    GExpr::NodeFn(var(0)),
                    GExpr::eq(GTerm::OutCol(0), var(1)),
                ]),
            ),
            GExpr::Atom(GAtom::Pred(
                "startsWith".into(),
                vec![GTerm::prop(var(0), "name"), GTerm::string("A")],
            )),
            GExpr::NodeFn(GTerm::Agg {
                kind: GAggKind::Sum,
                distinct: true,
                arg: Box::new(GTerm::prop(var(0), "age")),
                group: Box::new(GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0)))),
            }),
        ]
    }

    #[test]
    fn intern_extern_round_trips() {
        let mut store = GStore::new();
        for expr in sample_expressions() {
            let id = store.intern_expr(&expr);
            assert_eq!(store.extern_expr(id), expr, "round trip failed for {expr}");
        }
    }

    #[test]
    fn interning_is_canonical() {
        let mut store = GStore::new();
        let a = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(59)),
        ]);
        let b = a.clone();
        let id_a = store.intern_expr(&a);
        let id_b = store.intern_expr(&b);
        assert_eq!(id_a, id_b, "structurally equal expressions must share an id");
        // Shared subtrees are stored once: interning a again adds no nodes.
        let nodes_before = store.node_count();
        store.intern_expr(&a);
        assert_eq!(store.node_count(), nodes_before);
    }

    #[test]
    fn string_interning_dedupes_labels() {
        let mut store = GStore::new();
        store.intern_expr(&GExpr::LabFn(var(0), "Person".into()));
        store.intern_expr(&GExpr::LabFn(var(1), "Person".into()));
        let persons = store.strings.iter().filter(|s| s.as_str() == "Person").count();
        assert_eq!(persons, 1);
    }

    #[test]
    fn rendering_matches_tree_display() {
        let mut store = GStore::new();
        for expr in sample_expressions() {
            let id = store.intern_expr(&expr);
            assert_eq!(store.node_string(id), expr.to_string());
        }
    }

    #[test]
    fn arena_normalization_matches_reference() {
        let mut store = GStore::new();
        for expr in sample_expressions() {
            let via_arena = store.normalize_expr(&expr);
            let reference = normalize_tree(&expr);
            assert_eq!(via_arena, reference, "mismatch for {expr}");
        }
    }

    #[test]
    fn arena_normalization_is_idempotent() {
        let mut store = GStore::new();
        for expr in sample_expressions() {
            let once = store.normalize_expr(&expr);
            let twice = store.normalize_expr(&once);
            assert_eq!(once, twice, "not idempotent for {expr}");
        }
    }

    #[test]
    fn reset_epoch_invalidates_and_recovers() {
        let mut store = GStore::new();
        let exprs = sample_expressions();
        let old_ids: Vec<NodeId> = exprs.iter().map(|e| store.intern_expr(e)).collect();
        let old_normal: Vec<GExpr> = exprs.iter().map(|e| store.normalize_expr(e)).collect();
        let epoch_before = store.epoch();
        store.reset_epoch();
        assert_eq!(store.epoch(), epoch_before + 1, "epoch must advance");
        assert_eq!(store.node_count(), 0, "all nodes dropped");
        assert_eq!(store.term_count(), 0, "all terms dropped");
        assert_eq!(store.string_count(), 0, "all strings dropped");
        // Re-interning after the reset hands out dense ids from zero again,
        // and normalization results are unchanged (fresh memo tables).
        let new_ids: Vec<NodeId> = exprs.iter().map(|e| store.intern_expr(e)).collect();
        assert_eq!(old_ids, new_ids, "deterministic interning order after reset");
        for (expr, before) in exprs.iter().zip(&old_normal) {
            assert_eq!(store.normalize_expr(expr), *before, "normalize changed for {expr}");
        }
    }

    #[test]
    fn node_all_variables_collects_occurrences_only() {
        let mut store = GStore::new();
        // Variables occurring at leaves are collected (free and Σ-bound)...
        let expr = GExpr::sum(
            vec![VarId(0)],
            GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
        );
        let id = store.intern_expr(&expr);
        assert_eq!(store.node_all_variables(id).to_vec(), vec![VarId(0), VarId(1)]);
        // ... but a Σ binder with no occurrence in the body is NOT: the iso
        // matcher's walk never binds it (it only compares binder counts).
        let unused = GExpr::sum(vec![VarId(9)], GExpr::NodeFn(var(0)));
        let unused_id = store.intern_expr(&unused);
        assert_eq!(store.node_all_variables(unused_id).to_vec(), vec![VarId(0)]);
        // Memoized answers stay stable.
        assert_eq!(store.node_all_variables(id).to_vec(), vec![VarId(0), VarId(1)]);
    }

    #[test]
    fn peak_node_count_tracks_interning() {
        let mut store = GStore::new();
        store.intern_expr(&sample_expressions()[3]);
        assert!(peak_node_count() >= store.node_count());
        // A reset does not lower the recorded peak.
        let peak = peak_node_count();
        store.reset_epoch();
        assert!(peak_node_count() >= peak);
    }

    #[test]
    fn normalization_memo_hits_on_shared_structure() {
        let mut store = GStore::new();
        let expr = sample_expressions().remove(3);
        let id = store.intern_expr(&expr);
        let first = store.normalize_id(id);
        let second = store.normalize_id(id);
        assert_eq!(first, second);
        assert!(store.full_cache.contains_key(&id), "input is memoized");
        // Normalizing the result again must still converge to itself (and is
        // computed, not assumed — see normalize_id).
        assert_eq!(store.normalize_id(first), first);
    }
}
