//! The wire protocol: request parsing, response building, and the 1:1
//! mapping from [`graphqe::FailureCategory`] onto the `error.code` taxonomy.
//!
//! SERVING.md is the normative spec; this module is its implementation. The
//! invariants that matter:
//!
//! - Every per-pair `Unknown` verdict carries an `error` object whose `code`
//!   is exactly [`FailureCategory::code`] — the server never invents codes of
//!   its own for prover outcomes, so clients can dispatch on one taxonomy.
//! - Envelope-level failures (malformed JSON, overload, internal errors) use
//!   a disjoint set of codes (`bad_request`, `overloaded`, ...) and are the
//!   only ones paired with non-200 HTTP statuses.
//! - Definite verdicts are never degraded: `equivalent`/`not_equivalent`
//!   entries have no `error` field at all.

use std::time::Duration;

use graphqe::verdict::Verdict;
use graphqe::{BatchOutcome, FailureCategory};

use crate::json::{self, Json};

/// A parsed `/v1/prove` request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProveRequest {
    /// The query pairs to prove, in order.
    pub pairs: Vec<(String, String)>,
    /// Client-requested per-pair deadline (`Some(0)` trips immediately —
    /// useful for probing, and for deterministic tests). `None` means "use
    /// the server default".
    pub deadline_ms: Option<u64>,
    /// Client-requested SMT step budget (`None` = server default).
    pub smt_step_budget: Option<u64>,
    /// Client-requested counterexample-search graph budget (`None` = server
    /// default).
    pub search_graph_budget: Option<u64>,
    /// Whether every definite verdict should carry a machine-checkable proof
    /// certificate (validated server-side before it is served; a certificate
    /// that fails validation downgrades the pair to
    /// `unknown`/`certificate_invalid`). Default `false`: the hot path stays
    /// certificate-free.
    pub certificates: bool,
}

impl ProveRequest {
    /// Parses and validates a request body. Error strings are client-facing
    /// (they become the `message` of a `bad_request` response), so they name
    /// the offending field.
    pub fn parse(body: &str, max_pairs: usize) -> Result<ProveRequest, String> {
        let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let pairs_value = doc.get("pairs").ok_or("missing required field \"pairs\"")?;
        let entries = pairs_value.as_array().ok_or("\"pairs\" must be an array")?;
        if entries.is_empty() {
            return Err("\"pairs\" must not be empty".to_string());
        }
        if entries.len() > max_pairs {
            return Err(format!(
                "\"pairs\" has {} entries, above the server's limit of {max_pairs}",
                entries.len()
            ));
        }
        let mut pairs = Vec::with_capacity(entries.len());
        for (index, entry) in entries.iter().enumerate() {
            pairs.push(parse_pair(entry).map_err(|e| format!("pairs[{index}]: {e}"))?);
        }
        let int_field = |name: &str| -> Result<Option<u64>, String> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(value) => value
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("\"{name}\" must be a non-negative integer")),
            }
        };
        let certificates = match doc.get("certificates") {
            None | Some(Json::Null) => false,
            Some(value) => {
                value.as_bool().ok_or("\"certificates\" must be a boolean".to_string())?
            }
        };
        Ok(ProveRequest {
            pairs,
            deadline_ms: int_field("deadline_ms")?,
            smt_step_budget: int_field("smt_step_budget")?,
            search_graph_budget: int_field("search_graph_budget")?,
            certificates,
        })
    }

    /// The effective per-pair deadline: the client's request clamped to the
    /// server's ceiling, or the server default when the client sent none.
    pub fn effective_deadline(
        &self,
        default: Option<Duration>,
        max: Option<Duration>,
    ) -> Option<Duration> {
        let requested = self.deadline_ms.map(Duration::from_millis).or(default);
        match (requested, max) {
            (Some(r), Some(m)) => Some(r.min(m)),
            (r, _) => r,
        }
    }
}

fn parse_pair(entry: &Json) -> Result<(String, String), String> {
    if let Some(items) = entry.as_array() {
        let [left, right] = items else {
            return Err(format!("expected a 2-element array, got {} elements", items.len()));
        };
        let left = left.as_str().ok_or("pair elements must be strings")?;
        let right = right.as_str().ok_or("pair elements must be strings")?;
        return Ok((left.to_string(), right.to_string()));
    }
    if let Json::Obj(_) = entry {
        let left = entry.get("left").and_then(Json::as_str).ok_or("missing string \"left\"")?;
        let right = entry.get("right").and_then(Json::as_str).ok_or("missing string \"right\"")?;
        return Ok((left.to_string(), right.to_string()));
    }
    Err("each pair must be [\"q1\",\"q2\"] or {\"left\":...,\"right\":...}".to_string())
}

/// Serializes one per-pair outcome. `pair` is the original query texts —
/// needed to re-derive the spanned diagnostic of `invalid_query` and
/// `type_error` outcomes (verdicts carry only the rendered reason).
/// `certificate` is the pre-serialized proof artifact (from
/// [`graphqe::Certificate::to_json`]) when the request asked for
/// certificates and one was emitted; it is embedded verbatim.
pub fn outcome_json(outcome: &BatchOutcome, pair: (&str, &str), certificate: Option<&str>) -> Json {
    let mut fields = vec![
        ("verdict", json::str(verdict_name(&outcome.verdict))),
        ("latency_us", json::num(outcome.latency.as_micros() as f64)),
    ];
    match &outcome.verdict {
        Verdict::Equivalent(_) => {}
        Verdict::NotEquivalent(example) => {
            fields.push((
                "counterexample",
                json::obj(vec![
                    ("nodes", json::num(example.graph.node_count() as f64)),
                    ("relationships", json::num(example.graph.relationship_count() as f64)),
                    ("left_rows", json::num(example.left_rows as f64)),
                    ("right_rows", json::num(example.right_rows as f64)),
                    ("pool_index", json::num(example.pool_index as f64)),
                ]),
            ));
        }
        Verdict::Unknown { category, reason } => {
            let mut error = failure_json(*category, reason);
            if let (Json::Obj(fields), Some(diagnostic)) =
                (&mut error, diagnostic_json(*category, pair.0, pair.1))
            {
                fields.push(("diagnostic".to_string(), diagnostic));
            }
            fields.push(("error", error));
        }
    }
    if let Some(cert) = certificate {
        fields.push(("certificate", Json::Raw(cert.to_string())));
    }
    json::obj(fields)
}

/// The structured `diagnostic` object of an `invalid_query` or `type_error`
/// outcome: `side` (`"left"`/`"right"`), the stable diagnostic `code`, the
/// byte-offset `span` into that side's query text, `message`, and `note`
/// when present. Re-derived from the query texts through the same stage-⓪/①
/// checks the prover ran (both are deterministic and cache-warm), since the
/// verdict itself only carries the rendered reason string.
pub fn diagnostic_json(category: FailureCategory, left: &str, right: &str) -> Option<Json> {
    if !matches!(category, FailureCategory::InvalidQuery | FailureCategory::TypeError) {
        return None;
    }
    let probe = |side: &'static str, text: &str| {
        let diagnostic = match cypher_parser::parse_and_check(text) {
            Err(error) => error.diagnostic(),
            Ok(query) => match graphqe_analyzer::analyze_with_source(&query, text) {
                Err(diagnostic) => diagnostic,
                Ok(_) => return None,
            },
        };
        let mut fields = vec![
            ("side", json::str(side)),
            ("code", json::str(diagnostic.code)),
            (
                "span",
                json::obj(vec![
                    ("start", json::num(diagnostic.span.start as f64)),
                    ("end", json::num(diagnostic.span.end as f64)),
                ]),
            ),
            ("message", json::str(&diagnostic.message)),
        ];
        if let Some(note) = &diagnostic.note {
            fields.push(("note", json::str(note)));
        }
        Some(json::obj(fields))
    };
    probe("left", left).or_else(|| probe("right", right))
}

/// The `verdict` discriminator string.
pub fn verdict_name(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Equivalent(_) => "equivalent",
        Verdict::NotEquivalent(_) => "not_equivalent",
        Verdict::Unknown { .. } => "unknown",
    }
}

/// The `error` object of an unknown verdict: `code` from the stable
/// [`FailureCategory::code`] taxonomy, `stage`/`budget` when the category
/// carries them, and the human-readable `reason`.
pub fn failure_json(category: FailureCategory, reason: &str) -> Json {
    let mut fields = vec![("code", json::str(category.code()))];
    if let Some(stage) = category.stage() {
        fields.push(("stage", json::str(stage.to_string())));
    }
    if let Some(budget) = category.budget() {
        fields.push(("budget", json::num(budget as f64)));
    }
    fields.push(("reason", json::str(reason)));
    json::obj(fields)
}

/// An envelope-level error body: `{"error":{"code":...,"message":...}}` plus
/// any extra fields (`retry_after_ms` for overload, `limit` for body caps).
pub fn error_body(code: &str, message: &str, extras: Vec<(&str, Json)>) -> String {
    let mut fields = vec![("code", json::str(code)), ("message", json::str(message))];
    fields.extend(extras);
    json::obj(vec![("error", json::obj(fields))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_pair_shapes_and_limits() {
        let body = r#"{"pairs":[["a","b"],{"left":"c","right":"d"}],"deadline_ms":100}"#;
        let request = ProveRequest::parse(body, 16).unwrap();
        assert_eq!(request.pairs.len(), 2);
        assert_eq!(request.pairs[1], ("c".to_string(), "d".to_string()));
        assert_eq!(request.deadline_ms, Some(100));
        assert_eq!(request.smt_step_budget, None);
        assert!(!request.certificates);
    }

    #[test]
    fn parses_the_certificates_flag() {
        let on = ProveRequest::parse(r#"{"pairs":[["a","b"]],"certificates":true}"#, 16).unwrap();
        assert!(on.certificates);
        let off = ProveRequest::parse(r#"{"pairs":[["a","b"]],"certificates":null}"#, 16).unwrap();
        assert!(!off.certificates);
        let bad = ProveRequest::parse(r#"{"pairs":[["a","b"]],"certificates":1}"#, 16).unwrap_err();
        assert!(bad.contains("certificates"));
    }

    #[test]
    fn rejects_malformed_requests_with_field_names() {
        let no_pairs = ProveRequest::parse("{}", 16).unwrap_err();
        assert!(no_pairs.contains("pairs"));
        let empty = ProveRequest::parse(r#"{"pairs":[]}"#, 16).unwrap_err();
        assert!(empty.contains("empty"));
        let too_many = ProveRequest::parse(r#"{"pairs":[["a","b"],["c","d"]]}"#, 1).unwrap_err();
        assert!(too_many.contains("limit"));
        let bad_entry = ProveRequest::parse(r#"{"pairs":[["a"]]}"#, 16).unwrap_err();
        assert!(bad_entry.contains("pairs[0]"));
        let bad_deadline =
            ProveRequest::parse(r#"{"pairs":[["a","b"]],"deadline_ms":-3}"#, 16).unwrap_err();
        assert!(bad_deadline.contains("deadline_ms"));
    }

    #[test]
    fn deadline_clamping() {
        let request = ProveRequest {
            pairs: vec![],
            deadline_ms: Some(60_000),
            smt_step_budget: None,
            search_graph_budget: None,
            certificates: false,
        };
        let clamped =
            request.effective_deadline(Some(Duration::from_secs(5)), Some(Duration::from_secs(10)));
        assert_eq!(clamped, Some(Duration::from_secs(10)));
        let defaulted = ProveRequest { deadline_ms: None, ..request.clone() }
            .effective_deadline(Some(Duration::from_secs(5)), Some(Duration::from_secs(10)));
        assert_eq!(defaulted, Some(Duration::from_secs(5)));
    }

    #[test]
    fn failure_codes_carry_trip_details() {
        let rendered =
            failure_json(FailureCategory::Timeout { stage: limits::Stage::Search }, "expired")
                .to_string();
        assert!(rendered.contains(r#""code":"timeout""#));
        assert!(rendered.contains(r#""stage":"search""#));
        let budget = failure_json(
            FailureCategory::BudgetExhausted { stage: limits::Stage::Smt, budget: 9 },
            "out of steps",
        )
        .to_string();
        assert!(budget.contains(r#""budget":9"#));
    }

    #[test]
    fn invalid_query_outcomes_carry_a_spanned_diagnostic() {
        let rendered = diagnostic_json(
            FailureCategory::InvalidQuery,
            "MATCH (n) RETURN n",
            "MATCH (n) WHERE m.age = 1 RETURN n",
        )
        .expect("diagnostic")
        .to_string();
        assert!(rendered.contains(r#""side":"right""#), "{rendered}");
        assert!(rendered.contains(r#""code":"undefined_variable""#), "{rendered}");
        assert!(rendered.contains(r#""span":{"start":16,"end":17}"#), "{rendered}");

        let syntax = diagnostic_json(FailureCategory::InvalidQuery, "MATCH (n RETURN n", "x")
            .expect("diagnostic")
            .to_string();
        assert!(syntax.contains(r#""side":"left""#), "{syntax}");
        assert!(syntax.contains(r#""code":"syntax""#), "{syntax}");
    }

    #[test]
    fn type_error_outcomes_carry_a_type_mismatch_diagnostic() {
        let rendered = diagnostic_json(
            FailureCategory::TypeError,
            "UNWIND 1 AS x RETURN x",
            "UNWIND [1] AS x RETURN x",
        )
        .expect("diagnostic")
        .to_string();
        assert!(rendered.contains(r#""side":"left""#), "{rendered}");
        assert!(rendered.contains(r#""code":"type_mismatch""#), "{rendered}");
        assert!(rendered.contains("UNWIND requires a list"), "{rendered}");
        // Other failure categories never carry a diagnostic.
        assert!(diagnostic_json(FailureCategory::Other, "a", "b").is_none());
    }
}
