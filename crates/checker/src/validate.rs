//! The certificate validation engine.
//!
//! [`check_certificate`] independently re-validates every claim a certificate
//! makes that does not require re-running the prover: the normalization
//! derivation is replayed rule-by-rule, proof trees are re-checked
//! structurally (summand partitions, atom removals, isomorphism pairings,
//! class counts), and counterexample bags are re-computed by the checker's
//! own evaluator. SMT facts (zero-pruning, implied atoms) are *trusted
//! obligations*: their structural consequences are verified, their
//! arithmetic is not re-proved. See the crate docs for the exact trust
//! boundary.

use std::fmt;

use cypher_parser::ast::{Clause, ProjectionItems, Query};
use cypher_parser::parse_query;

use crate::cert::{
    CertVerdict, Certificate, Evidence, KeptSummand, Matching, Proof, QueryCert, SideSummands,
    CERTIFICATE_VERSION,
};
use crate::eval::{evaluate_query, QueryResult};
use crate::gx::{self, Gx, VarMapping};
use crate::rules;
use crate::sig;
use crate::value::Value;

/// A structured validation failure.
///
/// `code` is a stable machine-readable identifier; `message` carries the
/// human-readable detail. Codes are part of the wire protocol and never
/// change meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Stable failure code (e.g. `"derivation_mismatch"`).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl CheckError {
    fn new(code: &'static str, message: impl Into<String>) -> CheckError {
        CheckError { code, message: message.into() }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Counts of the obligations a successful check discharged (or trusted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Normalization rule applications replayed and confirmed (both sides).
    pub derivation_steps: usize,
    /// Divide-and-conquer segments whose proofs were checked.
    pub segments: usize,
    /// Summands matched via a verified isomorphism bijection.
    pub summands_matched: usize,
    /// Isomorphism classes whose membership and counts were re-verified.
    pub classes_counted: usize,
    /// SMT facts accepted on trust (zero-pruned summands, implied atoms).
    pub trusted_obligations: usize,
    /// Counterexample result rows re-computed by the checker's evaluator.
    pub rows_reevaluated: usize,
    /// Stage-⓪ signature columns re-inferred and confirmed (both sides).
    pub signature_columns: usize,
}

/// Independently validates a certificate.
///
/// Returns the obligation counts on success, or the first structured failure
/// encountered. The check never invokes the prover, the SMT solver, or any
/// crate other than the parser.
pub fn check_certificate(cert: &Certificate) -> Result<CheckSummary, CheckError> {
    if cert.version != CERTIFICATE_VERSION {
        return Err(CheckError::new(
            "schema_error",
            format!(
                "unsupported certificate version {} (checker supports {})",
                cert.version, CERTIFICATE_VERSION
            ),
        ));
    }
    let mut summary = CheckSummary::default();
    let (left_source, left_normalized) = replay_derivation("left", &cert.left, &mut summary)?;
    let (right_source, right_normalized) = replay_derivation("right", &cert.right, &mut summary)?;
    match (cert.verdict, &cert.evidence) {
        (
            CertVerdict::Equivalent,
            Evidence::Equivalence { column_permutation, permuted_right, segments },
        ) => {
            check_equivalence(
                &right_normalized,
                column_permutation,
                permuted_right.as_deref(),
                segments,
                &mut summary,
            )?;
            let _ = left_normalized;
        }
        (
            CertVerdict::NotEquivalent,
            Evidence::Counterexample {
                graph,
                pool_index: _,
                left_columns,
                left_rows,
                right_columns,
                right_rows,
            },
        ) => {
            check_witness(
                graph,
                &left_source,
                left_columns,
                left_rows,
                &right_source,
                right_columns,
                right_rows,
                &mut summary,
            )?;
        }
        (
            CertVerdict::NotEquivalent,
            Evidence::SignatureMismatch {
                left_signature,
                right_signature,
                graph,
                pool_index: _,
                left_columns,
                left_rows,
                right_columns,
                right_rows,
            },
        ) => {
            check_signature("left", &left_source, left_signature, &mut summary)?;
            check_signature("right", &right_source, right_signature, &mut summary)?;
            match sig::signatures_discriminate(left_signature, right_signature) {
                Some(true) => {}
                Some(false) => {
                    return Err(CheckError::new(
                        "signatures_compatible",
                        "the recorded signatures admit a type-compatible column bijection; \
                         they do not discriminate the queries",
                    ));
                }
                None => {
                    return Err(CheckError::new(
                        "schema_error",
                        "a recorded signature column carries an unknown type name",
                    ));
                }
            }
            // The signatures alone never validate NOT_EQUIVALENT — the
            // concrete witness must separate the queries just like a plain
            // counterexample certificate.
            check_witness(
                graph,
                &left_source,
                left_columns,
                left_rows,
                &right_source,
                right_columns,
                right_rows,
                &mut summary,
            )?;
        }
        (verdict, _) => {
            return Err(CheckError::new(
                "schema_error",
                format!("evidence type does not match verdict {}", verdict.name()),
            ));
        }
    }
    Ok(summary)
}

// ---------------------------------------------------------------------------
// Derivation replay
// ---------------------------------------------------------------------------

/// Replays the normalization derivation of one query and compares it 1:1
/// against the recorded steps. Returns the parsed source and the checker's
/// own normalized query.
fn replay_derivation(
    side: &str,
    cert: &QueryCert,
    summary: &mut CheckSummary,
) -> Result<(Query, Query), CheckError> {
    let source = parse_query(&cert.source)
        .map_err(|e| CheckError::new("parse_error", format!("{side} source: {e}")))?;
    let (normalized, trace) = rules::normalize_with_trace(&source);
    if trace.len() != cert.steps.len() {
        return Err(CheckError::new(
            "derivation_mismatch",
            format!(
                "{side}: recorded {} derivation steps, replay produced {}",
                cert.steps.len(),
                trace.len()
            ),
        ));
    }
    for (index, (recorded, replayed)) in cert.steps.iter().zip(trace.iter()).enumerate() {
        if recorded.rule != replayed.rule {
            return Err(CheckError::new(
                "derivation_mismatch",
                format!(
                    "{side} step {index}: recorded rule {:?}, replay applied {:?}",
                    recorded.rule, replayed.rule
                ),
            ));
        }
        if (recorded.part, recorded.clause) != (replayed.part, replayed.clause) {
            return Err(CheckError::new(
                "derivation_mismatch",
                format!(
                    "{side} step {index} ({}): recorded position ({}, {}), replay changed \
                     ({}, {})",
                    recorded.rule, recorded.part, recorded.clause, replayed.part, replayed.clause
                ),
            ));
        }
        let recorded_after = parse_query(&recorded.after).map_err(|e| {
            CheckError::new("parse_error", format!("{side} step {index} after-state: {e}"))
        })?;
        if recorded_after != replayed.after {
            return Err(CheckError::new(
                "derivation_mismatch",
                format!(
                    "{side} step {index} ({}): recorded after-state differs from replay",
                    recorded.rule
                ),
            ));
        }
    }
    let recorded_normalized = parse_query(&cert.normalized)
        .map_err(|e| CheckError::new("parse_error", format!("{side} normalized: {e}")))?;
    if recorded_normalized != normalized {
        return Err(CheckError::new(
            "derivation_mismatch",
            format!("{side}: recorded normalized query differs from replayed fixpoint"),
        ));
    }
    summary.derivation_steps += cert.steps.len();
    Ok((source, normalized))
}

// ---------------------------------------------------------------------------
// Equivalence evidence
// ---------------------------------------------------------------------------

fn check_equivalence(
    right_normalized: &Query,
    permutation: &[usize],
    permuted_right: Option<&str>,
    segments: &[crate::cert::SegmentWitness],
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    check_permutation(right_normalized, permutation, permuted_right)?;
    if segments.is_empty() {
        return Err(CheckError::new("schema_error", "equivalence evidence carries no segments"));
    }
    summary.segments += segments.len();
    for (index, segment) in segments.iter().enumerate() {
        check_proof(&segment.left, &segment.right, &segment.proof, summary)
            .map_err(|e| CheckError::new(e.code, format!("segment {index}: {}", e.message)))?;
    }
    Ok(())
}

fn check_permutation(
    right_normalized: &Query,
    permutation: &[usize],
    permuted_right: Option<&str>,
) -> Result<(), CheckError> {
    let n = permutation.len();
    let mut seen = vec![false; n];
    for &source in permutation {
        if source >= n || seen[source] {
            return Err(CheckError::new(
                "permutation_invalid",
                format!("{permutation:?} is not a permutation of 0..{n}"),
            ));
        }
        seen[source] = true;
    }
    let identity = permutation.iter().enumerate().all(|(i, p)| i == *p);
    match permuted_right {
        None => {
            if !identity {
                return Err(CheckError::new(
                    "permutation_invalid",
                    "non-identity permutation requires the permuted right query",
                ));
            }
        }
        Some(text) => {
            let recorded = parse_query(text)
                .map_err(|e| CheckError::new("parse_error", format!("permuted right: {e}")))?;
            let expected = permute_returns(right_normalized, permutation);
            if recorded != expected {
                return Err(CheckError::new(
                    "permuted_right_mismatch",
                    "recorded permuted right query does not match applying the permutation \
                     to the normalized right query",
                ));
            }
        }
    }
    Ok(())
}

/// Reorders the items of every `RETURN` clause according to `permutation`
/// (output position `i` takes the item previously at `permutation[i]`).
/// Mirrors the prover's application exactly, including silently skipping
/// parts whose `RETURN` shape does not fit.
fn permute_returns(query: &Query, permutation: &[usize]) -> Query {
    let mut result = query.clone();
    for part in &mut result.parts {
        if let Some(Clause::Return(projection)) = part.clauses.last_mut() {
            if let ProjectionItems::Items(items) = &mut projection.items {
                if items.len() == permutation.len() {
                    let original = items.clone();
                    for (position, &source) in permutation.iter().enumerate() {
                        items[position] = original[source].clone();
                    }
                }
            }
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Proof checking
// ---------------------------------------------------------------------------

fn check_proof(
    left: &Gx,
    right: &Gx,
    proof: &Proof,
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    match proof {
        Proof::Identical => {
            if left != right {
                return Err(CheckError::new(
                    "identical_mismatch",
                    "proof claims structural identity but the trees differ",
                ));
            }
            Ok(())
        }
        Proof::Peel(inner) => match (left, right) {
            (Gx::Squash(a), Gx::Squash(b)) => check_proof(a, b, inner, summary),
            _ => Err(CheckError::new(
                "peel_mismatch",
                "peel proof requires both sides to be squashes",
            )),
        },
        Proof::Summands(sp) => {
            let left_kept = check_side_summands("left", left, &sp.left, summary)?;
            let right_kept = check_side_summands("right", right, &sp.right, summary)?;
            check_matching(&left_kept, &right_kept, &sp.matching, summary)
        }
    }
}

/// Verifies one side's summand partition and per-summand simplification
/// records; returns the kept (simplified) summands in record order.
fn check_side_summands<'c>(
    side: &str,
    expr: &Gx,
    recorded: &'c SideSummands,
    summary: &mut CheckSummary,
) -> Result<Vec<&'c KeptSummand>, CheckError> {
    let summands = gx::to_summands(expr);
    if summands.len() != recorded.total {
        return Err(CheckError::new(
            "summand_partition_mismatch",
            format!(
                "{side}: expression decomposes into {} summands, record claims {}",
                summands.len(),
                recorded.total
            ),
        ));
    }
    let mut covered = vec![false; recorded.total];
    let mut cover = |index: usize, role: &str| -> Result<(), CheckError> {
        if index >= recorded.total || covered[index] {
            return Err(CheckError::new(
                "summand_partition_mismatch",
                format!("{side}: summand {index} {role} out of range or covered twice"),
            ));
        }
        covered[index] = true;
        Ok(())
    };
    for &index in &recorded.zero_pruned {
        cover(index, "(zero-pruned)")?;
    }
    for kept in &recorded.kept {
        cover(kept.index, "(kept)")?;
    }
    if covered.iter().any(|c| !c) {
        return Err(CheckError::new(
            "summand_partition_mismatch",
            format!("{side}: not every summand is accounted for"),
        ));
    }
    // Each zero-pruned summand rests on a trusted unsatisfiability obligation.
    summary.trusted_obligations += recorded.zero_pruned.len();
    for kept in &recorded.kept {
        let (vars, factors) = gx::decompose_summand(&summands[kept.index]);
        let mut remaining = factors;
        for atom in &kept.removed_atoms {
            if !matches!(atom, Gx::Atom(_)) {
                return Err(CheckError::new(
                    "removed_atom_mismatch",
                    format!("{side} summand {}: removed factor is not an atom", kept.index),
                ));
            }
            let position = remaining.iter().position(|f| f == atom).ok_or_else(|| {
                CheckError::new(
                    "removed_atom_mismatch",
                    format!(
                        "{side} summand {}: removed atom is not among the remaining factors",
                        kept.index
                    ),
                )
            })?;
            remaining.remove(position);
            // The implication that justified the removal is a trusted
            // obligation; the structural removal itself is what we checked.
            summary.trusted_obligations += 1;
        }
        let rebuilt = Gx::sum(vars, Gx::mul(remaining));
        if rebuilt != kept.result {
            return Err(CheckError::new(
                "summand_simplification_mismatch",
                format!(
                    "{side} summand {}: recorded simplified form does not match rebuilding \
                     from the original summand",
                    kept.index
                ),
            ));
        }
    }
    Ok(recorded.kept.iter().collect())
}

fn check_matching(
    left_kept: &[&KeptSummand],
    right_kept: &[&KeptSummand],
    matching: &Matching,
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    match matching {
        Matching::Bijection(pairs) => {
            if pairs.len() != left_kept.len() || pairs.len() != right_kept.len() {
                return Err(CheckError::new(
                    "iso_pair_mismatch",
                    format!(
                        "bijection has {} pairs for {} left and {} right kept summands",
                        pairs.len(),
                        left_kept.len(),
                        right_kept.len()
                    ),
                ));
            }
            let mut left_used = vec![false; left_kept.len()];
            let mut right_used = vec![false; right_kept.len()];
            let mut mapping = VarMapping::new();
            for &(l, r) in pairs {
                if l >= left_kept.len() || r >= right_kept.len() || left_used[l] || right_used[r] {
                    return Err(CheckError::new(
                        "iso_pair_mismatch",
                        format!("pair ({l}, {r}) out of range or repeated"),
                    ));
                }
                left_used[l] = true;
                right_used[r] = true;
                if !gx::unify_expr(&left_kept[l].result, &right_kept[r].result, &mut mapping) {
                    return Err(CheckError::new(
                        "iso_pair_mismatch",
                        format!("pair ({l}, {r}) does not unify under the shared variable mapping"),
                    ));
                }
            }
            summary.summands_matched += pairs.len();
            Ok(())
        }
        Matching::Classes {
            representatives,
            left_assign,
            right_assign,
            left_counts,
            right_counts,
        } => {
            if left_counts.len() != representatives.len()
                || right_counts.len() != representatives.len()
            {
                return Err(CheckError::new(
                    "class_count_mismatch",
                    "count vectors do not match the number of representatives",
                ));
            }
            let recompute = |side: &str,
                             kept: &[&KeptSummand],
                             assign: &[usize]|
             -> Result<Vec<usize>, CheckError> {
                if assign.len() != kept.len() {
                    return Err(CheckError::new(
                        "class_membership_mismatch",
                        format!(
                            "{side}: {} class assignments for {} kept summands",
                            assign.len(),
                            kept.len()
                        ),
                    ));
                }
                let mut counts = vec![0usize; representatives.len()];
                for (position, (&class, summand)) in assign.iter().zip(kept.iter()).enumerate() {
                    if class >= representatives.len() {
                        return Err(CheckError::new(
                            "class_membership_mismatch",
                            format!("{side} kept summand {position}: class {class} out of range"),
                        ));
                    }
                    let mut mapping = VarMapping::new();
                    if !gx::unify_expr(&representatives[class], &summand.result, &mut mapping) {
                        return Err(CheckError::new(
                            "class_membership_mismatch",
                            format!(
                                "{side} kept summand {position} does not unify with its \
                                 class representative {class}"
                            ),
                        ));
                    }
                    counts[class] += 1;
                }
                Ok(counts)
            };
            let left_recomputed = recompute("left", left_kept, left_assign)?;
            let right_recomputed = recompute("right", right_kept, right_assign)?;
            if &left_recomputed != left_counts || &right_recomputed != right_counts {
                return Err(CheckError::new(
                    "class_count_mismatch",
                    "recorded per-class counts differ from recomputed counts",
                ));
            }
            if left_counts != right_counts {
                return Err(CheckError::new(
                    "class_count_mismatch",
                    "per-class summand counts differ between the two sides",
                ));
            }
            summary.classes_counted += representatives.len();
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Counterexample evidence
// ---------------------------------------------------------------------------

/// The witness half shared by `Counterexample` and `SignatureMismatch`
/// evidence: both result bags are re-computed on the embedded graph and must
/// match the recorded bags, which in turn must differ from each other.
#[allow(clippy::too_many_arguments)]
fn check_witness(
    graph: &crate::cert::GraphCert,
    left_source: &Query,
    left_columns: &[String],
    left_rows: &[Vec<Value>],
    right_source: &Query,
    right_columns: &[String],
    right_rows: &[Vec<Value>],
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    let graph = graph
        .build()
        .map_err(|e| CheckError::new("schema_error", format!("invalid graph: {e}")))?;
    check_side_evaluation("left", &graph, left_source, left_columns, left_rows, summary)?;
    check_side_evaluation("right", &graph, right_source, right_columns, right_rows, summary)?;
    let left_bag = QueryResult { columns: left_columns.to_vec(), rows: left_rows.to_vec() };
    let right_bag = QueryResult { columns: right_columns.to_vec(), rows: right_rows.to_vec() };
    if left_bag.bag_equal(&right_bag) {
        return Err(CheckError::new(
            "bags_equal",
            "counterexample result bags are equal; the graph does not distinguish the queries",
        ));
    }
    Ok(())
}

/// Re-infers one side's stage-⓪ signature with the checker's own typing
/// rules ([`sig::infer_signature`]) and compares it to the recorded columns.
fn check_signature(
    side: &str,
    source: &Query,
    recorded: &[crate::cert::SigColumn],
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    let inferred = sig::infer_signature(source).ok_or_else(|| {
        CheckError::new(
            "signature_mismatch",
            format!("{side}: the checker infers no static output signature for this query"),
        )
    })?;
    if inferred != recorded {
        return Err(CheckError::new(
            "signature_mismatch",
            format!(
                "{side}: re-inferred signature {inferred:?} differs from recorded {recorded:?}"
            ),
        ));
    }
    summary.signature_columns += inferred.len();
    Ok(())
}

fn check_side_evaluation(
    side: &str,
    graph: &crate::graph::Graph,
    source: &Query,
    columns: &[String],
    rows: &[Vec<Value>],
    summary: &mut CheckSummary,
) -> Result<(), CheckError> {
    let result = evaluate_query(graph, source)
        .map_err(|e| CheckError::new("eval_error", format!("{side} query: {e}")))?;
    if result.columns != columns {
        return Err(CheckError::new(
            "bag_mismatch",
            format!(
                "{side}: evaluated columns {:?} differ from recorded {:?}",
                result.columns, columns
            ),
        ));
    }
    let recorded = QueryResult { columns: columns.to_vec(), rows: rows.to_vec() };
    if !result.bag_equal(&recorded) {
        return Err(CheckError::new(
            "bag_mismatch",
            format!(
                "{side}: evaluated result bag ({} rows) differs from recorded bag ({} rows)",
                result.rows.len(),
                rows.len()
            ),
        ));
    }
    summary.rows_reevaluated += result.rows.len();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{DerivationStep, Evidence, GraphCert, SegmentWitness, SummandsProof};
    use crate::graph::NodeData;
    use crate::gx::{CmpOp, GxAtom, GxTerm, VarId};
    use crate::value::NodeId;
    use cypher_parser::pretty::query_to_string;

    fn query_cert(source: &str) -> QueryCert {
        let parsed = parse_query(source).expect("test query parses");
        let (normalized, trace) = rules::normalize_with_trace(&parsed);
        QueryCert {
            source: query_to_string(&parsed),
            steps: trace
                .iter()
                .map(|step| DerivationStep {
                    rule: step.rule.to_string(),
                    part: step.part,
                    clause: step.clause,
                    after: query_to_string(&step.after),
                })
                .collect(),
            normalized: query_to_string(&normalized),
        }
    }

    fn identical_cert(left: &str, right: &str) -> Certificate {
        Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::Equivalent,
            left: query_cert(left),
            right: query_cert(right),
            evidence: Evidence::Equivalence {
                column_permutation: vec![0],
                permuted_right: None,
                segments: vec![SegmentWitness {
                    left: Gx::One,
                    right: Gx::One,
                    proof: Proof::Identical,
                }],
            },
        }
    }

    #[test]
    fn accepts_identity_equivalence() {
        let cert = identical_cert(
            "MATCH (n) WHERE n.age > 1 RETURN n",
            "MATCH (m) WHERE m.age > 1 RETURN m",
        );
        let summary = check_certificate(&cert).expect("certificate checks");
        assert_eq!(summary.segments, 1);
    }

    #[test]
    fn rejects_dropped_derivation_step() {
        let mut cert = identical_cert("MATCH (a)-[r]-(b) RETURN a", "MATCH (a)-[r]-(b) RETURN a");
        // The undirected pattern guarantees at least one recorded rule.
        assert!(!cert.left.steps.is_empty(), "test premise: derivation is non-empty");
        cert.left.steps.remove(0);
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "derivation_mismatch");
    }

    #[test]
    fn rejects_identical_claim_on_different_trees() {
        let mut cert = identical_cert("MATCH (n) RETURN n", "MATCH (n) RETURN n");
        if let Evidence::Equivalence { segments, .. } = &mut cert.evidence {
            segments[0].right = Gx::Zero;
        }
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "identical_mismatch");
    }

    #[test]
    fn rejects_invalid_permutation() {
        let mut cert = identical_cert("MATCH (n) RETURN n", "MATCH (n) RETURN n");
        if let Evidence::Equivalence { column_permutation, .. } = &mut cert.evidence {
            *column_permutation = vec![1];
        }
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "permutation_invalid");
    }

    #[test]
    fn checks_bijection_under_shared_mapping() {
        // left: x1 ⋅ [x1.a = x2.a], right: y7 ⋅ [y7.a = y9.a] — unifiable.
        let atom = |a: u32, b: u32| {
            Gx::Atom(GxAtom::Cmp(
                CmpOp::Eq,
                GxTerm::Prop(Box::new(GxTerm::Var(VarId(a))), "a".into()),
                GxTerm::Prop(Box::new(GxTerm::Var(VarId(b))), "a".into()),
            ))
        };
        let left = Gx::Add(vec![atom(1, 2)]);
        let right = Gx::Add(vec![atom(7, 9)]);
        let proof = Proof::Summands(Box::new(SummandsProof {
            left: SideSummands {
                total: 1,
                zero_pruned: vec![],
                kept: vec![KeptSummand { index: 0, removed_atoms: vec![], result: atom(1, 2) }],
            },
            right: SideSummands {
                total: 1,
                zero_pruned: vec![],
                kept: vec![KeptSummand { index: 0, removed_atoms: vec![], result: atom(7, 9) }],
            },
            matching: Matching::Bijection(vec![(0, 0)]),
        }));
        let mut summary = CheckSummary::default();
        check_proof(&left, &right, &proof, &mut summary).expect("bijection unifies");
        assert_eq!(summary.summands_matched, 1);
    }

    #[test]
    fn rejects_counterexample_with_equal_bags() {
        let left = query_cert("MATCH (n) RETURN n");
        let right = query_cert("MATCH (n) RETURN n");
        let cert = Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::NotEquivalent,
            left,
            right,
            evidence: Evidence::Counterexample {
                graph: GraphCert { nodes: vec![NodeData::default()], relationships: vec![] },
                pool_index: 0,
                left_columns: vec!["n".into()],
                left_rows: vec![vec![Value::Node(NodeId(0))]],
                right_columns: vec!["n".into()],
                right_rows: vec![vec![Value::Node(NodeId(0))]],
            },
        };
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "bags_equal");
    }

    #[test]
    fn rejects_tampered_bag_row() {
        let left = query_cert("MATCH (n) RETURN n.k");
        let right = query_cert("MATCH (n) WHERE n.k = 1 RETURN n.k");
        let cert = Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::NotEquivalent,
            left,
            right,
            evidence: Evidence::Counterexample {
                graph: GraphCert { nodes: vec![NodeData::default()], relationships: vec![] },
                pool_index: 0,
                // The node has no `k` property: left yields one NULL row,
                // right yields nothing. Tamper: record an integer instead.
                left_columns: vec!["n.k".into()],
                left_rows: vec![vec![Value::Integer(42)]],
                right_columns: vec!["n.k".into()],
                right_rows: vec![],
            },
        };
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "bag_mismatch");
    }

    fn signature_cert(
        left: &str,
        right: &str,
        left_ty: (&str, &str, bool),
        right_ty: (&str, &str, bool),
        left_rows: Vec<Vec<Value>>,
        right_rows: Vec<Vec<Value>>,
    ) -> Certificate {
        let column = |(name, ty, nullable): (&str, &str, bool)| crate::cert::SigColumn {
            name: name.to_string(),
            ty: ty.to_string(),
            nullable,
        };
        Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::NotEquivalent,
            left: query_cert(left),
            right: query_cert(right),
            evidence: Evidence::SignatureMismatch {
                left_signature: vec![column(left_ty)],
                right_signature: vec![column(right_ty)],
                graph: GraphCert { nodes: vec![], relationships: vec![] },
                pool_index: 0,
                left_columns: vec!["x".into()],
                left_rows,
                right_columns: vec!["x".into()],
                right_rows,
            },
        }
    }

    #[test]
    fn accepts_signature_mismatch_with_witness() {
        let cert = signature_cert(
            "RETURN 1 AS x",
            "RETURN 'a' AS x",
            ("x", "Integer", false),
            ("x", "String", false),
            vec![vec![Value::Integer(1)]],
            vec![vec![Value::String("a".into())]],
        );
        let summary = check_certificate(&cert).expect("discriminating signatures plus witness");
        assert_eq!(summary.signature_columns, 2);
    }

    #[test]
    fn rejects_signature_evidence_when_signatures_are_compatible() {
        // Both sides re-infer as (Integer, non-null): the recorded signatures
        // are honest but admit a bijection, so they prove nothing.
        let cert = signature_cert(
            "RETURN 1 AS x",
            "RETURN 2 AS x",
            ("x", "Integer", false),
            ("x", "Integer", false),
            vec![vec![Value::Integer(1)]],
            vec![vec![Value::Integer(2)]],
        );
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "signatures_compatible");
    }

    #[test]
    fn rejects_signature_evidence_with_tampered_type() {
        // The left side really infers Integer; recording Float is a tamper
        // the checker catches by re-running inference itself.
        let cert = signature_cert(
            "RETURN 1 AS x",
            "RETURN 'a' AS x",
            ("x", "Float", false),
            ("x", "String", false),
            vec![vec![Value::Integer(1)]],
            vec![vec![Value::String("a".into())]],
        );
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "signature_mismatch");
    }

    #[test]
    fn rejects_signature_evidence_with_equal_bags() {
        // Signatures discriminate, but both queries yield the empty bag on
        // the empty graph — the witness requirement is not waived by a
        // signature mismatch.
        let cert = signature_cert(
            "MATCH (n) RETURN n AS x",
            "MATCH (n) RETURN 1 AS x",
            ("x", "Node", false),
            ("x", "Integer", false),
            vec![],
            vec![],
        );
        let err = check_certificate(&cert).unwrap_err();
        assert_eq!(err.code, "bags_equal");
    }
}
