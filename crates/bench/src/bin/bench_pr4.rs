//! PR 4 performance benchmark: the flat interned-symbol row representation
//! in the oracle evaluator (plus the LRU-bounded search memo), measured
//! against the paper-faithful tree baseline over the full CyEqSet and
//! CyNeqSet datasets.
//!
//! Writes `BENCH_pr4.json` in the `BENCH_pr3.json` schema — so `bench_gate`
//! and future PRs can compare reports field by field — extended with an
//! **eval-stage block**: evaluating every dataset query over a fixed graph
//! set under both row representations (flat vs map) crossed with both
//! matching paths (indexed vs scan), which is what `bench_gate --stage
//! eval` enforces across reports; the cache block gains the search-memo
//! hit/miss/eviction counters. Exits non-zero if any pipeline ever
//! disagrees on a verdict.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use cyeqset::{cyeqset, cyneqset, QueryPair};
use cypher_normalizer::normalize_query;
use cypher_parser::parse_and_check;
use graphqe::counterexample::{find_counterexample, find_counterexample_parallel};
use graphqe::{CacheStats, GraphQE, SearchConfig, Verdict};
use graphqe_bench::{run_pairs_report, table3_rows, PairResult};
use liastar::{check_equivalence_with_opts, DecideOptions};
use property_graph::{
    evaluate_query, evaluate_query_scan, Evaluator, GraphGenerator, PropertyGraph,
};

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1000.0
}

/// Minimum wall-clock of three samples of `measured` — the same
/// least-contaminated-estimate rationale as `timed_runs`, applied to the
/// search-stage measurements the gate enforces across reports.
fn min_of_samples(mut measured: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            measured();
            ms(start.elapsed())
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times each pipeline stage separately over the dataset (sequentially, so
/// per-stage numbers are comparable across runs and against the committed
/// `BENCH_pr2.json`).
fn stage_breakdown(pairs: &[QueryPair]) -> Vec<(&'static str, f64)> {
    let mut parse = Duration::ZERO;
    let mut rules = Duration::ZERO;
    let mut build = Duration::ZERO;
    let mut decide_tree = Duration::ZERO;
    let mut decide_arena = Duration::ZERO;
    for pair in pairs {
        let start = Instant::now();
        let parsed1 = parse_and_check(&pair.left);
        let parsed2 = parse_and_check(&pair.right);
        parse += start.elapsed();
        let (Ok(q1), Ok(q2)) = (parsed1, parsed2) else { continue };

        let start = Instant::now();
        let n1 = normalize_query(&q1);
        let n2 = normalize_query(&q2);
        rules += start.elapsed();

        let start = Instant::now();
        let built1 = gexpr::build_query(&n1);
        let built2 = gexpr::build_query(&n2);
        build += start.elapsed();
        let (Ok(b1), Ok(b2)) = (built1, built2) else { continue };

        let start = Instant::now();
        let tree = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: true },
        );
        decide_tree += start.elapsed();

        let start = Instant::now();
        let arena = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: false },
        );
        decide_arena += start.elapsed();
        assert_eq!(tree.0, arena.0, "decide mismatch on {} vs {}", pair.left, pair.right);
    }
    vec![
        ("parse_check", ms(parse)),
        ("rule_normalize", ms(rules)),
        ("gexpr_build", ms(build)),
        ("decide_tree", ms(decide_tree)),
        ("decide_arena", ms(decide_arena)),
    ]
}

/// Search-stage measurements over the pairs the prover actually searches
/// (those whose verdict is not EQUIVALENT), plus the scan-vs-indexed oracle
/// evaluation micro-comparison over a fixed graph set.
struct SearchStage {
    /// Sequential (lazy) search over all searched pairs, warm pools.
    sequential_ms: f64,
    /// Parallel search over the same pairs (identical on a 1-core machine).
    parallel_ms: f64,
    /// Evaluating every pair's two queries over the fixed graph set with the
    /// linear-scan matcher.
    oracle_scan_ms: f64,
    /// The same evaluations through the adjacency index.
    oracle_indexed_ms: f64,
    /// Pool index of every witness discovered by the main run, in pair
    /// order. The distribution shows how early the pool separates pairs.
    witness_indices: Vec<usize>,
    /// Search-result memo hits/misses over the optimized timed runs.
    memo_hits: u64,
    memo_misses: u64,
}

/// The fixed oracle workload shared by the search- and eval-stage
/// measurements: one graph pool and one parsed copy of every dataset pair,
/// built once per dataset run.
struct OracleWorkload {
    graphs: Vec<PropertyGraph>,
    parsed: Vec<(cypher_parser::ast::Query, cypher_parser::ast::Query)>,
}

impl OracleWorkload {
    fn new(pairs: &[QueryPair]) -> Self {
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::new(0xBEEF).generate_many(16));
        let parsed = pairs
            .iter()
            .filter_map(|pair| {
                Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
            })
            .collect();
        OracleWorkload { graphs, parsed }
    }
}

fn search_stage(
    pairs: &[QueryPair],
    results: &[PairResult],
    workload: &OracleWorkload,
    threads: usize,
) -> SearchStage {
    let witness_indices: Vec<usize> = results
        .iter()
        .filter_map(|r| match &r.verdict {
            Verdict::NotEquivalent(example) => Some(example.pool_index),
            _ => None,
        })
        .collect();

    // The searched pairs: everything the decision stage could not prove.
    let searched: Vec<(_, _)> = pairs
        .iter()
        .zip(results)
        .filter(|(_, r)| !r.verdict.is_equivalent())
        .filter_map(|(pair, _)| {
            Some((parse_and_check(&pair.left).ok()?, parse_and_check(&pair.right).ok()?))
        })
        .collect();
    // Memo bypassed: these timings must measure the search machinery itself
    // (pool iteration, evaluation, worker scheduling), not memo replay.
    // Pools stay shared/warm, which is what both variants see in steady
    // state. Each measurement takes the minimum of several samples, like
    // `timed_runs` — the gate enforces the sequential/scan ratio across
    // reports, so a single noise-inflated sample must not leak into it.
    let config = SearchConfig { use_memo: false, ..SearchConfig::default() };

    let sequential_ms = min_of_samples(|| {
        for (q1, q2) in &searched {
            let _ = find_counterexample(q1, q2, &config);
        }
    });
    let parallel_ms = min_of_samples(|| {
        for (q1, q2) in &searched {
            let _ = find_counterexample_parallel(q1, q2, &config, threads.max(2));
        }
    });

    // Scan-vs-indexed oracle evaluation over the shared fixed workload: the
    // evaluator is what the search spends its time in, so this isolates the
    // adjacency index's contribution from pool caching and early exits.
    let oracle_scan_ms = min_of_samples(|| {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query_scan(graph, q1);
                let _ = evaluate_query_scan(graph, q2);
            }
        }
    });
    let oracle_indexed_ms = min_of_samples(|| {
        for (q1, q2) in &workload.parsed {
            for graph in &workload.graphs {
                let _ = evaluate_query(graph, q1);
                let _ = evaluate_query(graph, q2);
            }
        }
    });

    SearchStage {
        sequential_ms,
        parallel_ms,
        oracle_scan_ms,
        oracle_indexed_ms,
        witness_indices,
        memo_hits: 0,
        memo_misses: 0,
    }
}

/// Eval-stage measurements: every dataset query evaluated over a fixed
/// graph set under both row representations crossed with both matching
/// paths. The flat/map ratios are what `bench_gate --stage eval` enforces
/// across reports; the scan/indexed pairs additionally locate a regression
/// (row bookkeeping vs candidate enumeration).
struct EvalStage {
    /// Flat interned-symbol rows, adjacency-indexed matching (the
    /// production configuration of the counterexample oracle).
    flat_indexed_ms: f64,
    /// Flat rows over the linear-scan matcher.
    flat_scan_ms: f64,
    /// Map-backed rows (the differential oracle), indexed matching.
    map_indexed_ms: f64,
    /// Map-backed rows over the linear-scan matcher.
    map_scan_ms: f64,
}

fn eval_stage(workload: &OracleWorkload) -> EvalStage {
    let measure = |scan_matching: bool, map_rows: bool| -> f64 {
        let evaluator = Evaluator { scan_matching, map_rows, ..Evaluator::new() };
        // Plan once per query (what the search does), so the timings compare
        // evaluation proper — row bookkeeping and candidate enumeration —
        // across the four configurations.
        let prepared: Vec<_> = workload
            .parsed
            .iter()
            .map(|(q1, q2)| (evaluator.prepare(q1), evaluator.prepare(q2)))
            .collect();
        min_of_samples(|| {
            for (left, right) in &prepared {
                for graph in &workload.graphs {
                    let _ = evaluator.evaluate_prepared(graph, left);
                    let _ = evaluator.evaluate_prepared(graph, right);
                }
            }
        })
    };
    EvalStage {
        flat_indexed_ms: measure(false, false),
        flat_scan_ms: measure(true, false),
        map_indexed_ms: measure(false, true),
        map_scan_ms: measure(true, true),
    }
}

struct DatasetRun {
    name: &'static str,
    baseline_ms: f64,
    arena_ms: f64,
    speedup: f64,
    /// The same comparison with the (pipeline-independent) counterexample
    /// search disabled: the speedup of the decision stages in isolation.
    baseline_decide_only_ms: f64,
    arena_decide_only_ms: f64,
    decide_only_speedup: f64,
    equivalent: usize,
    not_equivalent: usize,
    unknown: usize,
    stages: Vec<(&'static str, f64)>,
    cache: CacheStats,
    search: SearchStage,
    eval: EvalStage,
    index_builds: u64,
    index_build_ms: f64,
}

fn classify(results: &[PairResult]) -> (usize, usize, usize) {
    let equivalent = results.iter().filter(|r| r.verdict.is_equivalent()).count();
    let not_equivalent = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
    (equivalent, not_equivalent, results.len() - equivalent - not_equivalent)
}

/// Runs one configuration `SAMPLES` times after one untimed warmup run;
/// returns the results and cache report of the last (warm) run plus the
/// **minimum** wall-clock (the least noise-contaminated estimate on a small
/// shared machine — see `bench_pr2` for the full rationale).
fn timed_runs(
    prover: &GraphQE,
    pairs: &[QueryPair],
    threads: usize,
) -> (Vec<PairResult>, CacheStats, f64) {
    const SAMPLES: usize = 5;
    run_pairs_report(prover, pairs.to_vec(), threads); // warmup, untimed
    let mut wall_ms = Vec::new();
    let mut last = (Vec::new(), CacheStats::default());
    for _ in 0..SAMPLES {
        let start = Instant::now();
        last = run_pairs_report(prover, pairs.to_vec(), threads);
        wall_ms.push(ms(start.elapsed()));
    }
    eprintln!("    samples: {wall_ms:.1?}");
    let min = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    (last.0, last.1, min)
}

fn run_dataset(name: &'static str, pairs: Vec<QueryPair>, threads: usize) -> DatasetRun {
    property_graph::index::reset_build_stats();

    // Baseline: the paper-faithful configuration — reference tree normalizer,
    // cloning iso matcher, no decide caches, one pair at a time on one
    // thread, and the search-result memo disabled so the baseline pays the
    // real counterexample-search cost every sample (it still shares the
    // graph pools, as every configuration has since PR 1).
    let baseline_prover = GraphQE {
        use_tree_normalizer: true,
        search_config: SearchConfig { use_memo: false, ..SearchConfig::default() },
        ..GraphQE::new()
    };
    let (baseline, _, baseline_ms) = timed_runs(&baseline_prover, &pairs, 1);

    // Optimized pipeline: id-native decide, indexed oracle evaluation,
    // shared pools, batched over all cores.
    let arena_prover = GraphQE::new();
    let memo_before = graphqe::counterexample::search_memo_stats();
    let (arena, cache, arena_ms) = timed_runs(&arena_prover, &pairs, threads);
    let memo_after = graphqe::counterexample::search_memo_stats();

    // The refactor must not move a single verdict.
    for (old, new) in baseline.iter().zip(arena.iter()) {
        assert_eq!(
            (old.verdict.is_equivalent(), old.verdict.is_not_equivalent()),
            (new.verdict.is_equivalent(), new.verdict.is_not_equivalent()),
            "verdict changed on {} vs {}",
            old.pair.left,
            old.pair.right,
        );
    }

    // Same comparison without the counterexample search, which is shared by
    // both pipelines: this isolates the speedup of the decision stages.
    let baseline_ns = GraphQE { search_counterexamples: false, ..baseline_prover.clone() };
    let (_, _, baseline_decide_only_ms) = timed_runs(&baseline_ns, &pairs, 1);
    let arena_ns = GraphQE { search_counterexamples: false, ..GraphQE::new() };
    let (_, _, arena_decide_only_ms) = timed_runs(&arena_ns, &pairs, threads);

    let (index_builds, index_build) = property_graph::index::build_stats();
    let workload = OracleWorkload::new(&pairs);
    let mut search = search_stage(&pairs, &arena, &workload, threads);
    search.memo_hits = memo_after.0.saturating_sub(memo_before.0);
    search.memo_misses = memo_after.1.saturating_sub(memo_before.1);
    let (equivalent, not_equivalent, unknown) = classify(&arena);
    if name == "cyeqset" {
        println!("\nTable III (flat-row oracle pipeline):");
        print!("{}", graphqe_bench::format_table3(&table3_rows(&arena)));
    }
    let eval = eval_stage(&workload);
    DatasetRun {
        name,
        baseline_ms,
        arena_ms,
        speedup: baseline_ms / arena_ms.max(f64::EPSILON),
        baseline_decide_only_ms,
        arena_decide_only_ms,
        decide_only_speedup: baseline_decide_only_ms / arena_decide_only_ms.max(f64::EPSILON),
        equivalent,
        not_equivalent,
        unknown,
        stages: stage_breakdown(&pairs),
        cache,
        search,
        eval,
        index_builds,
        index_build_ms: ms(index_build),
    }
}

fn json_stages(stages: &[(&str, f64)]) -> String {
    let fields: Vec<String> =
        stages.iter().map(|(name, value)| format!("\"{name}\": {value:.3}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_cache(cache: &CacheStats) -> String {
    format!(
        "{{\"smt_formula_hits\": {}, \"smt_formula_misses\": {}, \
         \"smt_formula_hit_rate\": {:.4}, \"summand_hits\": {}, \"summand_misses\": {}, \
         \"summand_hit_rate\": {:.4}, \"disjoint_hits\": {}, \"disjoint_misses\": {}, \
         \"disjoint_hit_rate\": {:.4}, \"search_memo_hits\": {}, \
         \"search_memo_misses\": {}, \"search_memo_evictions\": {}, \
         \"epoch_resets\": {}}}",
        cache.smt_formula_hits,
        cache.smt_formula_misses,
        cache.smt_formula_hit_rate(),
        cache.summand_hits,
        cache.summand_misses,
        cache.summand_hit_rate(),
        cache.disjoint_hits,
        cache.disjoint_misses,
        cache.disjoint_hit_rate(),
        cache.search_memo_hits,
        cache.search_memo_misses,
        cache.search_memo_evictions,
        cache.epoch_resets,
    )
}

fn json_eval(eval: &EvalStage) -> String {
    format!(
        "{{\"flat_indexed_ms\": {:.3}, \"flat_scan_ms\": {:.3}, \"map_indexed_ms\": {:.3}, \
         \"map_scan_ms\": {:.3}}}",
        eval.flat_indexed_ms, eval.flat_scan_ms, eval.map_indexed_ms, eval.map_scan_ms,
    )
}

fn json_search(run: &DatasetRun) -> String {
    let indices: Vec<String> =
        run.search.witness_indices.iter().map(|index| index.to_string()).collect();
    format!(
        "{{\"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"oracle_scan_ms\": {:.3}, \
         \"oracle_indexed_ms\": {:.3}, \"index_builds\": {}, \"index_build_ms\": {:.3}, \
         \"memo_hits\": {}, \"memo_misses\": {}, \"witness_indices\": [{}]}}",
        run.search.sequential_ms,
        run.search.parallel_ms,
        run.search.oracle_scan_ms,
        run.search.oracle_indexed_ms,
        run.index_builds,
        run.index_build_ms,
        run.search.memo_hits,
        run.search.memo_misses,
        indices.join(", "),
    )
}

fn json_dataset(run: &DatasetRun) -> String {
    format!(
        "{{\n    \"baseline_tree_sequential_ms\": {:.3},\n    \
         \"arena_parallel_ms\": {:.3},\n    \"speedup\": {:.3},\n    \
         \"baseline_decide_only_ms\": {:.3},\n    \
         \"arena_decide_only_ms\": {:.3},\n    \"decide_only_speedup\": {:.3},\n    \
         \"equivalent\": {},\n    \"not_equivalent\": {},\n    \"unknown\": {},\n    \
         \"stages_ms\": {},\n    \"cache\": {},\n    \"peak_arena_nodes\": {},\n    \
         \"search\": {},\n    \"eval\": {}\n  }}",
        run.baseline_ms,
        run.arena_ms,
        run.speedup,
        run.baseline_decide_only_ms,
        run.arena_decide_only_ms,
        run.decide_only_speedup,
        run.equivalent,
        run.not_equivalent,
        run.unknown,
        json_stages(&run.stages),
        json_cache(&run.cache),
        run.cache.peak_arena_nodes,
        json_search(run),
        json_eval(&run.eval),
    )
}

/// Prints the trajectory against the committed previous report, when present
/// (informational — the enforced comparison is `bench_gate`'s job).
fn print_trajectory(runs: &[&DatasetRun]) {
    let Ok(previous_text) = std::fs::read_to_string("BENCH_pr3.json") else {
        println!("\nno BENCH_pr3.json next to the binary; skipping trajectory");
        return;
    };
    let Ok(previous) = graphqe_bench::json::Json::parse(&previous_text) else {
        println!("\nBENCH_pr3.json is unreadable; skipping trajectory");
        return;
    };
    println!("\ntrajectory vs committed BENCH_pr3.json:");
    for run in runs {
        let field = |name: &str| {
            previous.get_path(&[run.name, name]).and_then(graphqe_bench::json::Json::as_f64)
        };
        if let Some(before) = field("arena_parallel_ms") {
            println!(
                "  {}: e2e {before:.1} ms -> {:.1} ms ({:.2}x)",
                run.name,
                run.arena_ms,
                before / run.arena_ms.max(f64::EPSILON)
            );
        }
        if let (Some(e2e), Some(decide)) =
            (field("arena_parallel_ms"), field("arena_decide_only_ms"))
        {
            // Floor both sides at 0.25 ms: the subtraction of two noisy
            // measurements can go to (or below) zero, where ratios stop
            // meaning anything. `bench_gate` applies the same floor.
            let before_search = (e2e - decide).max(0.25);
            let after_search = (run.arena_ms - run.arena_decide_only_ms).max(0.25);
            println!(
                "  {}: search stage (e2e - decide-only) {before_search:.1} ms -> \
                 {after_search:.1} ms ({:.2}x)",
                run.name,
                before_search / after_search
            );
        }
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("bench_pr4: {threads} worker thread(s)");

    let eq = run_dataset("cyeqset", cyeqset(), threads);
    let neq = run_dataset("cyneqset", cyneqset(), threads);

    for run in [&eq, &neq] {
        println!(
            "\n{}: baseline {:.1} ms -> indexed oracle {:.1} ms ({:.2}x), \
             verdicts: {} eq / {} neq / {} unknown",
            run.name,
            run.baseline_ms,
            run.arena_ms,
            run.speedup,
            run.equivalent,
            run.not_equivalent,
            run.unknown
        );
        println!(
            "  decide-only (no counterexample search): {:.1} ms -> {:.1} ms ({:.2}x)",
            run.baseline_decide_only_ms, run.arena_decide_only_ms, run.decide_only_speedup
        );
        for (stage, stage_ms) in &run.stages {
            println!("  stage {stage:<16} {stage_ms:>10.1} ms");
        }
        println!(
            "  search: sequential {:.1} ms, parallel {:.1} ms, oracle eval scan {:.1} ms -> \
             indexed {:.1} ms ({:.2}x), {} index builds in {:.2} ms",
            run.search.sequential_ms,
            run.search.parallel_ms,
            run.search.oracle_scan_ms,
            run.search.oracle_indexed_ms,
            run.search.oracle_scan_ms / run.search.oracle_indexed_ms.max(f64::EPSILON),
            run.index_builds,
            run.index_build_ms,
        );
        println!(
            "  search memo (timed optimized runs): {} hits / {} misses, {} LRU evictions \
             process-wide",
            run.search.memo_hits,
            run.search.memo_misses,
            graphqe::counterexample::search_memo_evictions(),
        );
        println!(
            "  eval stage: flat indexed {:.1} ms / map indexed {:.1} ms ({:.2}x), \
             flat scan {:.1} ms / map scan {:.1} ms ({:.2}x)",
            run.eval.flat_indexed_ms,
            run.eval.map_indexed_ms,
            run.eval.map_indexed_ms / run.eval.flat_indexed_ms.max(f64::EPSILON),
            run.eval.flat_scan_ms,
            run.eval.map_scan_ms,
            run.eval.map_scan_ms / run.eval.flat_scan_ms.max(f64::EPSILON),
        );
        if !run.search.witness_indices.is_empty() {
            let max = run.search.witness_indices.iter().max().unwrap();
            let sum: usize = run.search.witness_indices.iter().sum();
            println!(
                "  witnesses: {} found, pool index mean {:.1}, max {}",
                run.search.witness_indices.len(),
                sum as f64 / run.search.witness_indices.len() as f64,
                max,
            );
        }
        println!(
            "  caches (warm run): smt formula {:.0}% hit ({}h/{}m), summand {:.0}% hit \
             ({}h/{}m), disjoint {:.0}% hit ({}h/{}m), peak arena {} nodes",
            run.cache.smt_formula_hit_rate() * 100.0,
            run.cache.smt_formula_hits,
            run.cache.smt_formula_misses,
            run.cache.summand_hit_rate() * 100.0,
            run.cache.summand_hits,
            run.cache.summand_misses,
            run.cache.disjoint_hit_rate() * 100.0,
            run.cache.disjoint_hits,
            run.cache.disjoint_misses,
            run.cache.peak_arena_nodes,
        );
    }
    print_trajectory(&[&eq, &neq]);

    let json = format!(
        "{{\n  \"threads\": {},\n  \"cyeqset\": {},\n  \"cyneqset\": {}\n}}\n",
        threads,
        json_dataset(&eq),
        json_dataset(&neq),
    );
    std::fs::write("BENCH_pr4.json", &json).expect("write BENCH_pr4.json");
    println!("\nwrote BENCH_pr4.json");
}
