//! A hand-written lexer for the Cypher fragment supported by GraphQE-rs.
//!
//! The lexer converts the raw query text into a vector of [`Token`]s. It
//! resolves keywords case-insensitively, decodes string escapes, and skips
//! whitespace and comments (`//` line comments and `/* ... */` block
//! comments).

use crate::token::{Token, TokenKind};
use crate::{ParseError, Span};

/// Lexes an entire query string into tokens (terminated by an `Eof` token).
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(input).tokenize()
}

/// The lexer state: a byte cursor over the input string.
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer { input, bytes: input.as_bytes(), pos: 0 }
    }

    /// Consumes the lexer and produces the full token stream.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let is_eof = token.kind == TokenKind::Eof;
            tokens.push(token);
            if is_eof {
                break;
            }
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos < self.bytes.len() {
                        if self.peek() == Some(b'*') && self.peek_at(1) == Some(b'/') {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        return Err(ParseError::lexical(
                            "unterminated block comment",
                            Span::new(start, self.pos),
                        ));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produces the next token, skipping whitespace and comments.
    pub fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::new(start, start)));
        };

        let kind = match b {
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b'[' => self.single(TokenKind::LBracket),
            b']' => self.single(TokenKind::RBracket),
            b'{' => self.single(TokenKind::LBrace),
            b'}' => self.single(TokenKind::RBrace),
            b',' => self.single(TokenKind::Comma),
            b':' => self.single(TokenKind::Colon),
            b';' => self.single(TokenKind::Semicolon),
            b'|' => self.single(TokenKind::Pipe),
            b'+' => self.single(TokenKind::Plus),
            b'-' => self.single(TokenKind::Minus),
            b'*' => self.single(TokenKind::Star),
            b'/' => self.single(TokenKind::Slash),
            b'%' => self.single(TokenKind::Percent),
            b'^' => self.single(TokenKind::Caret),
            b'=' => self.single(TokenKind::Eq),
            b'.' => {
                if self.peek_at(1) == Some(b'.') {
                    self.pos += 2;
                    TokenKind::DotDot
                } else if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    // A float literal starting with `.`, e.g. `.5`.
                    return self.lex_number(start);
                } else {
                    self.single(TokenKind::Dot)
                }
            }
            b'<' => {
                if self.peek_at(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Le
                } else if self.peek_at(1) == Some(b'>') {
                    self.pos += 2;
                    TokenKind::Neq
                } else {
                    self.single(TokenKind::Lt)
                }
            }
            b'>' => {
                if self.peek_at(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Ge
                } else {
                    self.single(TokenKind::Gt)
                }
            }
            b'!' => {
                if self.peek_at(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::Neq
                } else {
                    return Err(ParseError::lexical(
                        "unexpected character `!` (did you mean `!=`?)",
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'$' => {
                self.pos += 1;
                let name = self.lex_ident_text();
                if name.is_empty() {
                    return Err(ParseError::lexical(
                        "expected parameter name after `$`",
                        Span::new(start, self.pos),
                    ));
                }
                TokenKind::Parameter(name)
            }
            b'\'' | b'"' => return self.lex_string(start, b),
            b'`' => return self.lex_backtick_ident(start),
            b'0'..=b'9' => return self.lex_number(start),
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let text = self.lex_ident_text();
                TokenKind::keyword_from_str(&text).unwrap_or(TokenKind::Ident(text))
            }
            other => {
                return Err(ParseError::lexical(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, start + 1),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn lex_ident_text(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn lex_backtick_ident(&mut self, start: usize) -> Result<Token, ParseError> {
        // Consume the opening backtick.
        self.pos += 1;
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'`') => break,
                Some(b) => text.push(b as char),
                None => {
                    return Err(ParseError::lexical(
                        "unterminated backtick-quoted identifier",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        Ok(Token::new(TokenKind::Ident(text), Span::new(start, self.pos)))
    }

    fn lex_string(&mut self, start: usize, quote: u8) -> Result<Token, ParseError> {
        // Consume the opening quote.
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b) if b == quote => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'r') => value.push('\r'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'\'') => value.push('\''),
                    Some(b'"') => value.push('"'),
                    Some(other) => {
                        return Err(ParseError::lexical(
                            format!("unknown escape sequence `\\{}`", other as char),
                            Span::new(self.pos - 2, self.pos),
                        ));
                    }
                    None => {
                        return Err(ParseError::lexical(
                            "unterminated string literal",
                            Span::new(start, self.pos),
                        ));
                    }
                },
                Some(b) => {
                    // Collect raw bytes; re-validate UTF-8 boundaries lazily by
                    // pushing chars for ASCII and falling back to string slices
                    // for multi-byte sequences.
                    if b.is_ascii() {
                        value.push(b as char);
                    } else {
                        // Walk back one byte and take the full char from the str.
                        let ch_start = self.pos - 1;
                        let ch = self.input[ch_start..].chars().next().expect("valid UTF-8 input");
                        value.push(ch);
                        self.pos = ch_start + ch.len_utf8();
                    }
                }
                None => {
                    return Err(ParseError::lexical(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
        Ok(Token::new(TokenKind::StringLit(value), Span::new(start, self.pos)))
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, ParseError> {
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    // `1..3` is a range, not a float: only treat `.` as part of
                    // the number when followed by a digit.
                    if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                        saw_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !saw_exp => {
                    let next = self.peek_at(1);
                    let next2 = self.peek_at(2);
                    let exp_ok = next.is_some_and(|c| c.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && next2.is_some_and(|c| c.is_ascii_digit()));
                    if exp_ok {
                        saw_exp = true;
                        self.pos += 1;
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        let kind = if saw_dot || saw_exp {
            let value: f64 = text.parse().map_err(|_| {
                ParseError::lexical(
                    format!("invalid float literal `{text}`"),
                    Span::new(start, self.pos),
                )
            })?;
            TokenKind::Float(value)
        } else {
            let value: i64 = text.parse().map_err(|_| {
                ParseError::lexical(
                    format!("integer literal `{text}` out of range"),
                    Span::new(start, self.pos),
                )
            })?;
            TokenKind::Integer(value)
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| *k != TokenKind::Eof)
            .collect()
    }

    #[test]
    fn lexes_simple_match() {
        let ks = kinds("MATCH (n:Person) RETURN n");
        assert_eq!(
            ks,
            vec![
                TokenKind::Match,
                TokenKind::LParen,
                TokenKind::Ident("n".into()),
                TokenKind::Colon,
                TokenKind::Ident("Person".into()),
                TokenKind::RParen,
                TokenKind::Return,
                TokenKind::Ident("n".into()),
            ]
        );
    }

    #[test]
    fn lexes_relationship_arrows_as_punctuation() {
        let ks = kinds("(a)-[r]->(b)");
        assert_eq!(
            ks,
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::Minus,
                TokenKind::LBracket,
                TokenKind::Ident("r".into()),
                TokenKind::RBracket,
                TokenKind::Minus,
                TokenKind::Gt,
                TokenKind::LParen,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn lexes_incoming_arrow_without_confusing_comparisons() {
        let ks = kinds("(a)<-[r]-(b) WHERE a.x <= 3 AND a.y <> 4");
        assert!(ks.contains(&TokenKind::Lt));
        assert!(ks.contains(&TokenKind::Le));
        assert!(ks.contains(&TokenKind::Neq));
    }

    #[test]
    fn lexes_numbers_and_ranges() {
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42)]);
        assert_eq!(kinds("3.25"), vec![TokenKind::Float(3.25)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        // `1..3` must lex as integer, dotdot, integer (variable-length paths).
        assert_eq!(
            kinds("*1..3"),
            vec![TokenKind::Star, TokenKind::Integer(1), TokenKind::DotDot, TokenKind::Integer(3)]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("'Alice'"), vec![TokenKind::StringLit("Alice".into())]);
        assert_eq!(kinds("\"Bob\""), vec![TokenKind::StringLit("Bob".into())]);
        assert_eq!(kinds(r"'it\'s'"), vec![TokenKind::StringLit("it's".into())]);
        assert_eq!(kinds(r#"'line\nbreak'"#), vec![TokenKind::StringLit("line\nbreak".into())]);
    }

    #[test]
    fn lexes_unicode_strings() {
        assert_eq!(kinds("'héllo→'"), vec![TokenKind::StringLit("héllo→".into())]);
    }

    #[test]
    fn lexes_parameters_and_backticks() {
        assert_eq!(kinds("$limit"), vec![TokenKind::Parameter("limit".into())]);
        assert_eq!(kinds("`weird name`"), vec![TokenKind::Ident("weird name".into())]);
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("MATCH // a line comment\n (n) /* block \n comment */ RETURN n");
        assert_eq!(ks.len(), 6);
        assert_eq!(ks[0], TokenKind::Match);
        assert_eq!(ks[4], TokenKind::Return);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("match return optional"),
            vec![TokenKind::Match, TokenKind::Return, TokenKind::Optional]
        );
    }

    #[test]
    fn reports_errors_with_spans() {
        let err = tokenize("MATCH (n) WHERE n.x = 'unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err = tokenize("MATCH @").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        let err = tokenize("/* never closed").unwrap_err();
        assert!(err.to_string().contains("block comment"));
    }

    #[test]
    fn bang_equals_is_not_equal() {
        assert_eq!(
            kinds("a != b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Neq, TokenKind::Ident("b".into())]
        );
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn count_is_a_keyword_token() {
        assert_eq!(kinds("COUNT"), vec![TokenKind::Count]);
    }

    #[test]
    fn float_leading_dot() {
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
