//! Algebraic normalization of G-expressions.
//!
//! Normalization rewrites a G-expression into a *sum of summations of
//! products* using only identities that hold in every U-semiring
//! interpretation:
//!
//! * `×` distributes over `+`;
//! * `Σ_v (a + b) = Σ_v a + Σ_v b` and `Σ_x Σ_y = Σ_{x,y}`;
//! * `Σ_v [v = t] × F(v) = F(t)` when `t` does not mention `v`
//!   (the paper's temporary-variable elimination);
//! * idempotence of 0/1-valued factors (`Node(e) × Node(e) = Node(e)`);
//! * constant folding of trivially true / false atoms
//!   (`[c = c] = 1`, `[1 = 2] = 0`, `[x = x] = 1`, ...);
//! * `‖x‖ = x` when `x` is itself 0/1-valued, plus the squash/not laws of
//!   Definition 3.
//!
//! The result is deterministic (factors and summands are sorted by their
//! rendering), which the isomorphism matcher in `liastar` relies on.

use crate::expr::GExpr;
use crate::term::{CmpOp, GAtom, GConst, GTerm, VarId};

/// Normalizes a G-expression to the sum-of-summations-of-products form.
///
/// This is the fast path: it runs over the calling thread's hash-consed
/// [`crate::arena::GStore`], where normalization results are memoized per
/// node, so repeated normalization of structurally overlapping expressions
/// (the common case when proving batches of related pairs) is a cache lookup.
/// The result is identical to [`normalize_tree`].
///
/// Note this tree-level entry point externalizes the result; the id-native
/// decision pipeline in `liastar` instead calls
/// [`crate::arena::GStore::normalize_id`] directly and stays in id-space
/// end-to-end — use that from code that already holds interned ids.
pub fn normalize(expr: &GExpr) -> GExpr {
    crate::arena::normalize_via_arena(expr)
}

/// The paper-faithful reference normalizer over the plain [`GExpr`] tree —
/// a bounded fixpoint of clone-and-rebuild rewrite passes.
///
/// Kept as the semantic baseline: property tests assert the arena-backed
/// [`normalize`] agrees with it on every dataset pair, and the benchmark
/// harness measures the arena speedup against it.
pub fn normalize_tree(expr: &GExpr) -> GExpr {
    let mut current = expr.clone();
    // The rewrite system is terminating but individual passes can enable new
    // rewrites (e.g. variable elimination exposing constant atoms); iterate to
    // a fixpoint with a safety bound.
    for _ in 0..16 {
        let next = normalize_once(&current);
        if next == current {
            break;
        }
        current = next;
    }
    sort_expr(&current)
}

fn normalize_once(expr: &GExpr) -> GExpr {
    match expr {
        GExpr::Zero | GExpr::One | GExpr::Const(_) => expr.clone(),
        GExpr::Atom(atom) => simplify_atom(atom),
        GExpr::NodeFn(_) | GExpr::RelFn(_) | GExpr::LabFn(_, _) | GExpr::Unbounded(_) => {
            expr.clone()
        }
        GExpr::Mul(items) => {
            let items: Vec<GExpr> = items.iter().map(normalize_once).collect();
            distribute_product(items)
        }
        GExpr::Add(items) => GExpr::add(items.iter().map(normalize_once).collect()),
        GExpr::Squash(inner) => {
            let inner = normalize_once(inner);
            if is_zero_one(&inner) {
                inner
            } else {
                // ‖a + b‖ where both are 0/1 still needs the squash; only
                // fully 0/1 expressions may drop it (handled above).
                GExpr::squash(inner)
            }
        }
        GExpr::Not(inner) => {
            let inner = normalize_once(inner);
            match inner {
                // Brackets are 0/1-valued, so `not([φ]) = [¬φ]`.
                GExpr::Atom(GAtom::Cmp(op, lhs, rhs)) => {
                    simplify_atom(&GAtom::Cmp(op.negated(), lhs, rhs))
                }
                GExpr::Atom(GAtom::IsNull(term, negated)) => {
                    simplify_atom(&GAtom::IsNull(term, !negated))
                }
                other => GExpr::not(other),
            }
        }
        GExpr::Sum { vars, body } => {
            let body = normalize_once(body);
            match body {
                // Σ over a sum splits into a sum of Σs.
                GExpr::Add(items) => GExpr::add(
                    items
                        .into_iter()
                        .map(|item| normalize_once(&GExpr::sum(vars.clone(), item)))
                        .collect(),
                ),
                other => eliminate_pinned_variables(vars.clone(), other),
            }
        }
    }
}

/// Distributes a product over any sum factors, eliminating duplicates of
/// 0/1-valued factors and detecting trivial zeros.
fn distribute_product(items: Vec<GExpr>) -> GExpr {
    // First check whether any factor is a sum that must be expanded.
    if let Some(position) = items.iter().position(|i| matches!(i, GExpr::Add(_))) {
        let GExpr::Add(alternatives) = items[position].clone() else { unreachable!() };
        let mut expanded = Vec::new();
        for alternative in alternatives {
            let mut factors = items.clone();
            factors[position] = alternative;
            expanded.push(normalize_once(&GExpr::mul(factors)));
        }
        return GExpr::add(expanded);
    }
    // Pull inner summations out of the product: `A × Σ_v B = Σ_v (A × B)`
    // (sound because summation variables are globally unique).
    if let Some(position) = items.iter().position(|i| matches!(i, GExpr::Sum { .. })) {
        let GExpr::Sum { vars, body } = items[position].clone() else { unreachable!() };
        let mut factors = items.clone();
        factors[position] = *body;
        return normalize_once(&GExpr::sum(vars, GExpr::mul(factors)));
    }
    // Deduplicate idempotent (0/1-valued) factors.
    let mut deduped: Vec<GExpr> = Vec::new();
    for item in items {
        if item == GExpr::One {
            continue;
        }
        if item == GExpr::Zero {
            return GExpr::Zero;
        }
        if is_zero_one(&item) && deduped.contains(&item) {
            continue;
        }
        // A factor and its negation in the same product make it zero.
        if let GExpr::Not(inner) = &item {
            if deduped.contains(inner) {
                return GExpr::Zero;
            }
        }
        if deduped.iter().any(|d| matches!(d, GExpr::Not(inner) if **inner == item)) {
            return GExpr::Zero;
        }
        deduped.push(item);
    }
    GExpr::mul(deduped)
}

/// Applies `Σ_v [v = t] × F(v) = F(t)` repeatedly, then rebuilds the
/// summation over the remaining variables.
fn eliminate_pinned_variables(mut vars: Vec<VarId>, body: GExpr) -> GExpr {
    let mut factors = match body {
        GExpr::Mul(items) => items,
        other => vec![other],
    };
    loop {
        // Collect, per bound variable, every factor of the form [v = t]
        // (or [t = v]) where `t` does not mention `v`.
        let mut pins: Vec<(VarId, usize, GTerm)> = Vec::new();
        for (index, factor) in factors.iter().enumerate() {
            if let GExpr::Atom(GAtom::Cmp(CmpOp::Eq, lhs, rhs)) = factor {
                for (var_side, other) in [(lhs, rhs), (rhs, lhs)] {
                    if let GTerm::Var(v) = var_side {
                        if vars.contains(v) && !other.mentions(*v) {
                            pins.push((*v, index, other.clone()));
                        }
                    }
                }
            }
        }
        if pins.is_empty() {
            break;
        }
        // Pick the replacement *canonically* so that two isomorphic
        // expressions built from differently shaped queries make the same
        // choice: prefer replacement terms without bound variables (output
        // columns, constants, outer terms), then the smallest
        // variable-anonymized rendering. A variable whose minimal key is
        // ambiguous (two pins with the same anonymized shape, e.g.
        // `tgt(r1) = b` and `tgt(r2) = b`) is left alone — eliminating it
        // would pick an arbitrary representative and break the isomorphism
        // matching between the two queries.
        let key = |term: &GTerm| {
            let mut term_vars = Vec::new();
            term.variables(&mut term_vars);
            let has_bound = term_vars.iter().any(|v| vars.contains(v));
            let anonymized = term.rename_vars(&|_| VarId(0)).to_string();
            (has_bound, anonymized)
        };
        let mut best: Option<(usize, VarId, GTerm, (bool, String))> = None;
        for candidate_var in vars.clone() {
            let candidate_pins: Vec<_> =
                pins.iter().filter(|(v, _, _)| *v == candidate_var).collect();
            if candidate_pins.is_empty() {
                continue;
            }
            let mut keyed: Vec<_> =
                candidate_pins.iter().map(|(_, index, term)| (key(term), *index, term)).collect();
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            // Ambiguous minimal key: skip this variable.
            if keyed.len() > 1 && keyed[0].0 == keyed[1].0 {
                continue;
            }
            let (candidate_key, index, term) = keyed.into_iter().next().expect("non-empty");
            let better = match &best {
                None => true,
                Some((_, _, _, best_key)) => candidate_key < *best_key,
            };
            if better {
                best = Some((index, candidate_var, (*term).clone(), candidate_key));
            }
        }
        let Some((index, var, replacement, _)) = best else { break };
        factors.remove(index);
        factors = factors.iter().map(|f| f.substitute(var, &replacement)).collect();
        vars.retain(|x| *x != var);
    }
    // Only keep summation variables that still occur in the body; a variable
    // that no longer occurs contributes an unbounded domain factor which we
    // must *not* drop, so it is kept as-is.
    let rebuilt = distribute_product(factors);
    match rebuilt {
        GExpr::Add(items) => {
            GExpr::add(items.into_iter().map(|item| GExpr::sum(vars.clone(), item)).collect())
        }
        other => GExpr::sum(vars, other),
    }
}

/// Folds atoms whose truth value is syntactically determined.
fn simplify_atom(atom: &GAtom) -> GExpr {
    let atom = atom.canonical();
    if let GAtom::Cmp(op, lhs, rhs) = &atom {
        // Identical terms.
        if lhs == rhs {
            return match op {
                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => GExpr::One,
                CmpOp::Neq | CmpOp::Lt | CmpOp::Gt => GExpr::Zero,
            };
        }
        // Comparisons between distinct constants.
        if let (GTerm::Const(a), GTerm::Const(b)) = (lhs, rhs) {
            if let Some(result) = compare_constants(*op, a, b) {
                return if result { GExpr::One } else { GExpr::Zero };
            }
        }
    }
    if let GAtom::IsNull(GTerm::Const(c), negated) = &atom {
        let is_null = matches!(c, GConst::Null);
        let truth = if *negated { !is_null } else { is_null };
        return if truth { GExpr::One } else { GExpr::Zero };
    }
    GExpr::Atom(atom)
}

pub(crate) fn compare_constants(op: CmpOp, a: &GConst, b: &GConst) -> Option<bool> {
    // NULL comparisons are three-valued; conservatively treat them as
    // undetermined and keep the atom.
    if matches!(a, GConst::Null) || matches!(b, GConst::Null) {
        return None;
    }
    let ord = match (a, b) {
        (GConst::Integer(x), GConst::Integer(y)) => x.partial_cmp(y),
        (GConst::Float(x), GConst::Float(y)) => x.partial_cmp(y),
        (GConst::Integer(x), GConst::Float(y)) => (*x as f64).partial_cmp(y),
        (GConst::Float(x), GConst::Integer(y)) => x.partial_cmp(&(*y as f64)),
        (GConst::String(x), GConst::String(y)) => x.partial_cmp(y),
        (GConst::Boolean(x), GConst::Boolean(y)) => x.partial_cmp(y),
        // Values of different types are simply unequal.
        _ => {
            return Some(matches!(op, CmpOp::Neq));
        }
    }?;
    Some(match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Neq => !ord.is_eq(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    })
}

/// Returns `true` if the expression is guaranteed to evaluate to 0 or 1 for
/// every interpretation (and can therefore be deduplicated in a product and
/// dropped under squash).
pub fn is_zero_one(expr: &GExpr) -> bool {
    match expr {
        GExpr::Zero | GExpr::One => true,
        GExpr::Const(v) => *v <= 1,
        GExpr::Atom(_)
        | GExpr::NodeFn(_)
        | GExpr::RelFn(_)
        | GExpr::LabFn(_, _)
        | GExpr::Unbounded(_)
        | GExpr::Squash(_)
        | GExpr::Not(_) => true,
        GExpr::Mul(items) => items.iter().all(is_zero_one),
        GExpr::Add(_) | GExpr::Sum { .. } => false,
    }
}

/// Sorts products and sums into a deterministic order (by rendered text).
fn sort_expr(expr: &GExpr) -> GExpr {
    match expr {
        GExpr::Mul(items) => {
            let mut items: Vec<GExpr> = items.iter().map(sort_expr).collect();
            items.sort_by_key(|e| e.to_string());
            GExpr::Mul(items)
        }
        GExpr::Add(items) => {
            let mut items: Vec<GExpr> = items.iter().map(sort_expr).collect();
            items.sort_by_key(|e| e.to_string());
            GExpr::Add(items)
        }
        GExpr::Squash(inner) => GExpr::Squash(Box::new(sort_expr(inner))),
        GExpr::Not(inner) => GExpr::Not(Box::new(sort_expr(inner))),
        GExpr::Sum { vars, body } => {
            GExpr::Sum { vars: vars.clone(), body: Box::new(sort_expr(body)) }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::GAtom;

    fn var(i: u32) -> GTerm {
        GTerm::Var(VarId(i))
    }

    #[test]
    fn distributes_product_over_sum() {
        // Node(e) × ([a<10] + [a>20]) = Node(e)×[a<10] + Node(e)×[a>20]
        // — the paper's §IV-C example becomes syntactically additive.
        let expr = GExpr::sum(
            vec![VarId(0)],
            GExpr::mul(vec![
                GExpr::NodeFn(var(0)),
                GExpr::add(vec![
                    GExpr::Atom(GAtom::Cmp(CmpOp::Lt, GTerm::prop(var(0), "age"), GTerm::int(10))),
                    GExpr::Atom(GAtom::Cmp(CmpOp::Gt, GTerm::prop(var(0), "age"), GTerm::int(20))),
                ]),
            ]),
        );
        let normalized = normalize(&expr);
        match normalized {
            GExpr::Add(items) => {
                assert_eq!(items.len(), 2);
                for item in items {
                    assert!(matches!(item, GExpr::Sum { .. }));
                }
            }
            other => panic!("expected sum of summations, got {other}"),
        }
    }

    #[test]
    fn splits_summation_over_addition() {
        let expr = GExpr::sum(
            vec![VarId(0)],
            GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(0))]),
        );
        let normalized = normalize(&expr);
        assert!(matches!(normalized, GExpr::Add(ref items) if items.len() == 2));
    }

    #[test]
    fn eliminates_pinned_variables() {
        // Σ_{e0,e1} [e1 = e0.name] × Node(e0) × [t.col1 = e1]
        //   = Σ_{e0} Node(e0) × [t.col1 = e0.name]
        let expr = GExpr::sum(
            vec![VarId(0), VarId(1)],
            GExpr::mul(vec![
                GExpr::eq(var(1), GTerm::prop(var(0), "name")),
                GExpr::NodeFn(var(0)),
                GExpr::eq(GTerm::OutCol(0), var(1)),
            ]),
        );
        let normalized = normalize(&expr);
        match &normalized {
            GExpr::Sum { vars, body } => {
                assert_eq!(vars, &vec![VarId(0)]);
                let text = body.to_string();
                assert!(text.contains("e0.name"), "{text}");
                assert!(!text.contains("e1"), "{text}");
            }
            other => panic!("expected a single summation, got {other}"),
        }
    }

    #[test]
    fn does_not_drop_unconstrained_variables() {
        // Σ_{e1} Node(e0) keeps its summation (the multiplicity depends on the
        // domain size).
        let expr = GExpr::sum(vec![VarId(1)], GExpr::NodeFn(var(0)));
        let normalized = normalize(&expr);
        assert!(matches!(normalized, GExpr::Sum { .. }));
    }

    #[test]
    fn folds_constant_atoms() {
        assert_eq!(normalize(&GExpr::eq(GTerm::int(1), GTerm::int(1))), GExpr::One);
        assert_eq!(normalize(&GExpr::eq(GTerm::int(1), GTerm::int(2))), GExpr::Zero);
        assert_eq!(normalize(&GExpr::eq(GTerm::string("a"), GTerm::int(2))), GExpr::Zero);
        assert_eq!(normalize(&GExpr::eq(var(0), var(0))), GExpr::One);
        assert_eq!(normalize(&GExpr::Atom(GAtom::Cmp(CmpOp::Lt, var(0), var(0)))), GExpr::Zero);
        assert_eq!(
            normalize(&GExpr::Atom(GAtom::IsNull(GTerm::Const(GConst::Null), false))),
            GExpr::One
        );
    }

    #[test]
    fn zero_factor_annihilates_product() {
        let expr = GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::eq(GTerm::int(1), GTerm::int(2))]);
        assert_eq!(normalize(&expr), GExpr::Zero);
    }

    #[test]
    fn contradictory_factor_and_negation_is_zero() {
        let node = GExpr::NodeFn(var(0));
        let expr = GExpr::mul(vec![node.clone(), GExpr::Not(Box::new(node))]);
        assert_eq!(normalize(&expr), GExpr::Zero);
    }

    #[test]
    fn deduplicates_idempotent_factors() {
        let expr = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::NodeFn(var(0)),
            GExpr::LabFn(var(0), "Person".into()),
        ]);
        let normalized = normalize(&expr);
        match normalized {
            GExpr::Mul(items) => assert_eq!(items.len(), 2),
            other => panic!("expected product, got {other}"),
        }
    }

    #[test]
    fn squash_of_zero_one_expression_is_dropped() {
        let inner = GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::LabFn(var(0), "A".into())]);
        let expr = GExpr::squash(inner.clone());
        assert_eq!(normalize(&expr), normalize(&inner));
        // But a squash of a summation stays.
        let summed = GExpr::squash(GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0))));
        assert!(matches!(normalize(&summed), GExpr::Squash(_)));
    }

    #[test]
    fn canonical_ordering_makes_commuted_products_identical() {
        let a = GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::LabFn(var(0), "A".into())]);
        let b = GExpr::mul(vec![GExpr::LabFn(var(0), "A".into()), GExpr::NodeFn(var(0))]);
        assert_eq!(normalize(&a), normalize(&b));
        let c = GExpr::add(vec![GExpr::NodeFn(var(1)), GExpr::NodeFn(var(0))]);
        let d = GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::NodeFn(var(1))]);
        assert_eq!(normalize(&c), normalize(&d));
    }

    #[test]
    fn pulls_summation_out_of_products() {
        // A × Σ_v B = Σ_v (A × B).
        let expr = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::sum(vec![VarId(1)], GExpr::RelFn(var(1))),
        ]);
        let normalized = normalize(&expr);
        match normalized {
            GExpr::Sum { vars, body } => {
                assert_eq!(vars, vec![VarId(1)]);
                assert!(matches!(*body, GExpr::Mul(_)));
            }
            other => panic!("expected summation, got {other}"),
        }
    }

    #[test]
    fn normalization_is_idempotent_on_samples() {
        let samples = vec![
            GExpr::sum(
                vec![VarId(0), VarId(1)],
                GExpr::mul(vec![
                    GExpr::NodeFn(var(0)),
                    GExpr::RelFn(var(1)),
                    GExpr::add(vec![
                        GExpr::LabFn(var(1), "A".into()),
                        GExpr::LabFn(var(1), "B".into()),
                    ]),
                    GExpr::eq(GTerm::OutCol(0), var(0)),
                ]),
            ),
            GExpr::squash(GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(0))])),
            GExpr::not(GExpr::sum(vec![VarId(2)], GExpr::NodeFn(var(2)))),
        ];
        for sample in samples {
            let once = normalize(&sample);
            let twice = normalize(&once);
            assert_eq!(once, twice, "normalization not idempotent for {sample}");
        }
    }
}
