//! Regenerates the CyNeqSet experiment of §VII-B: all 148 mutated pairs must
//! be rejected (never proven equivalent).

#![forbid(unsafe_code)]

use graphqe::GraphQE;
use graphqe_bench::{format_neqset, run_cyneqset};

fn main() {
    let prover = GraphQE::new();
    let results = run_cyneqset(&prover);
    print!("{}", format_neqset(&results));
    for result in &results {
        if result.verdict.is_equivalent() {
            println!("UNSOUND: {} was wrongly proven equivalent", result.pair.id);
        }
    }
}
