//! PR 2 performance benchmark: the id-native LIA★ decision pipeline with the
//! formula-level SMT cache, measured against the paper-faithful tree baseline
//! over the full CyEqSet and CyNeqSet datasets.
//!
//! Writes `BENCH_pr2.json` in the `BENCH_pr1.json` schema — so `bench_gate`
//! and future PRs can compare reports field by field — extended with the
//! cache hit rates and the peak arena size of the run. Exits non-zero if the
//! two pipelines ever disagree on a verdict.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use cyeqset::{cyeqset, cyneqset, QueryPair};
use cypher_normalizer::normalize_query;
use cypher_parser::parse_and_check;
use graphqe::{CacheStats, GraphQE};
use graphqe_bench::{run_pairs_report, table3_rows, PairResult};
use liastar::{check_equivalence_with_opts, DecideOptions};

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1000.0
}

/// Times each pipeline stage separately over the dataset (sequentially, so
/// per-stage numbers are comparable across runs and against `BENCH_pr1.json`).
fn stage_breakdown(pairs: &[QueryPair]) -> Vec<(&'static str, f64)> {
    let mut parse = Duration::ZERO;
    let mut rules = Duration::ZERO;
    let mut build = Duration::ZERO;
    let mut decide_tree = Duration::ZERO;
    let mut decide_arena = Duration::ZERO;
    for pair in pairs {
        let start = Instant::now();
        let parsed1 = parse_and_check(&pair.left);
        let parsed2 = parse_and_check(&pair.right);
        parse += start.elapsed();
        let (Ok(q1), Ok(q2)) = (parsed1, parsed2) else { continue };

        let start = Instant::now();
        let n1 = normalize_query(&q1);
        let n2 = normalize_query(&q2);
        rules += start.elapsed();

        let start = Instant::now();
        let built1 = gexpr::build_query(&n1);
        let built2 = gexpr::build_query(&n2);
        build += start.elapsed();
        let (Ok(b1), Ok(b2)) = (built1, built2) else { continue };

        let start = Instant::now();
        let tree = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: true },
        );
        decide_tree += start.elapsed();

        let start = Instant::now();
        let arena = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: false },
        );
        decide_arena += start.elapsed();
        assert_eq!(tree.0, arena.0, "decide mismatch on {} vs {}", pair.left, pair.right);
    }
    vec![
        ("parse_check", ms(parse)),
        ("rule_normalize", ms(rules)),
        ("gexpr_build", ms(build)),
        ("decide_tree", ms(decide_tree)),
        ("decide_arena", ms(decide_arena)),
    ]
}

struct DatasetRun {
    name: &'static str,
    baseline_ms: f64,
    arena_ms: f64,
    speedup: f64,
    /// The same comparison with the (pipeline-independent) counterexample
    /// search disabled: the speedup of the refactored stages in isolation.
    baseline_decide_only_ms: f64,
    arena_decide_only_ms: f64,
    decide_only_speedup: f64,
    equivalent: usize,
    not_equivalent: usize,
    unknown: usize,
    stages: Vec<(&'static str, f64)>,
    cache: CacheStats,
}

fn classify(results: &[PairResult]) -> (usize, usize, usize) {
    let equivalent = results.iter().filter(|r| r.verdict.is_equivalent()).count();
    let not_equivalent = results.iter().filter(|r| r.verdict.is_not_equivalent()).count();
    (equivalent, not_equivalent, results.len() - equivalent - not_equivalent)
}

/// Runs one configuration `SAMPLES` times after one untimed warmup run;
/// returns the results and cache report of the last (warm) run plus the
/// **minimum** wall-clock. The workload is deterministic, so timing noise on
/// a small shared machine is strictly additive — the minimum is the least
/// contaminated estimate of the true cost (a load spike can inflate a
/// sample but never deflate one), which is what cross-report comparisons in
/// `bench_gate` need. The first run pays one-time warmup (arena population,
/// counterexample-pool construction) that a steady-state service pays once
/// per process, so it is excluded.
fn timed_runs(
    prover: &GraphQE,
    pairs: &[QueryPair],
    threads: usize,
) -> (Vec<PairResult>, CacheStats, f64) {
    const SAMPLES: usize = 5;
    run_pairs_report(prover, pairs.to_vec(), threads); // warmup, untimed
    let mut wall_ms = Vec::new();
    let mut last = (Vec::new(), CacheStats::default());
    for _ in 0..SAMPLES {
        let start = Instant::now();
        last = run_pairs_report(prover, pairs.to_vec(), threads);
        wall_ms.push(ms(start.elapsed()));
    }
    eprintln!("    samples: {wall_ms:.1?}");
    let min = wall_ms.iter().copied().fold(f64::INFINITY, f64::min);
    (last.0, last.1, min)
}

fn run_dataset(name: &'static str, pairs: Vec<QueryPair>, threads: usize) -> DatasetRun {
    // Baseline: the paper-faithful configuration — reference tree normalizer,
    // cloning iso matcher, no caches, one pair at a time on one thread.
    let baseline_prover = GraphQE { use_tree_normalizer: true, ..GraphQE::new() };
    let (baseline, _, baseline_ms) = timed_runs(&baseline_prover, &pairs, 1);

    // Optimized pipeline: id-native decide over the hash-consed arena with
    // the formula-level SMT cache, batched over all cores.
    let arena_prover = GraphQE::new();
    let (arena, cache, arena_ms) = timed_runs(&arena_prover, &pairs, threads);

    // The refactor must not move a single verdict.
    for (old, new) in baseline.iter().zip(arena.iter()) {
        assert_eq!(
            (old.verdict.is_equivalent(), old.verdict.is_not_equivalent()),
            (new.verdict.is_equivalent(), new.verdict.is_not_equivalent()),
            "verdict changed on {} vs {}",
            old.pair.left,
            old.pair.right,
        );
    }

    // Same comparison without the counterexample search, which is shared by
    // both pipelines: this isolates the speedup of the refactored stages.
    let baseline_ns = GraphQE { search_counterexamples: false, ..baseline_prover.clone() };
    let (_, _, baseline_decide_only_ms) = timed_runs(&baseline_ns, &pairs, 1);
    let arena_ns = GraphQE { search_counterexamples: false, ..GraphQE::new() };
    let (_, _, arena_decide_only_ms) = timed_runs(&arena_ns, &pairs, threads);
    let (equivalent, not_equivalent, unknown) = classify(&arena);
    if name == "cyeqset" {
        println!("\nTable III (id-native arena pipeline):");
        print!("{}", graphqe_bench::format_table3(&table3_rows(&arena)));
    }
    DatasetRun {
        name,
        baseline_ms,
        arena_ms,
        speedup: baseline_ms / arena_ms.max(f64::EPSILON),
        baseline_decide_only_ms,
        arena_decide_only_ms,
        decide_only_speedup: baseline_decide_only_ms / arena_decide_only_ms.max(f64::EPSILON),
        equivalent,
        not_equivalent,
        unknown,
        stages: stage_breakdown(&pairs),
        cache,
    }
}

fn json_stages(stages: &[(&str, f64)]) -> String {
    let fields: Vec<String> =
        stages.iter().map(|(name, value)| format!("\"{name}\": {value:.3}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn json_cache(cache: &CacheStats) -> String {
    format!(
        "{{\"smt_formula_hits\": {}, \"smt_formula_misses\": {}, \
         \"smt_formula_hit_rate\": {:.4}, \"summand_hits\": {}, \"summand_misses\": {}, \
         \"summand_hit_rate\": {:.4}, \"disjoint_hits\": {}, \"disjoint_misses\": {}, \
         \"disjoint_hit_rate\": {:.4}, \"epoch_resets\": {}}}",
        cache.smt_formula_hits,
        cache.smt_formula_misses,
        cache.smt_formula_hit_rate(),
        cache.summand_hits,
        cache.summand_misses,
        cache.summand_hit_rate(),
        cache.disjoint_hits,
        cache.disjoint_misses,
        cache.disjoint_hit_rate(),
        cache.epoch_resets,
    )
}

fn json_dataset(run: &DatasetRun) -> String {
    format!(
        "{{\n    \"baseline_tree_sequential_ms\": {:.3},\n    \
         \"arena_parallel_ms\": {:.3},\n    \"speedup\": {:.3},\n    \
         \"baseline_decide_only_ms\": {:.3},\n    \
         \"arena_decide_only_ms\": {:.3},\n    \"decide_only_speedup\": {:.3},\n    \
         \"equivalent\": {},\n    \"not_equivalent\": {},\n    \"unknown\": {},\n    \
         \"stages_ms\": {},\n    \"cache\": {},\n    \"peak_arena_nodes\": {}\n  }}",
        run.baseline_ms,
        run.arena_ms,
        run.speedup,
        run.baseline_decide_only_ms,
        run.arena_decide_only_ms,
        run.decide_only_speedup,
        run.equivalent,
        run.not_equivalent,
        run.unknown,
        json_stages(&run.stages),
        json_cache(&run.cache),
        run.cache.peak_arena_nodes,
    )
}

/// Prints the decide-stage trajectory against the committed previous report,
/// when it is present (informational — the enforced comparison is
/// `bench_gate`'s job).
fn print_trajectory(runs: &[&DatasetRun]) {
    let Ok(previous_text) = std::fs::read_to_string("BENCH_pr1.json") else {
        println!("\nno BENCH_pr1.json next to the binary; skipping trajectory");
        return;
    };
    let Ok(previous) = graphqe_bench::json::Json::parse(&previous_text) else {
        println!("\nBENCH_pr1.json is unreadable; skipping trajectory");
        return;
    };
    println!("\ndecide-stage trajectory vs committed BENCH_pr1.json:");
    for run in runs {
        let previous_decide = previous
            .get_path(&[run.name, "stages_ms", "decide_arena"])
            .and_then(graphqe_bench::json::Json::as_f64);
        let current_decide =
            run.stages.iter().find(|(stage, _)| *stage == "decide_arena").map(|(_, v)| *v);
        match (previous_decide, current_decide) {
            (Some(before), Some(after)) => println!(
                "  {}: decide_arena {before:.1} ms -> {after:.1} ms ({:.2}x)",
                run.name,
                before / after.max(f64::EPSILON)
            ),
            _ => println!("  {}: stage missing from one of the reports", run.name),
        }
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("bench_pr2: {threads} worker thread(s)");

    let eq = run_dataset("cyeqset", cyeqset(), threads);
    let neq = run_dataset("cyneqset", cyneqset(), threads);

    for run in [&eq, &neq] {
        println!(
            "\n{}: baseline {:.1} ms -> id-native arena {:.1} ms ({:.2}x), \
             verdicts: {} eq / {} neq / {} unknown",
            run.name,
            run.baseline_ms,
            run.arena_ms,
            run.speedup,
            run.equivalent,
            run.not_equivalent,
            run.unknown
        );
        println!(
            "  decide-only (no counterexample search): {:.1} ms -> {:.1} ms ({:.2}x)",
            run.baseline_decide_only_ms, run.arena_decide_only_ms, run.decide_only_speedup
        );
        for (stage, stage_ms) in &run.stages {
            println!("  stage {stage:<16} {stage_ms:>10.1} ms");
        }
        println!(
            "  caches (warm run): smt formula {:.0}% hit ({}h/{}m), summand {:.0}% hit \
             ({}h/{}m), disjoint {:.0}% hit ({}h/{}m), peak arena {} nodes",
            run.cache.smt_formula_hit_rate() * 100.0,
            run.cache.smt_formula_hits,
            run.cache.smt_formula_misses,
            run.cache.summand_hit_rate() * 100.0,
            run.cache.summand_hits,
            run.cache.summand_misses,
            run.cache.disjoint_hit_rate() * 100.0,
            run.cache.disjoint_hits,
            run.cache.disjoint_misses,
            run.cache.peak_arena_nodes,
        );
    }
    print_trajectory(&[&eq, &neq]);

    let json = format!(
        "{{\n  \"threads\": {},\n  \"cyeqset\": {},\n  \"cyneqset\": {}\n}}\n",
        threads,
        json_dataset(&eq),
        json_dataset(&neq),
    );
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    println!("\nwrote BENCH_pr2.json");
}
