//! The three equivalent-rewriting rules used to construct CyEqSet from
//! real-world queries (§VII-A of the paper): renaming variables, reversing
//! path direction, and splitting graph patterns.

use cypher_parser::ast::{Clause, Expr, PathPattern, PathSegment};
use cypher_parser::{parse_query, pretty::query_to_string};

/// Renames every node / relationship variable of the query to a fresh name
/// (`node1`, `rel1`, ...), producing an equivalent query.
pub fn rename_variables(query_text: &str) -> Option<String> {
    let query = parse_query(query_text).ok()?;
    let mut result = query.clone();
    for part in &mut result.parts {
        let mut mapping = std::collections::BTreeMap::new();
        let mut nodes = 0;
        let mut rels = 0;
        for clause in &part.clauses {
            if let Clause::Match(m) = clause {
                for pattern in &m.patterns {
                    for node in pattern.nodes() {
                        if let Some(v) = &node.variable {
                            mapping.entry(v.clone()).or_insert_with(|| {
                                nodes += 1;
                                format!("node{nodes}")
                            });
                        }
                    }
                    for rel in pattern.relationships() {
                        if let Some(v) = &rel.variable {
                            mapping.entry(v.clone()).or_insert_with(|| {
                                rels += 1;
                                format!("rel{rels}")
                            });
                        }
                    }
                }
            }
        }
        if mapping.is_empty() {
            return None;
        }
        rename_in_part(part, &mapping);
    }
    let rewritten = query_to_string(&result);
    if rewritten == query_text {
        None
    } else {
        Some(rewritten)
    }
}

fn rename_in_part(
    part: &mut cypher_parser::ast::SingleQuery,
    mapping: &std::collections::BTreeMap<String, String>,
) {
    let rename = |name: &mut Option<String>| {
        if let Some(v) = name {
            if let Some(new) = mapping.get(v) {
                *v = new.clone();
            }
        }
    };
    for clause in &mut part.clauses {
        match clause {
            Clause::Match(m) => {
                for pattern in &mut m.patterns {
                    rename(&mut pattern.start.variable);
                    for segment in &mut pattern.segments {
                        rename(&mut segment.relationship.variable);
                        rename(&mut segment.node.variable);
                    }
                }
                if let Some(w) = m.where_clause.take() {
                    m.where_clause = Some(rename_expr(w, mapping));
                }
            }
            Clause::Unwind(u) => {
                u.expr = rename_expr(u.expr.clone(), mapping);
            }
            Clause::With(w) => {
                rename_projection(&mut w.projection, mapping);
                if let Some(p) = w.where_clause.take() {
                    w.where_clause = Some(rename_expr(p, mapping));
                }
            }
            Clause::Return(p) => rename_projection(p, mapping),
        }
    }
}

fn rename_projection(
    projection: &mut cypher_parser::ast::Projection,
    mapping: &std::collections::BTreeMap<String, String>,
) {
    if let cypher_parser::ast::ProjectionItems::Items(items) = &mut projection.items {
        for item in items {
            item.expr = rename_expr(item.expr.clone(), mapping);
        }
    }
    for order in &mut projection.order_by {
        order.expr = rename_expr(order.expr.clone(), mapping);
    }
}

fn rename_expr(expr: Expr, mapping: &std::collections::BTreeMap<String, String>) -> Expr {
    expr.map(&|e| match &e {
        Expr::Variable(name) => match mapping.get(name) {
            Some(new) => Expr::Variable(new.clone()),
            None => e,
        },
        _ => e,
    })
}

/// Reverses the direction of every path pattern: the pattern is written from
/// its last node to its first node with every arrow flipped. The matched
/// graphs (and therefore the results) are unchanged.
pub fn reverse_direction(query_text: &str) -> Option<String> {
    let query = parse_query(query_text).ok()?;
    let mut result = query.clone();
    let mut changed = false;
    for part in &mut result.parts {
        for clause in &mut part.clauses {
            let Clause::Match(m) = clause else { continue };
            for pattern in &mut m.patterns {
                if pattern.segments.is_empty() || pattern.variable.is_some() {
                    continue;
                }
                *pattern = reverse_path(pattern);
                changed = true;
            }
        }
    }
    if !changed {
        return None;
    }
    Some(query_to_string(&result))
}

fn reverse_path(pattern: &PathPattern) -> PathPattern {
    // Nodes along the path: n0 -r1- n1 -r2- ... -rk- nk.
    let nodes: Vec<_> = pattern.nodes().cloned().collect();
    let rels: Vec<_> = pattern.relationships().cloned().collect();
    let mut segments = Vec::new();
    for i in (0..rels.len()).rev() {
        let mut relationship = rels[i].clone();
        relationship.direction = relationship.direction.reversed();
        segments.push(PathSegment { relationship, node: nodes[i].clone() });
    }
    PathPattern {
        variable: pattern.variable.clone(),
        start: nodes[nodes.len() - 1].clone(),
        segments,
    }
}

/// Splits every multi-relationship path pattern into single-relationship
/// patterns joined on their shared node variables, within the same `MATCH`
/// clause (so relationship-injectivity is preserved). Anonymous intermediate
/// nodes are given fresh names first so the join variables exist.
pub fn split_pattern(query_text: &str) -> Option<String> {
    let query = parse_query(query_text).ok()?;
    let mut result = query.clone();
    let mut changed = false;
    let mut fresh = 0usize;
    for part in &mut result.parts {
        for clause in &mut part.clauses {
            let Clause::Match(m) = clause else { continue };
            let mut new_patterns = Vec::new();
            for pattern in &m.patterns {
                if pattern.segments.len() < 2
                    || pattern.variable.is_some()
                    || pattern.relationships().any(|r| r.is_var_length())
                {
                    new_patterns.push(pattern.clone());
                    continue;
                }
                // Name anonymous intermediate nodes.
                let mut named = pattern.clone();
                for segment in &mut named.segments {
                    if segment.node.variable.is_none() {
                        fresh += 1;
                        segment.node.variable = Some(format!("joint{fresh}"));
                    }
                }
                if named.start.variable.is_none() {
                    fresh += 1;
                    named.start.variable = Some(format!("joint{fresh}"));
                }
                // Emit one single-segment pattern per relationship.
                let nodes: Vec<_> = named.nodes().cloned().collect();
                for (index, segment) in named.segments.iter().enumerate() {
                    new_patterns.push(PathPattern {
                        variable: None,
                        start: nodes[index].clone(),
                        segments: vec![segment.clone()],
                    });
                }
                changed = true;
            }
            m.patterns = new_patterns;
        }
    }
    if !changed {
        return None;
    }
    Some(query_to_string(&result))
}

/// Commutes the top-level `AND` of every `WHERE` clause (`a AND b` becomes
/// `b AND a`) — a trivially equivalent rewrite used to widen the dataset in
/// the same spirit as the Calcite predicate rewrites.
pub fn commute_conjuncts(query_text: &str) -> Option<String> {
    let query = parse_query(query_text).ok()?;
    let mut result = query.clone();
    let mut changed = false;
    for part in &mut result.parts {
        for clause in &mut part.clauses {
            let predicate = match clause {
                Clause::Match(m) => &mut m.where_clause,
                Clause::With(w) => &mut w.where_clause,
                _ => continue,
            };
            if let Some(Expr::Binary(cypher_parser::ast::BinaryOp::And, lhs, rhs)) = predicate {
                std::mem::swap(lhs, rhs);
                changed = true;
            }
        }
    }
    if changed {
        Some(query_to_string(&result))
    } else {
        None
    }
}

/// Reverses the order of the `RETURN` items. The result is equivalent up to
/// the return-element mapping of §IV-C, which the prover performs.
pub fn reorder_return_items(query_text: &str) -> Option<String> {
    let query = parse_query(query_text).ok()?;
    let mut result = query.clone();
    let mut changed = false;
    for part in &mut result.parts {
        if let Some(Clause::Return(projection)) = part.clauses.last_mut() {
            if projection.order_by.is_empty() {
                if let cypher_parser::ast::ProjectionItems::Items(items) = &mut projection.items {
                    if items.len() >= 2 {
                        items.reverse();
                        changed = true;
                    }
                }
            }
        }
    }
    if changed {
        Some(query_to_string(&result))
    } else {
        None
    }
}

/// Applies every rewrite rule, returning the rewrites that succeeded (used to
/// expand a base query into several equivalent pairs).
pub fn all_rewrites(query_text: &str) -> Vec<(String, String)> {
    let mut rewrites = Vec::new();
    if let Some(renamed) = rename_variables(query_text) {
        rewrites.push(("rename-variables".to_string(), renamed));
    }
    if let Some(reversed) = reverse_direction(query_text) {
        rewrites.push(("reverse-direction".to_string(), reversed));
    }
    if let Some(split) = split_pattern(query_text) {
        rewrites.push(("split-pattern".to_string(), split));
    }
    if let Some(commuted) = commute_conjuncts(query_text) {
        rewrites.push(("commute-conjuncts".to_string(), commuted));
    }
    // `reorder_return_items` is deliberately *not* included here: reordered
    // columns are equivalent only modulo the return-element mapping, and the
    // dataset keeps to pairs whose result tables are identical column by
    // column (so the reference evaluator can serve as an oracle).
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_produces_different_but_parsable_text() {
        let rewritten =
            rename_variables("MATCH (a:Person)-[r:READ]->(b) WHERE a.age > 1 RETURN a.name, r")
                .unwrap();
        assert!(rewritten.contains("node1"));
        assert!(rewritten.contains("rel1"));
        assert!(parse_query(&rewritten).is_ok());
    }

    #[test]
    fn reverse_flips_arrows_and_order() {
        let rewritten =
            reverse_direction("MATCH (a:Person)-[r:READ]->(b:Book) RETURN a.name").unwrap();
        assert_eq!(rewritten, "MATCH (b:Book)<-[r:READ]-(a:Person) RETURN a.name");
        let chain = reverse_direction("MATCH (a)-[r1]->(b)<-[r2]-(c) RETURN a").unwrap();
        assert_eq!(chain, "MATCH (c)-[r2]->(b)<-[r1]-(a) RETURN a");
    }

    #[test]
    fn split_produces_joined_single_segments() {
        let rewritten = split_pattern("MATCH (a)-[r1]->(b)-[r2]->(c) RETURN a, c").unwrap();
        assert_eq!(rewritten, "MATCH (a)-[r1]->(b), (b)-[r2]->(c) RETURN a, c");
        // Single-relationship patterns are not split.
        assert!(split_pattern("MATCH (a)-[r]->(b) RETURN a").is_none());
    }

    #[test]
    fn rewrites_preserve_results_on_the_paper_graph() {
        use property_graph::{evaluate_query, PropertyGraph};
        let graph = PropertyGraph::paper_example();
        let bases = [
            "MATCH (a:Person)-[r:READ]->(b:Book) RETURN a.name, b.title",
            "MATCH (a:Person)-[r1:READ]->(b)<-[r2:WRITE]-(c) RETURN c.name",
            "MATCH (a)-[r]->(b) WHERE a.age > 26 RETURN b",
        ];
        for base in bases {
            let original = parse_query(base).unwrap();
            let expected = evaluate_query(&graph, &original).unwrap();
            for (rule, rewritten) in all_rewrites(base) {
                let query = parse_query(&rewritten).unwrap();
                let actual = evaluate_query(&graph, &query).unwrap();
                assert!(expected.bag_equal(&actual), "{rule} broke {base} -> {rewritten}");
            }
        }
    }
}
