//! Expression evaluation over binding rows.
//!
//! Expressions are evaluated under Cypher's three-valued logic: comparisons
//! involving `NULL` yield `NULL`, and `WHERE` keeps only rows whose predicate
//! evaluates to `TRUE`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use cypher_parser::ast::{
    BinaryOp, Expr, Literal, MatchClause, NodePattern, PathPattern, Projection, ProjectionItems,
    Query, RelationshipPattern, UnaryOp, UnwindClause, WithClause,
};

use crate::eval::{evaluate_single_query_on_rows, EvalError};
use crate::fxhash::FxHashMap;
use crate::graph::{EntityId, PropertyGraph};
use crate::value::{and3, not3, or3, xor3, Value};

/// The key type of the map-backed row representation. Shared (`Rc<str>`)
/// rather than owned so a map-row clone bumps refcounts instead of
/// reallocating every variable name (the PR 1 optimization, preserved in the
/// differential-oracle representation).
pub type RowKey = Rc<str>;

/// A dense interned symbol id: the key type of the flat row representation.
/// Ids are assigned per [`SymbolTable`] in interning order, so a query's
/// variables occupy a small contiguous range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

/// A per-query symbol table interning every variable and column name to a
/// [`SymId`].
///
/// The table is built once per query run ([`SymbolTable::for_query`] walks
/// the AST at plan time and interns every name it can see), then shared
/// read-mostly through [`EvalCtx`]; names minted during evaluation (aggregate
/// placeholders, `WITH`-introduced output columns that plan-time walking
/// missed) intern on demand through the interior `RefCell`s. Interning keeps
/// per-row key storage at 4 bytes and makes key comparison an integer
/// compare instead of a string compare.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `SymId.0 as usize` indexes this vector; the entry is the name.
    names: RefCell<Vec<Rc<str>>>,
    /// Reverse mapping, name → id. Fx-hashed: the table probes a short
    /// string per variable reference, where SipHash would dominate.
    ids: RefCell<FxHashMap<Rc<str>, SymId>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Creates a table pre-populated with every variable, alias and output
    /// column name of `query` (plan-time interning). Evaluation still interns
    /// on demand, so missing a name here costs a hash insert, never
    /// correctness.
    pub fn for_query(query: &Query) -> Self {
        let table = SymbolTable::new();
        table.intern_query(query);
        table
    }

    /// Interns `name`, returning its (possibly pre-existing) id.
    pub fn intern(&self, name: &str) -> SymId {
        if let Some(id) = self.ids.borrow().get(name) {
            return *id;
        }
        let shared: Rc<str> = Rc::from(name);
        let mut names = self.names.borrow_mut();
        let id = SymId(names.len() as u32);
        names.push(Rc::clone(&shared));
        self.ids.borrow_mut().insert(shared, id);
        id
    }

    /// The id of `name`, if it was ever interned. Reads (unbound-variable
    /// lookups) must not grow the table.
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.ids.borrow().get(name).copied()
    }

    /// Snapshots every interned name in id order, as plain owned strings
    /// (`Rc`-free, so the snapshot is `Send + Sync`). Re-interning the
    /// snapshot via [`SymbolTable::from_names`] reproduces the exact same
    /// `SymId` assignment, because [`SymbolTable::intern`] assigns ids
    /// sequentially in first-intern order.
    pub fn snapshot_names(&self) -> Vec<Box<str>> {
        self.names.borrow().iter().map(|name| Box::from(&**name)).collect()
    }

    /// Rebuilds a table from a [`SymbolTable::snapshot_names`] snapshot,
    /// assigning each name the id equal to its snapshot position.
    pub fn from_names(names: &[Box<str>]) -> Self {
        let table = SymbolTable::new();
        for name in names {
            table.intern(name);
        }
        table
    }

    /// The name interned under `id`.
    pub fn name(&self, id: SymId) -> Rc<str> {
        Rc::clone(&self.names.borrow()[id.0 as usize])
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.borrow().len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.borrow().is_empty()
    }

    /// Walks `query` and interns every name evaluation could bind or look
    /// up: pattern variables, `UNWIND` aliases, projection output names, and
    /// variable references inside expressions (including `EXISTS` subqueries,
    /// which evaluate under the same table).
    pub fn intern_query(&self, query: &Query) {
        for part in &query.parts {
            for clause in &part.clauses {
                match clause {
                    cypher_parser::ast::Clause::Match(m) => self.intern_match(m),
                    cypher_parser::ast::Clause::Unwind(UnwindClause { expr, alias, .. }) => {
                        self.intern_expr(expr);
                        self.intern(alias);
                    }
                    cypher_parser::ast::Clause::With(WithClause {
                        projection,
                        where_clause,
                        ..
                    }) => {
                        self.intern_projection(projection);
                        if let Some(predicate) = where_clause {
                            self.intern_expr(predicate);
                        }
                    }
                    cypher_parser::ast::Clause::Return(projection) => {
                        self.intern_projection(projection)
                    }
                }
            }
        }
    }

    fn intern_match(&self, clause: &MatchClause) {
        for pattern in &clause.patterns {
            self.intern_pattern(pattern);
        }
        if let Some(predicate) = &clause.where_clause {
            self.intern_expr(predicate);
        }
    }

    fn intern_pattern(&self, pattern: &PathPattern) {
        if let Some(variable) = &pattern.variable {
            self.intern(variable);
        }
        let intern_node = |node: &NodePattern| {
            if let Some(variable) = &node.variable {
                self.intern(variable);
            }
            for (_, expr) in &node.properties {
                self.intern_expr(expr);
            }
        };
        let intern_rel = |rel: &RelationshipPattern| {
            if let Some(variable) = &rel.variable {
                self.intern(variable);
            }
            for (_, expr) in &rel.properties {
                self.intern_expr(expr);
            }
        };
        intern_node(&pattern.start);
        for segment in &pattern.segments {
            intern_rel(&segment.relationship);
            intern_node(&segment.node);
        }
    }

    fn intern_projection(&self, projection: &Projection) {
        if let ProjectionItems::Items(items) = &projection.items {
            for item in items {
                self.intern(&item.output_name());
                self.intern_expr(&item.expr);
            }
        }
        for order in &projection.order_by {
            self.intern_expr(&order.expr);
        }
        if let Some(skip) = &projection.skip {
            self.intern_expr(skip);
        }
        if let Some(limit) = &projection.limit {
            self.intern_expr(limit);
        }
    }

    fn intern_expr(&self, expr: &Expr) {
        expr.walk(&mut |e| match e {
            Expr::Variable(name) => {
                self.intern(name);
            }
            // `Expr::walk` does not descend into EXISTS subqueries; they
            // evaluate under the same table, so recurse explicitly.
            Expr::Exists(subquery) => self.intern_query(subquery),
            _ => {}
        });
    }
}

/// The two physical row representations (see [`Row`]).
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    /// A small vector of `(symbol, value)` entries sorted by [`SymId`]. The
    /// default: a row clone is one allocation plus the value clones, and a
    /// [`Row::with`] extension copies straight into a right-sized vector.
    Flat(Vec<(SymId, Value)>),
    /// The PR-1-era `BTreeMap` representation, preserved verbatim as the
    /// differential oracle behind `Evaluator::map_rows` (mirroring how the
    /// linear-scan matcher survives behind `scan_matching`).
    Map(BTreeMap<RowKey, Value>),
}

/// A binding row: variable → value, keyed by interned [`SymId`]s in the
/// default flat representation or by names in the map-backed oracle
/// representation. All name-based accessors take the run's [`SymbolTable`]
/// to resolve names; the representation chosen at row creation
/// ([`Row::for_ctx`]) is preserved by every extension.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    repr: Repr,
}

impl Default for Row {
    fn default() -> Self {
        Row::new()
    }
}

impl Row {
    /// An empty flat row.
    pub fn new() -> Self {
        Row { repr: Repr::Flat(Vec::new()) }
    }

    /// An empty map-backed row (the differential-oracle representation).
    pub fn new_map() -> Self {
        Row { repr: Repr::Map(BTreeMap::new()) }
    }

    /// An empty row in the representation the context selects.
    pub fn for_ctx(ctx: EvalCtx<'_>) -> Self {
        if ctx.map_rows {
            Row::new_map()
        } else {
            Row::new()
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Flat(entries) => entries.len(),
            Repr::Map(map) => map.len(),
        }
    }

    /// Returns `true` if the row has no bindings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value bound to `name`, if any.
    pub fn get<'r>(&'r self, symbols: &SymbolTable, name: &str) -> Option<&'r Value> {
        match &self.repr {
            Repr::Flat(entries) => {
                let id = symbols.lookup(name)?;
                // Rows hold a handful of entries; a branch-predictable
                // linear scan beats binary search at this size.
                entries.iter().find(|(sym, _)| *sym == id).map(|(_, value)| value)
            }
            Repr::Map(map) => map.get(name),
        }
    }

    /// The value bound to the pre-interned symbol `id`, if any. The
    /// [`SymId`]-native accessor of the compiled-plan path: the flat
    /// representation skips the name hash probe entirely; the map-backed
    /// oracle representation resolves the name through the table (it keys on
    /// names by design).
    pub fn get_sym<'r>(&'r self, symbols: &SymbolTable, id: SymId) -> Option<&'r Value> {
        match &self.repr {
            Repr::Flat(entries) => {
                entries.iter().find(|(sym, _)| *sym == id).map(|(_, value)| value)
            }
            Repr::Map(map) => map.get(&*symbols.name(id)),
        }
    }

    /// [`Row::insert`] keyed by a pre-interned symbol.
    pub fn insert_sym(&mut self, symbols: &SymbolTable, id: SymId, value: Value) {
        match &mut self.repr {
            Repr::Flat(entries) => match entries.binary_search_by_key(&id, |(sym, _)| *sym) {
                Ok(position) => entries[position].1 = value,
                Err(position) => entries.insert(position, (id, value)),
            },
            Repr::Map(map) => {
                map.insert(symbols.name(id), value);
            }
        }
    }

    /// [`Row::insert_if_absent`] keyed by a pre-interned symbol.
    pub fn insert_if_absent_sym(&mut self, symbols: &SymbolTable, id: SymId, value: Value) {
        match &mut self.repr {
            Repr::Flat(entries) => {
                if let Err(position) = entries.binary_search_by_key(&id, |(sym, _)| *sym) {
                    entries.insert(position, (id, value));
                }
            }
            Repr::Map(map) => {
                map.entry(symbols.name(id)).or_insert(value);
            }
        }
    }

    /// [`Row::with`] keyed by a pre-interned symbol — the copy-on-extend the
    /// compiled matcher performs at every nondeterministic binding branch,
    /// with no name resolution on the flat path.
    pub fn with_sym(&self, symbols: &SymbolTable, id: SymId, value: Value) -> Row {
        match &self.repr {
            Repr::Flat(entries) => {
                let position = entries.partition_point(|(sym, _)| *sym < id);
                let mut out: Vec<(SymId, Value)> = Vec::with_capacity(entries.len() + 1);
                out.extend_from_slice(&entries[..position]);
                if entries.get(position).is_some_and(|(sym, _)| *sym == id) {
                    out.push((id, value));
                    out.extend_from_slice(&entries[position + 1..]);
                } else {
                    out.push((id, value));
                    out.extend_from_slice(&entries[position..]);
                }
                Row { repr: Repr::Flat(out) }
            }
            Repr::Map(map) => {
                let mut out = map.clone();
                out.insert(symbols.name(id), value);
                Row { repr: Repr::Map(out) }
            }
        }
    }

    /// Binds `name` to `value`, replacing any existing binding.
    pub fn insert(&mut self, symbols: &SymbolTable, name: &str, value: Value) {
        match &mut self.repr {
            Repr::Flat(entries) => {
                let id = symbols.intern(name);
                match entries.binary_search_by_key(&id, |(sym, _)| *sym) {
                    Ok(position) => entries[position].1 = value,
                    Err(position) => entries.insert(position, (id, value)),
                }
            }
            Repr::Map(map) => {
                map.insert(RowKey::from(name), value);
            }
        }
    }

    /// Binds `name` to `value` only if it is not already bound (the
    /// `OPTIONAL MATCH` null-fill).
    pub fn insert_if_absent(&mut self, symbols: &SymbolTable, name: &str, value: Value) {
        match &mut self.repr {
            Repr::Flat(entries) => {
                let id = symbols.intern(name);
                if let Err(position) = entries.binary_search_by_key(&id, |(sym, _)| *sym) {
                    entries.insert(position, (id, value));
                }
            }
            Repr::Map(map) => {
                map.entry(RowKey::from(name)).or_insert(value);
            }
        }
    }

    /// Copy-on-extend: the row plus one extra binding, built in a single
    /// right-sized allocation instead of clone-then-insert. This is the
    /// operation the pattern matcher performs at every nondeterministic
    /// binding branch.
    pub fn with(&self, symbols: &SymbolTable, name: &str, value: Value) -> Row {
        match &self.repr {
            Repr::Flat(entries) => {
                let id = symbols.intern(name);
                let position = entries.partition_point(|(sym, _)| *sym < id);
                let mut out: Vec<(SymId, Value)> = Vec::with_capacity(entries.len() + 1);
                out.extend_from_slice(&entries[..position]);
                if entries.get(position).is_some_and(|(sym, _)| *sym == id) {
                    out.push((id, value));
                    out.extend_from_slice(&entries[position + 1..]);
                } else {
                    out.push((id, value));
                    out.extend_from_slice(&entries[position..]);
                }
                Row { repr: Repr::Flat(out) }
            }
            Repr::Map(map) => {
                let mut out = map.clone();
                out.insert(RowKey::from(name), value);
                Row { repr: Repr::Map(out) }
            }
        }
    }

    /// Merges every binding of `other` into `self` (bindings of `other`
    /// win). Used by `WITH ... WHERE`, whose predicate sees the projected
    /// names on top of the pre-projection environment.
    pub fn merge_from(&mut self, symbols: &SymbolTable, other: &Row) {
        for (name, value) in other.iter_named(symbols) {
            self.insert(symbols, &name, value.clone());
        }
    }

    /// Iterates the bindings as `(name, value)` pairs, in the row's internal
    /// order (symbol order for flat rows, name order for map rows). The
    /// iterator is a plain enum — no per-call heap allocation, this sits on
    /// per-row paths (`WITH ... WHERE` merging, `RETURN *`).
    pub fn iter_named<'r>(&'r self, symbols: &'r SymbolTable) -> RowIter<'r> {
        match &self.repr {
            Repr::Flat(entries) => RowIter(RowIterInner::Flat { entries: entries.iter(), symbols }),
            Repr::Map(map) => RowIter(RowIterInner::Map(map.iter())),
        }
    }

    /// The bound values in **name order** — identical across the two
    /// representations, so representation-differential tests (and the
    /// `COUNT(DISTINCT *)` whole-row comparison) see the same vectors.
    pub fn values_by_name(&self, symbols: &SymbolTable) -> Vec<Value> {
        match &self.repr {
            Repr::Flat(entries) => {
                let mut named: Vec<(Rc<str>, &Value)> =
                    entries.iter().map(|(sym, value)| (symbols.name(*sym), value)).collect();
                named.sort_by(|(a, _), (b, _)| a.cmp(b));
                named.into_iter().map(|(_, value)| value.clone()).collect()
            }
            Repr::Map(map) => map.values().cloned().collect(),
        }
    }

    /// The bound names, in the row's internal order.
    pub fn names(&self, symbols: &SymbolTable) -> Vec<Rc<str>> {
        self.iter_named(symbols).map(|(name, _)| name).collect()
    }
}

/// Iterator over a row's `(name, value)` bindings (see [`Row::iter_named`]).
pub struct RowIter<'r>(RowIterInner<'r>);

enum RowIterInner<'r> {
    Flat { entries: std::slice::Iter<'r, (SymId, Value)>, symbols: &'r SymbolTable },
    Map(std::collections::btree_map::Iter<'r, RowKey, Value>),
}

impl<'r> Iterator for RowIter<'r> {
    type Item = (Rc<str>, &'r Value);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            RowIterInner::Flat { entries, symbols } => {
                entries.next().map(|(sym, value)| (symbols.name(*sym), value))
            }
            RowIterInner::Map(entries) => {
                entries.next().map(|(key, value)| (Rc::clone(key), value))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            RowIterInner::Flat { entries, .. } => entries.size_hint(),
            RowIterInner::Map(entries) => entries.size_hint(),
        }
    }
}

/// Evaluation context shared by all expression evaluations of one query run.
#[derive(Clone, Copy)]
pub struct EvalCtx<'g> {
    /// The property graph being queried.
    pub graph: &'g PropertyGraph,
    /// The run's symbol table (see [`SymbolTable`]).
    pub symbols: &'g SymbolTable,
    /// Bound on variable-length path expansion (see [`crate::eval::Evaluator`]).
    pub max_var_length: u32,
    /// Enumerate pattern candidates with the linear-scan baseline
    /// ([`crate::matching::scan`]) instead of the adjacency index. The two
    /// paths return identical rows in identical order; the flag exists for
    /// differential testing and baseline benchmarking.
    pub scan_matching: bool,
    /// Evaluate with map-backed rows ([`Row::new_map`]) instead of flat
    /// interned-symbol rows. The two representations produce identical
    /// results; the flag exists for differential testing and baseline
    /// benchmarking, like `scan_matching`.
    pub map_rows: bool,
    /// The run's lazily lowered query plans (see [`crate::plan::PlanCache`]).
    /// `Some` selects the compiled [`SymId`]-native matcher and projections
    /// (the default through [`crate::eval::Evaluator`]); `None` falls back to
    /// the name-resolving interpreter, preserved as the differential oracle
    /// the way the scan matcher and map rows are.
    pub plans: Option<&'g crate::plan::PlanCache>,
}

impl<'g> EvalCtx<'g> {
    /// Creates a context with the default variable-length bound and no plan
    /// cache (the name-resolving interpreted path — what in-crate tests and
    /// direct matcher calls exercise; [`crate::eval::Evaluator`] supplies
    /// plans for the compiled default).
    pub fn new(graph: &'g PropertyGraph, symbols: &'g SymbolTable) -> Self {
        EvalCtx {
            graph,
            symbols,
            max_var_length: graph.relationship_count() as u32,
            scan_matching: false,
            map_rows: false,
            plans: None,
        }
    }
}

/// Evaluates an expression to a [`Value`] in the given row.
pub fn eval_expr(ctx: EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<Value, EvalError> {
    match expr {
        Expr::Literal(lit) => Ok(eval_literal(lit)),
        Expr::Variable(name) => Ok(row.get(ctx.symbols, name).cloned().unwrap_or(Value::Null)),
        Expr::Parameter(name) => Err(EvalError::new(format!(
            "unbound query parameter `${name}` (the evaluator does not take parameters)"
        ))),
        Expr::Property(base, key) => {
            let base = eval_expr(ctx, row, base)?;
            Ok(read_property(ctx, &base, key))
        }
        Expr::Unary(op, inner) => {
            let value = eval_expr(ctx, row, inner)?;
            Ok(match op {
                UnaryOp::Not => bool3_to_value(not3(value.as_bool())),
                // Direct negation, not `0 - x`: the subtraction detour turned
                // `-(0.0)` into `+0.0` (losing the IEEE sign bit, observable
                // through the total order) and hid the `-(i64::MIN)` overflow
                // inside `checked_sub`.
                UnaryOp::Neg => value.neg(),
                UnaryOp::Pos => value,
            })
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(ctx, row, *op, lhs, rhs),
        Expr::IsNull { expr, negated } => {
            let value = eval_expr(ctx, row, expr)?;
            let is_null = value.is_null();
            Ok(Value::Boolean(if *negated { !is_null } else { is_null }))
        }
        Expr::List(items) => {
            let values = items
                .iter()
                .map(|item| eval_expr(ctx, row, item))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::List(values))
        }
        Expr::Map(entries) => {
            let mut map = BTreeMap::new();
            for (key, value) in entries {
                map.insert(key.clone(), eval_expr(ctx, row, value)?);
            }
            Ok(Value::Map(map))
        }
        Expr::FunctionCall { name, args } => {
            let values =
                args.iter().map(|arg| eval_expr(ctx, row, arg)).collect::<Result<Vec<_>, _>>()?;
            eval_function(ctx, name, &values)
        }
        Expr::AggregateCall { .. } | Expr::CountStar { .. } => {
            Err(EvalError::new("aggregate expressions can only appear in WITH/RETURN projections"))
        }
        Expr::Exists(query) => {
            let result = evaluate_single_query_on_rows(ctx, query, vec![row.clone()], false)?;
            Ok(Value::Boolean(!result.rows.is_empty()))
        }
        Expr::Case { branches, otherwise } => {
            for (cond, value) in branches {
                if eval_expr(ctx, row, cond)?.as_bool() == Some(true) {
                    return eval_expr(ctx, row, value);
                }
            }
            match otherwise {
                Some(e) => eval_expr(ctx, row, e),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluates a predicate for `WHERE`: only `TRUE` passes.
pub fn eval_predicate(ctx: EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<bool, EvalError> {
    Ok(eval_expr(ctx, row, expr)?.as_bool() == Some(true))
}

fn eval_literal(lit: &Literal) -> Value {
    match lit {
        Literal::Integer(v) => Value::Integer(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::String(s.clone()),
        Literal::Boolean(b) => Value::Boolean(*b),
        Literal::Null => Value::Null,
    }
}

/// Evaluates `expr` at lowering time if it is a row-independent constant,
/// mirroring [`eval_expr`]'s semantics exactly on the covered fragment
/// (literals and unary `+`/`-` over them — in particular `Neg` goes through
/// [`Value::neg`], preserving `-0.0` and `i64::MIN` behavior). Returns `None`
/// for anything that could depend on the row, the graph, or evaluation
/// order, which stays dynamic.
pub(crate) fn eval_const_expr(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Literal(lit) => Some(eval_literal(lit)),
        Expr::Unary(UnaryOp::Neg, inner) => Some(eval_const_expr(inner)?.neg()),
        Expr::Unary(UnaryOp::Pos, inner) => eval_const_expr(inner),
        _ => None,
    }
}

fn eval_binary(
    ctx: EvalCtx<'_>,
    row: &Row,
    op: BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
) -> Result<Value, EvalError> {
    // Logical connectives get three-valued treatment and may short-circuit.
    if op.is_logical() {
        let left = eval_expr(ctx, row, lhs)?.as_bool();
        let right = eval_expr(ctx, row, rhs)?.as_bool();
        return Ok(bool3_to_value(match op {
            BinaryOp::And => and3(left, right),
            BinaryOp::Or => or3(left, right),
            BinaryOp::Xor => xor3(left, right),
            _ => unreachable!("is_logical covers only AND/OR/XOR"),
        }));
    }

    let left = eval_expr(ctx, row, lhs)?;
    let right = eval_expr(ctx, row, rhs)?;
    Ok(match op {
        BinaryOp::Eq => bool3_to_value(left.cypher_eq(&right)),
        BinaryOp::Neq => bool3_to_value(not3(left.cypher_eq(&right))),
        BinaryOp::Lt => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_lt())),
        BinaryOp::Le => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_le())),
        BinaryOp::Gt => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_gt())),
        BinaryOp::Ge => bool3_to_value(left.cypher_cmp(&right).map(|o| o.is_ge())),
        BinaryOp::Add => left.add(&right),
        BinaryOp::Sub => left.sub(&right),
        BinaryOp::Mul => left.mul(&right),
        BinaryOp::Div => left.div(&right),
        BinaryOp::Mod => left.rem(&right),
        BinaryOp::Pow => left.pow(&right),
        BinaryOp::In => eval_in(&left, &right),
        BinaryOp::StartsWith => eval_string_predicate(&left, &right, |a, b| a.starts_with(b)),
        BinaryOp::EndsWith => eval_string_predicate(&left, &right, |a, b| a.ends_with(b)),
        BinaryOp::Contains => eval_string_predicate(&left, &right, |a, b| a.contains(b)),
        BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => unreachable!("handled above"),
    })
}

fn eval_in(needle: &Value, haystack: &Value) -> Value {
    match haystack {
        Value::Null => Value::Null,
        Value::List(items) => {
            let mut saw_null = false;
            for item in items {
                match needle.cypher_eq(item) {
                    Some(true) => return Value::Boolean(true),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Value::Null
            } else {
                Value::Boolean(false)
            }
        }
        _ => Value::Null,
    }
}

fn eval_string_predicate(left: &Value, right: &Value, f: impl Fn(&str, &str) -> bool) -> Value {
    match (left, right) {
        (Value::String(a), Value::String(b)) => Value::Boolean(f(a, b)),
        _ => Value::Null,
    }
}

fn bool3_to_value(value: Option<bool>) -> Value {
    match value {
        Some(b) => Value::Boolean(b),
        None => Value::Null,
    }
}

/// Reads `base.key` where `base` may be a node, relationship or map.
pub fn read_property(ctx: EvalCtx<'_>, base: &Value, key: &str) -> Value {
    match base {
        Value::Node(id) => ctx.graph.property(EntityId::Node(*id), key),
        Value::Relationship(id) => ctx.graph.property(EntityId::Relationship(*id), key),
        Value::Map(map) => map.get(key).cloned().unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// Evaluates the built-in scalar functions that the evaluation dataset uses.
///
/// The supported set is [`cypher_parser::BuiltinFunction`] — the same
/// registry the stage-① semantic check admits, so the two cannot drift and
/// the `match` below is exhaustive by construction. Unknown names evaluate
/// to `NULL`, but since PR 5 the semantic check rejects them, so for checked
/// queries the fallthrough is unreachable; it survives for direct
/// `eval_expr` callers that bypass the checker.
fn eval_function(ctx: EvalCtx<'_>, name: &str, args: &[Value]) -> Result<Value, EvalError> {
    use cypher_parser::BuiltinFunction as F;
    let arg = |i: usize| args.get(i).cloned().unwrap_or(Value::Null);
    let Some(function) = F::from_name(name) else {
        // Unknown / unmodelled functions: NULL (mirrors the prover treating
        // them as uninterpreted).
        return Ok(Value::Null);
    };
    Ok(match function {
        F::Id => match arg(0) {
            Value::Node(id) => Value::Integer(id.0 as i64),
            // Relationship ids live in a disjoint range so that `id(n) = id(r)`
            // can never hold between a node and a relationship.
            Value::Relationship(id) => Value::Integer(1_000_000_000 + id.0 as i64),
            _ => Value::Null,
        },
        F::Labels => match arg(0) {
            Value::Node(id) => {
                Value::List(ctx.graph.node(id).labels.iter().cloned().map(Value::String).collect())
            }
            _ => Value::Null,
        },
        F::Type => match arg(0) {
            Value::Relationship(id) => Value::String(ctx.graph.relationship(id).label.clone()),
            _ => Value::Null,
        },
        F::Size => match arg(0) {
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        F::Length => match arg(0) {
            Value::Path(items) => Value::Integer((items.len().saturating_sub(1) / 2) as i64),
            Value::List(items) => Value::Integer(items.len() as i64),
            Value::String(s) => Value::Integer(s.chars().count() as i64),
            _ => Value::Null,
        },
        F::Head => match arg(0) {
            Value::List(items) => items.first().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        F::Last => match arg(0) {
            Value::List(items) => items.last().cloned().unwrap_or(Value::Null),
            _ => Value::Null,
        },
        F::Abs => match arg(0) {
            Value::Integer(v) => Value::Integer(v.abs()),
            Value::Float(v) => Value::Float(v.abs()),
            _ => Value::Null,
        },
        F::ToUpper => match arg(0) {
            Value::String(s) => Value::String(s.to_uppercase()),
            _ => Value::Null,
        },
        F::ToLower => match arg(0) {
            Value::String(s) => Value::String(s.to_lowercase()),
            _ => Value::Null,
        },
        F::Coalesce => args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null),
        F::Exists => Value::Boolean(!arg(0).is_null()),
        F::StartNode => match arg(0) {
            Value::Relationship(id) => Value::Node(ctx.graph.relationship(id).source),
            _ => Value::Null,
        },
        F::EndNode => match arg(0) {
            Value::Relationship(id) => Value::Node(ctx.graph.relationship(id).target),
            _ => Value::Null,
        },
        F::Index => match (arg(0), arg(1)) {
            (Value::List(items), Value::Integer(i)) if i >= 0 && (i as usize) < items.len() => {
                items[i as usize].clone()
            }
            _ => Value::Null,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use cypher_parser::parse_expression;

    fn ctx_and_row() -> (PropertyGraph, SymbolTable, Row) {
        let graph = PropertyGraph::paper_example();
        let symbols = SymbolTable::new();
        let mut row = Row::new();
        row.insert(&symbols, "n", Value::Node(NodeId(0)));
        row.insert(&symbols, "x", Value::Integer(5));
        (graph, symbols, row)
    }

    fn eval(graph: &PropertyGraph, symbols: &SymbolTable, row: &Row, text: &str) -> Value {
        let expr = parse_expression(text).unwrap();
        eval_expr(EvalCtx::new(graph, symbols), row, &expr).unwrap()
    }

    #[test]
    fn evaluates_property_access_and_comparison() {
        let (graph, symbols, row) = ctx_and_row();
        assert_eq!(eval(&graph, &symbols, &row, "n.age"), Value::Integer(59));
        assert_eq!(eval(&graph, &symbols, &row, "n.age = 59"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "n.age > 100"), Value::Boolean(false));
        assert_eq!(eval(&graph, &symbols, &row, "n.missing = 1"), Value::Null);
        assert_eq!(eval(&graph, &symbols, &row, "n.missing IS NULL"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "n.age IS NOT NULL"), Value::Boolean(true));
    }

    #[test]
    fn evaluates_arithmetic_and_logic() {
        let (graph, symbols, row) = ctx_and_row();
        assert_eq!(eval(&graph, &symbols, &row, "x + 2 * 3"), Value::Integer(11));
        assert_eq!(eval(&graph, &symbols, &row, "x > 1 AND x < 10"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "x > 1 AND n.missing = 1"), Value::Null);
        assert_eq!(eval(&graph, &symbols, &row, "x < 1 AND n.missing = 1"), Value::Boolean(false));
        assert_eq!(eval(&graph, &symbols, &row, "NOT x = 5"), Value::Boolean(false));
        assert_eq!(eval(&graph, &symbols, &row, "x IN [1, 5, 9]"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "x IN [1, 2]"), Value::Boolean(false));
    }

    #[test]
    fn evaluates_string_predicates_and_functions() {
        let (graph, symbols, row) = ctx_and_row();
        assert_eq!(eval(&graph, &symbols, &row, "n.name STARTS WITH 'J.'"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "n.name CONTAINS 'Rowling'"), Value::Boolean(true));
        assert_eq!(eval(&graph, &symbols, &row, "size('abc')"), Value::Integer(3));
        assert_eq!(eval(&graph, &symbols, &row, "coalesce(n.missing, 7)"), Value::Integer(7));
        assert_eq!(eval(&graph, &symbols, &row, "id(n)"), Value::Integer(0));
        assert_eq!(
            eval(&graph, &symbols, &row, "labels(n)"),
            Value::List(vec![Value::from("Person")])
        );
        assert_eq!(eval(&graph, &symbols, &row, "unknown_function(n)"), Value::Null);
    }

    #[test]
    fn evaluates_case_and_maps_and_lists() {
        let (graph, symbols, row) = ctx_and_row();
        assert_eq!(
            eval(&graph, &symbols, &row, "CASE WHEN x > 3 THEN 'big' ELSE 'small' END"),
            Value::from("big")
        );
        assert_eq!(eval(&graph, &symbols, &row, "{a: 1, b: 2}.b"), Value::Integer(2));
        assert_eq!(eval(&graph, &symbols, &row, "[1, 2, 3][1]"), Value::Integer(2));
        assert_eq!(eval(&graph, &symbols, &row, "head([4, 5])"), Value::Integer(4));
    }

    #[test]
    fn unbound_variables_are_null() {
        let (graph, symbols, row) = ctx_and_row();
        assert_eq!(eval(&graph, &symbols, &row, "missing_variable"), Value::Null);
        assert_eq!(eval(&graph, &symbols, &row, "missing_variable = 1"), Value::Null);
    }

    #[test]
    fn parameters_are_rejected() {
        let (graph, symbols, row) = ctx_and_row();
        let expr = parse_expression("$p = 1").unwrap();
        assert!(eval_expr(EvalCtx::new(&graph, &symbols), &row, &expr).is_err());
    }

    #[test]
    fn aggregates_outside_projections_are_rejected() {
        let (graph, symbols, row) = ctx_and_row();
        let expr = parse_expression("SUM(x)").unwrap();
        assert!(eval_expr(EvalCtx::new(&graph, &symbols), &row, &expr).is_err());
    }

    #[test]
    fn symbol_table_interns_densely_and_round_trips() {
        let symbols = SymbolTable::new();
        let a = symbols.intern("a");
        let b = symbols.intern("b");
        assert_eq!(a, SymId(0));
        assert_eq!(b, SymId(1));
        assert_eq!(symbols.intern("a"), a, "re-interning returns the same id");
        assert_eq!(symbols.lookup("b"), Some(b));
        assert_eq!(symbols.lookup("missing"), None);
        assert_eq!(&*symbols.name(a), "a");
        assert_eq!(symbols.len(), 2);
    }

    #[test]
    fn plan_time_interning_covers_query_names() {
        let query = cypher_parser::parse_query(
            "MATCH p = (a:Person)-[r:READ]->(b) WHERE a.age > 1 \
             WITH b.title AS title UNWIND [1] AS x RETURN title, x AS renamed",
        )
        .unwrap();
        let symbols = SymbolTable::for_query(&query);
        for name in ["p", "a", "r", "b", "title", "x", "renamed"] {
            assert!(symbols.lookup(name).is_some(), "{name} not interned at plan time");
        }
    }

    #[test]
    fn flat_and_map_rows_behave_identically() {
        let symbols = SymbolTable::new();
        let mut flat = Row::new();
        let mut map = Row::new_map();
        for row in [&mut flat, &mut map] {
            // Insert out of name order to exercise the sorted insert.
            row.insert(&symbols, "z", Value::Integer(1));
            row.insert(&symbols, "a", Value::Integer(2));
            row.insert(&symbols, "m", Value::Integer(3));
            row.insert(&symbols, "a", Value::Integer(4)); // replace
            row.insert_if_absent(&symbols, "m", Value::Null); // no-op
            row.insert_if_absent(&symbols, "q", Value::Integer(5));
        }
        for row in [&flat, &map] {
            assert_eq!(row.len(), 4);
            assert_eq!(row.get(&symbols, "a"), Some(&Value::Integer(4)));
            assert_eq!(row.get(&symbols, "m"), Some(&Value::Integer(3)));
            assert_eq!(row.get(&symbols, "q"), Some(&Value::Integer(5)));
            assert_eq!(row.get(&symbols, "missing"), None);
        }
        // values_by_name is the representation-independent view.
        assert_eq!(flat.values_by_name(&symbols), map.values_by_name(&symbols));

        // Copy-on-extend preserves the original and the representation.
        let extended = flat.with(&symbols, "b", Value::Integer(9));
        assert_eq!(flat.len(), 4);
        assert_eq!(extended.len(), 5);
        assert_eq!(extended.get(&symbols, "b"), Some(&Value::Integer(9)));
        let replaced = flat.with(&symbols, "a", Value::Integer(0));
        assert_eq!(replaced.len(), 4);
        assert_eq!(replaced.get(&symbols, "a"), Some(&Value::Integer(0)));
        let map_extended = map.with(&symbols, "b", Value::Integer(9));
        assert_eq!(map_extended.values_by_name(&symbols), extended.values_by_name(&symbols));

        // merge_from lets the other row's bindings win.
        let mut merged = flat.clone();
        let mut overlay = Row::new();
        overlay.insert(&symbols, "a", Value::Integer(7));
        overlay.insert(&symbols, "new", Value::Integer(8));
        merged.merge_from(&symbols, &overlay);
        assert_eq!(merged.get(&symbols, "a"), Some(&Value::Integer(7)));
        assert_eq!(merged.get(&symbols, "new"), Some(&Value::Integer(8)));
        assert_eq!(merged.len(), 5);
    }

    /// Every function in the shared [`cypher_parser::BuiltinFunction`]
    /// registry evaluates through a real arm of `eval_function`: applied to
    /// representative arguments, each returns a non-NULL value, which the
    /// unknown-name fallthrough can never produce. This pins the runtime
    /// side of the registry/evaluator agreement the enum guarantees at
    /// compile time.
    #[test]
    fn every_registered_builtin_evaluates_non_null() {
        use crate::graph::RelId;
        use cypher_parser::BuiltinFunction;

        let graph = PropertyGraph::paper_example();
        let symbols = SymbolTable::new();
        let mut row = Row::new();
        row.insert(&symbols, "n", Value::Node(NodeId(0)));
        row.insert(&symbols, "r", Value::Relationship(RelId(0)));
        let representative = |function: BuiltinFunction| match function {
            BuiltinFunction::Id => "id(n)",
            BuiltinFunction::Labels => "labels(n)",
            BuiltinFunction::Type => "type(r)",
            BuiltinFunction::Size => "size('abc')",
            BuiltinFunction::Length => "length([1, 2])",
            BuiltinFunction::Head => "head([1, 2])",
            BuiltinFunction::Last => "last([1, 2])",
            BuiltinFunction::Abs => "abs(0 - 3)",
            BuiltinFunction::ToUpper => "toUpper('a')",
            BuiltinFunction::ToLower => "toLower('A')",
            BuiltinFunction::Coalesce => "coalesce(n.missing, 7)",
            BuiltinFunction::Exists => "exists(n.name)",
            BuiltinFunction::StartNode => "startNode(r)",
            BuiltinFunction::EndNode => "endNode(r)",
            BuiltinFunction::Index => "index([4, 5], 1)",
        };
        for &function in BuiltinFunction::ALL {
            let text = representative(function);
            let value = eval(&graph, &symbols, &row, text);
            assert!(!value.is_null(), "{text}: registered builtin evaluated to NULL");
        }
    }
}
