//! Random property-graph generation.
//!
//! Small random graphs are the workhorse of two GraphQE-rs components:
//!
//! * **property testing** — queries proven equivalent by the prover must
//!   return the same bag of rows on randomly generated graphs;
//! * **counterexample search** — the prover certifies non-equivalence by
//!   exhibiting a concrete graph on which the two queries disagree.
//!
//! The generator is deliberately biased towards *small, label-dense* graphs:
//! small graphs make bag comparison cheap, and reusing a small pool of labels
//! and property keys makes pattern predicates actually select something.

use cypher_parser::ast::{Clause, Expr, Literal, Query};

use crate::graph::PropertyGraph;
use crate::rng::DetRng;
use crate::value::Value;

/// Configuration of the random graph generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GeneratorConfig {
    /// Maximum number of nodes (the actual count is sampled in `0..=max`).
    pub max_nodes: usize,
    /// Maximum number of relationships.
    pub max_relationships: usize,
    /// Node labels to sample from.
    pub node_labels: Vec<String>,
    /// Relationship labels to sample from.
    pub relationship_labels: Vec<String>,
    /// Property keys to sample from.
    pub property_keys: Vec<String>,
    /// Largest absolute value of integer properties.
    pub max_int: i64,
    /// Additional integer values to sample from (e.g. constants appearing in
    /// the queries under test, so predicates actually select rows).
    pub int_pool: Vec<i64>,
    /// Additional string values to sample from.
    pub string_pool: Vec<String>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_nodes: 6,
            max_relationships: 10,
            node_labels: ["Person", "Book", "City", "Tag"].map(String::from).to_vec(),
            relationship_labels: ["READ", "WRITE", "KNOWS", "IN"].map(String::from).to_vec(),
            property_keys: ["name", "age", "p1", "p2", "dept"].map(String::from).to_vec(),
            max_int: 5,
            int_pool: Vec::new(),
            string_pool: Vec::new(),
        }
    }
}

impl GeneratorConfig {
    /// Builds a generator configuration from the labels, property keys and
    /// constants mentioned by the given queries, so that generated graphs can
    /// actually satisfy the queries' predicates.
    pub fn from_queries(queries: &[&Query]) -> GeneratorConfig {
        let mut config = GeneratorConfig::default();
        let add_unique = |list: &mut Vec<String>, value: String| {
            if !list.contains(&value) {
                list.push(value);
            }
        };
        let mut int_pool = Vec::new();
        let mut string_pool = Vec::new();
        let visit_expr = |expr: &Expr,
                          property_keys: &mut Vec<String>,
                          int_pool: &mut Vec<i64>,
                          string_pool: &mut Vec<String>| {
            expr.walk(&mut |e| match e {
                Expr::Property(_, key) if !property_keys.contains(key) => {
                    property_keys.push(key.clone());
                }
                Expr::Literal(Literal::Integer(v)) => {
                    for candidate in [*v - 1, *v, *v + 1] {
                        if !int_pool.contains(&candidate) {
                            int_pool.push(candidate);
                        }
                    }
                }
                Expr::Literal(Literal::String(s)) if !string_pool.contains(s) => {
                    string_pool.push(s.clone());
                }
                Expr::Literal(Literal::Boolean(_)) => {}
                _ => {}
            });
        };
        for query in queries {
            for part in &query.parts {
                for clause in &part.clauses {
                    match clause {
                        Clause::Match(m) => {
                            for pattern in &m.patterns {
                                for node in pattern.nodes() {
                                    for label in &node.labels {
                                        add_unique(&mut config.node_labels, label.clone());
                                    }
                                    for (key, value) in &node.properties {
                                        add_unique(&mut config.property_keys, key.clone());
                                        visit_expr(
                                            value,
                                            &mut config.property_keys,
                                            &mut int_pool,
                                            &mut string_pool,
                                        );
                                    }
                                }
                                for rel in pattern.relationships() {
                                    for label in &rel.labels {
                                        add_unique(&mut config.relationship_labels, label.clone());
                                    }
                                    for (key, value) in &rel.properties {
                                        add_unique(&mut config.property_keys, key.clone());
                                        visit_expr(
                                            value,
                                            &mut config.property_keys,
                                            &mut int_pool,
                                            &mut string_pool,
                                        );
                                    }
                                }
                            }
                            if let Some(predicate) = &m.where_clause {
                                visit_expr(
                                    predicate,
                                    &mut config.property_keys,
                                    &mut int_pool,
                                    &mut string_pool,
                                );
                            }
                        }
                        Clause::Unwind(u) => visit_expr(
                            &u.expr,
                            &mut config.property_keys,
                            &mut int_pool,
                            &mut string_pool,
                        ),
                        Clause::With(w) => {
                            if let Some(items) = w.projection.explicit_items() {
                                for item in items {
                                    visit_expr(
                                        &item.expr,
                                        &mut config.property_keys,
                                        &mut int_pool,
                                        &mut string_pool,
                                    );
                                }
                            }
                            if let Some(predicate) = &w.where_clause {
                                visit_expr(
                                    predicate,
                                    &mut config.property_keys,
                                    &mut int_pool,
                                    &mut string_pool,
                                );
                            }
                        }
                        Clause::Return(p) => {
                            if let Some(items) = p.explicit_items() {
                                for item in items {
                                    visit_expr(
                                        &item.expr,
                                        &mut config.property_keys,
                                        &mut int_pool,
                                        &mut string_pool,
                                    );
                                }
                            }
                            for order in &p.order_by {
                                visit_expr(
                                    &order.expr,
                                    &mut config.property_keys,
                                    &mut int_pool,
                                    &mut string_pool,
                                );
                            }
                        }
                    }
                }
            }
        }
        config.int_pool = int_pool;
        config.string_pool = string_pool;
        config
    }
}

/// A deterministic random graph generator.
#[derive(Debug)]
pub struct GraphGenerator {
    config: GeneratorConfig,
    rng: DetRng,
}

impl GraphGenerator {
    /// Creates a generator with the given seed and default configuration.
    pub fn new(seed: u64) -> Self {
        GraphGenerator { config: GeneratorConfig::default(), rng: DetRng::seed_from_u64(seed) }
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(seed: u64, config: GeneratorConfig) -> Self {
        GraphGenerator { config, rng: DetRng::seed_from_u64(seed) }
    }

    /// Generates the next random property graph.
    pub fn generate(&mut self) -> PropertyGraph {
        let mut graph = PropertyGraph::new();
        let node_count = self.rng.range_inclusive_usize(0, self.config.max_nodes);
        for _ in 0..node_count {
            let labels = self.sample_labels();
            let properties = self.sample_properties();
            graph.add_node(labels, properties);
        }
        if node_count > 0 {
            let rel_count = self.rng.range_inclusive_usize(0, self.config.max_relationships);
            for _ in 0..rel_count {
                let source = crate::graph::NodeId(self.rng.range_usize(0, node_count) as u32);
                let target = crate::graph::NodeId(self.rng.range_usize(0, node_count) as u32);
                let label_index = self.rng.range_usize(0, self.config.relationship_labels.len());
                let label = self.config.relationship_labels[label_index].clone();
                let properties = self.sample_properties();
                graph.add_relationship(label, source, target, properties);
            }
        }
        graph
    }

    /// Generates a sequence of `count` random graphs.
    pub fn generate_many(&mut self, count: usize) -> Vec<PropertyGraph> {
        (0..count).map(|_| self.generate()).collect()
    }

    fn sample_labels(&mut self) -> Vec<String> {
        let count = self.rng.range_inclusive_usize(0, 2);
        (0..count)
            .map(|_| {
                let index = self.rng.range_usize(0, self.config.node_labels.len());
                self.config.node_labels[index].clone()
            })
            .collect()
    }

    fn sample_properties(&mut self) -> Vec<(String, Value)> {
        let count = self.rng.range_inclusive_usize(0, 3);
        (0..count)
            .map(|_| {
                let index = self.rng.range_usize(0, self.config.property_keys.len());
                let key = self.config.property_keys[index].clone();
                let value = match self.rng.range_usize(0, 5) {
                    0 => Value::Integer(
                        self.rng.range_inclusive_i64(-self.config.max_int, self.config.max_int),
                    ),
                    1 => Value::String(
                        ["Alice", "Bob", "x", "y"][self.rng.range_usize(0, 4)].to_string(),
                    ),
                    2 => Value::Boolean(self.rng.chance(0.5)),
                    3 if !self.config.int_pool.is_empty()
                        || !self.config.string_pool.is_empty() =>
                    {
                        // Sample a value from the query-derived pools so that
                        // predicates over query constants can actually match.
                        let ints = self.config.int_pool.len();
                        let total = ints + self.config.string_pool.len();
                        let pick = self.rng.range_usize(0, total);
                        if pick < ints {
                            Value::Integer(self.config.int_pool[pick])
                        } else {
                            Value::String(self.config.string_pool[pick - ints].clone())
                        }
                    }
                    _ => Value::Integer(self.rng.range_inclusive_i64(0, self.config.max_int)),
                };
                (key, value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<_> = GraphGenerator::new(42).generate_many(5);
        let b: Vec<_> = GraphGenerator::new(42).generate_many(5);
        assert_eq!(a, b);
        let c: Vec<_> = GraphGenerator::new(43).generate_many(5);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_graphs_respect_bounds() {
        let mut generator = GraphGenerator::new(7);
        for graph in generator.generate_many(50) {
            assert!(graph.node_count() <= 6);
            assert!(graph.relationship_count() <= 10);
            if graph.node_count() == 0 {
                assert_eq!(graph.relationship_count(), 0);
            }
        }
    }

    #[test]
    fn generated_relationships_reference_valid_nodes() {
        let mut generator = GraphGenerator::new(11);
        for graph in generator.generate_many(50) {
            for id in graph.relationship_ids() {
                let rel = graph.relationship(id);
                assert!((rel.source.0 as usize) < graph.node_count());
                assert!((rel.target.0 as usize) < graph.node_count());
            }
        }
    }
}
