//! The certificate data model and its JSON wire format.
//!
//! The checker crate owns the schema: the prover emits certificates by
//! encoding into this exact format, and any divergence is a checker rejection
//! rather than a silent skew. The encoding is deliberately exact — integers
//! ride as JSON numbers within `i64`, floats as tagged `{"f": "<repr>"}`
//! strings using Rust's round-tripping `{:?}` representation (see
//! [`crate::json`]).

use crate::graph::{Graph, NodeData, RelData};
use crate::gx::{AggKind, CmpOp, Gx, GxAtom, GxConst, GxTerm, VarId};
use crate::json::{self, Json};
use crate::value::{NodeId, RelId, Value};
use std::collections::BTreeMap;

/// The schema version this crate reads and writes.
///
/// Version 2 added the `signature_mismatch` evidence kind (stage-⓪ inferred
/// output signatures alongside the concrete witness).
pub const CERTIFICATE_VERSION: i64 = 2;

/// The verdict a certificate attests to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertVerdict {
    /// The two queries are equivalent on all graphs.
    Equivalent,
    /// The two queries differ on the embedded counterexample graph.
    NotEquivalent,
}

impl CertVerdict {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CertVerdict::Equivalent => "equivalent",
            CertVerdict::NotEquivalent => "not_equivalent",
        }
    }
}

/// One recorded normalization step (rule ① – ⑥ of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationStep {
    /// Stable rule identifier (see [`crate::rules::rule_names`]).
    pub rule: String,
    /// Index of the first union part the step changed.
    pub part: usize,
    /// Index of the first clause changed inside that part.
    pub clause: usize,
    /// Pretty-printed query after the step.
    pub after: String,
}

/// Per-query attestation: source text plus the full normalization derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCert {
    /// The original query, pretty-printed after parsing.
    pub source: String,
    /// Every rule application of the normalization fixpoint, in order.
    pub steps: Vec<DerivationStep>,
    /// The pretty-printed normalized query (must equal the final step).
    pub normalized: String,
}

/// One summand kept after zero-pruning, with its simplification record.
#[derive(Debug, Clone, PartialEq)]
pub struct KeptSummand {
    /// Index into the original summand list of this side.
    pub index: usize,
    /// Atoms removed as SMT-implied by the remaining factors (in removal
    /// order). Their implication is a trusted obligation; their *removal*
    /// is structurally re-checked.
    pub removed_atoms: Vec<Gx>,
    /// The simplified summand the matching operates on.
    pub result: Gx,
}

/// One side's summand accounting inside a [`SummandsProof`].
#[derive(Debug, Clone, PartialEq)]
pub struct SideSummands {
    /// Total number of summands before pruning.
    pub total: usize,
    /// Indices pruned as SMT-unsatisfiable (trusted obligations).
    pub zero_pruned: Vec<usize>,
    /// The summands that survived, with their simplification records.
    pub kept: Vec<KeptSummand>,
}

/// How the kept summands of the two sides were matched.
#[derive(Debug, Clone, PartialEq)]
pub enum Matching {
    /// A one-to-one pairing `(left kept index, right kept index)` unifiable
    /// under a single shared variable renaming, applied in order.
    Bijection(Vec<(usize, usize)>),
    /// Isomorphism-class counting: each kept summand is assigned to a
    /// representative class; equivalence holds because the per-class counts
    /// agree on both sides.
    Classes {
        /// Class representative expressions.
        representatives: Vec<Gx>,
        /// Class index of each left kept summand.
        left_assign: Vec<usize>,
        /// Class index of each right kept summand.
        right_assign: Vec<usize>,
        /// Recorded per-class summand counts on the left.
        left_counts: Vec<usize>,
        /// Recorded per-class summand counts on the right.
        right_counts: Vec<usize>,
    },
}

/// The summand-level proof of one squash-peeled level.
#[derive(Debug, Clone, PartialEq)]
pub struct SummandsProof {
    /// Left side accounting.
    pub left: SideSummands,
    /// Right side accounting.
    pub right: SideSummands,
    /// The matching establishing bag equality of the kept summands.
    pub matching: Matching,
}

/// Proof that a segment's two G-expressions denote the same bag.
#[derive(Debug, Clone, PartialEq)]
pub enum Proof {
    /// The two trees are structurally identical after normalization.
    Identical,
    /// Both sides are squashes; equality follows from the bodies' equality.
    Peel(Box<Proof>),
    /// Summand decomposition, simplification and matching.
    Summands(Box<SummandsProof>),
}

/// The witness for one divide-and-conquer segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentWitness {
    /// Normalized G-expression tree of the left segment.
    pub left: Gx,
    /// Normalized G-expression tree of the right segment.
    pub right: Gx,
    /// The proof relating them.
    pub proof: Proof,
}

/// A serialized counterexample graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphCert {
    /// Nodes in id order.
    pub nodes: Vec<NodeData>,
    /// Relationships in id order.
    pub relationships: Vec<RelData>,
}

impl GraphCert {
    /// Materializes the certificate graph into an evaluable [`Graph`].
    pub fn build(&self) -> Result<Graph, String> {
        let mut graph = Graph::new();
        for node in &self.nodes {
            graph.add_node(node.clone());
        }
        for rel in &self.relationships {
            graph.add_relationship(rel.clone())?;
        }
        Ok(graph)
    }
}

/// One column of a stage-⓪ inferred output signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigColumn {
    /// Column name (alias or textual form of the projected expression).
    pub name: String,
    /// Stable type-lattice name (`"Integer"`, `"Node"`, `"Any"`, …) as
    /// parsed by [`crate::sig::SigType::from_name`].
    pub ty: String,
    /// Whether the column can evaluate to `NULL` on some graph.
    pub nullable: bool,
}

/// Verdict-specific evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum Evidence {
    /// EQUIVALENT: per-segment tree witnesses under a column permutation.
    Equivalence {
        /// The permutation applied to the right query's `RETURN` items
        /// (`column_permutation[i]` is the right column placed at position
        /// `i`). Identity when no reordering was needed.
        column_permutation: Vec<usize>,
        /// Pretty-printed right query after applying the permutation; absent
        /// when the permutation is the identity.
        permuted_right: Option<String>,
        /// One witness per divide-and-conquer segment.
        segments: Vec<SegmentWitness>,
    },
    /// NOT_EQUIVALENT: a concrete graph on which the result bags differ.
    Counterexample {
        /// The distinguishing property graph.
        graph: GraphCert,
        /// Index of the graph in the prover's deterministic search pools
        /// (provenance only; the checker re-evaluates regardless).
        pool_index: usize,
        /// Column names the left query produced.
        left_columns: Vec<String>,
        /// The left result bag, in production order.
        left_rows: Vec<Vec<Value>>,
        /// Column names the right query produced.
        right_columns: Vec<String>,
        /// The right result bag, in production order.
        right_rows: Vec<Vec<Value>>,
    },
    /// NOT_EQUIVALENT found via the stage-⓪ signature-discrimination fast
    /// path: the inferred output signatures admit no type-compatible column
    /// bijection, **and** a concrete witness graph confirms the separation.
    /// The checker re-infers both signatures from the source queries,
    /// re-checks the discrimination, and re-evaluates the witness — the
    /// signatures alone never validate a verdict.
    SignatureMismatch {
        /// The left query's inferred output signature.
        left_signature: Vec<SigColumn>,
        /// The right query's inferred output signature.
        right_signature: Vec<SigColumn>,
        /// The distinguishing property graph.
        graph: GraphCert,
        /// Index of the graph in the prover's deterministic search pools.
        pool_index: usize,
        /// Column names the left query produced.
        left_columns: Vec<String>,
        /// The left result bag, in production order.
        left_rows: Vec<Vec<Value>>,
        /// Column names the right query produced.
        right_columns: Vec<String>,
        /// The right result bag, in production order.
        right_rows: Vec<Vec<Value>>,
    },
}

/// A complete, self-contained proof certificate for one query pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Schema version (currently [`CERTIFICATE_VERSION`]).
    pub version: i64,
    /// The verdict attested.
    pub verdict: CertVerdict,
    /// Left query attestation.
    pub left: QueryCert,
    /// Right query attestation.
    pub right: QueryCert,
    /// Verdict-specific evidence.
    pub evidence: Evidence,
}

impl Certificate {
    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        encode_certificate(self).to_string()
    }

    /// Parses a certificate from its JSON serialization.
    pub fn from_json(text: &str) -> Result<Certificate, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        decode_certificate(&doc)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn usize_json(n: usize) -> Json {
    Json::Int(n as i64)
}

fn usize_arr(items: &[usize]) -> Json {
    Json::Arr(items.iter().map(|&n| usize_json(n)).collect())
}

fn encode_certificate(cert: &Certificate) -> Json {
    obj(vec![
        ("version", Json::Int(cert.version)),
        ("verdict", Json::str(cert.verdict.name())),
        ("left", encode_query_cert(&cert.left)),
        ("right", encode_query_cert(&cert.right)),
        ("evidence", encode_evidence(&cert.evidence)),
    ])
}

fn encode_query_cert(q: &QueryCert) -> Json {
    obj(vec![
        ("source", Json::str(&q.source)),
        (
            "steps",
            Json::Arr(
                q.steps
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("rule", Json::str(&s.rule)),
                            ("part", usize_json(s.part)),
                            ("clause", usize_json(s.clause)),
                            ("after", Json::str(&s.after)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("normalized", Json::str(&q.normalized)),
    ])
}

fn encode_evidence(evidence: &Evidence) -> Json {
    match evidence {
        Evidence::Equivalence { column_permutation, permuted_right, segments } => obj(vec![
            ("type", Json::str("equivalence")),
            ("column_permutation", usize_arr(column_permutation)),
            (
                "permuted_right",
                match permuted_right {
                    Some(text) => Json::str(text),
                    None => Json::Null,
                },
            ),
            (
                "segments",
                Json::Arr(
                    segments
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("left", encode_gx(&s.left)),
                                ("right", encode_gx(&s.right)),
                                ("proof", encode_proof(&s.proof)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Evidence::Counterexample {
            graph,
            pool_index,
            left_columns,
            left_rows,
            right_columns,
            right_rows,
        } => obj(vec![
            ("type", Json::str("counterexample")),
            ("graph", encode_graph(graph)),
            ("pool_index", usize_json(*pool_index)),
            ("left_columns", Json::Arr(left_columns.iter().map(Json::str).collect())),
            ("left_rows", encode_rows(left_rows)),
            ("right_columns", Json::Arr(right_columns.iter().map(Json::str).collect())),
            ("right_rows", encode_rows(right_rows)),
        ]),
        Evidence::SignatureMismatch {
            left_signature,
            right_signature,
            graph,
            pool_index,
            left_columns,
            left_rows,
            right_columns,
            right_rows,
        } => obj(vec![
            ("type", Json::str("signature_mismatch")),
            ("left_signature", encode_signature(left_signature)),
            ("right_signature", encode_signature(right_signature)),
            ("graph", encode_graph(graph)),
            ("pool_index", usize_json(*pool_index)),
            ("left_columns", Json::Arr(left_columns.iter().map(Json::str).collect())),
            ("left_rows", encode_rows(left_rows)),
            ("right_columns", Json::Arr(right_columns.iter().map(Json::str).collect())),
            ("right_rows", encode_rows(right_rows)),
        ]),
    }
}

fn encode_signature(signature: &[SigColumn]) -> Json {
    Json::Arr(
        signature
            .iter()
            .map(|column| {
                obj(vec![
                    ("name", Json::str(&column.name)),
                    ("ty", Json::str(&column.ty)),
                    ("nullable", Json::Bool(column.nullable)),
                ])
            })
            .collect(),
    )
}

fn encode_rows(rows: &[Vec<Value>]) -> Json {
    Json::Arr(rows.iter().map(|row| Json::Arr(row.iter().map(encode_value).collect())).collect())
}

fn encode_graph(graph: &GraphCert) -> Json {
    obj(vec![
        (
            "nodes",
            Json::Arr(
                graph
                    .nodes
                    .iter()
                    .map(|n| {
                        obj(vec![
                            ("labels", Json::Arr(n.labels.iter().map(Json::str).collect())),
                            ("properties", encode_properties(&n.properties)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "relationships",
            Json::Arr(
                graph
                    .relationships
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("label", Json::str(&r.label)),
                            ("source", Json::Int(r.source.0 as i64)),
                            ("target", Json::Int(r.target.0 as i64)),
                            ("properties", encode_properties(&r.properties)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn encode_properties(props: &BTreeMap<String, Value>) -> Json {
    Json::Obj(props.iter().map(|(k, v)| (k.clone(), encode_value(v))).collect())
}

/// Encodes a runtime value. Floats become `{"f": "<repr>"}` with Rust's
/// round-tripping `{:?}` representation; maps are wrapped as `{"m": {...}}`
/// so they cannot collide with the tagged forms.
pub fn encode_value(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Boolean(b) => Json::Bool(*b),
        Value::Integer(i) => Json::Int(*i),
        Value::Float(f) => obj(vec![("f", Json::str(format!("{f:?}")))]),
        Value::String(s) => Json::str(s),
        Value::List(items) => Json::Arr(items.iter().map(encode_value).collect()),
        Value::Map(map) => obj(vec![(
            "m",
            Json::Obj(map.iter().map(|(k, v)| (k.clone(), encode_value(v))).collect()),
        )]),
        Value::Node(id) => obj(vec![("n", Json::Int(id.0 as i64))]),
        Value::Relationship(id) => obj(vec![("r", Json::Int(id.0 as i64))]),
        Value::Path(items) => obj(vec![("p", Json::Arr(items.iter().map(encode_value).collect()))]),
    }
}

fn encode_proof(proof: &Proof) -> Json {
    match proof {
        Proof::Identical => Json::Arr(vec![Json::str("identical")]),
        Proof::Peel(inner) => Json::Arr(vec![Json::str("peel"), encode_proof(inner)]),
        Proof::Summands(sp) => Json::Arr(vec![
            Json::str("summands"),
            obj(vec![
                ("left", encode_side(&sp.left)),
                ("right", encode_side(&sp.right)),
                ("matching", encode_matching(&sp.matching)),
            ]),
        ]),
    }
}

fn encode_side(side: &SideSummands) -> Json {
    obj(vec![
        ("total", usize_json(side.total)),
        ("zero_pruned", usize_arr(&side.zero_pruned)),
        (
            "kept",
            Json::Arr(
                side.kept
                    .iter()
                    .map(|k| {
                        obj(vec![
                            ("index", usize_json(k.index)),
                            (
                                "removed_atoms",
                                Json::Arr(k.removed_atoms.iter().map(encode_gx).collect()),
                            ),
                            ("result", encode_gx(&k.result)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn encode_matching(matching: &Matching) -> Json {
    match matching {
        Matching::Bijection(pairs) => obj(vec![(
            "bijection",
            Json::Arr(
                pairs
                    .iter()
                    .map(|(l, r)| Json::Arr(vec![usize_json(*l), usize_json(*r)]))
                    .collect(),
            ),
        )]),
        Matching::Classes {
            representatives,
            left_assign,
            right_assign,
            left_counts,
            right_counts,
        } => obj(vec![(
            "classes",
            obj(vec![
                ("representatives", Json::Arr(representatives.iter().map(encode_gx).collect())),
                ("left_assign", usize_arr(left_assign)),
                ("right_assign", usize_arr(right_assign)),
                ("left_counts", usize_arr(left_counts)),
                ("right_counts", usize_arr(right_counts)),
            ]),
        )]),
    }
}

/// Encodes a G-expression as a tagged array.
pub fn encode_gx(gx: &Gx) -> Json {
    let tag = |name: &str, mut rest: Vec<Json>| {
        let mut items = vec![Json::str(name)];
        items.append(&mut rest);
        Json::Arr(items)
    };
    match gx {
        Gx::Zero => tag("zero", vec![]),
        Gx::One => tag("one", vec![]),
        Gx::Const(n) => tag("const", vec![Json::Int(*n as i64)]),
        Gx::Atom(atom) => tag("atom", vec![encode_atom(atom)]),
        Gx::NodeFn(t) => tag("nodefn", vec![encode_term(t)]),
        Gx::RelFn(t) => tag("relfn", vec![encode_term(t)]),
        Gx::LabFn(t, label) => tag("labfn", vec![encode_term(t), Json::str(label)]),
        Gx::Unbounded(t) => tag("unbounded", vec![encode_term(t)]),
        Gx::Mul(items) => tag("mul", vec![Json::Arr(items.iter().map(encode_gx).collect())]),
        Gx::Add(items) => tag("add", vec![Json::Arr(items.iter().map(encode_gx).collect())]),
        Gx::Squash(inner) => tag("squash", vec![encode_gx(inner)]),
        Gx::Not(inner) => tag("not", vec![encode_gx(inner)]),
        Gx::Sum { vars, body } => tag(
            "sum",
            vec![Json::Arr(vars.iter().map(|v| Json::Int(v.0 as i64)).collect()), encode_gx(body)],
        ),
    }
}

fn encode_atom(atom: &GxAtom) -> Json {
    match atom {
        GxAtom::Cmp(op, a, b) => {
            Json::Arr(vec![Json::str("cmp"), Json::str(op.name()), encode_term(a), encode_term(b)])
        }
        GxAtom::IsNull(t, negated) => {
            Json::Arr(vec![Json::str("isnull"), encode_term(t), Json::Bool(*negated)])
        }
        GxAtom::Pred(name, args) => Json::Arr(vec![
            Json::str("pred"),
            Json::str(name),
            Json::Arr(args.iter().map(encode_term).collect()),
        ]),
    }
}

fn encode_term(term: &GxTerm) -> Json {
    match term {
        GxTerm::Var(v) => Json::Arr(vec![Json::str("var"), Json::Int(v.0 as i64)]),
        GxTerm::OutCol(i) => Json::Arr(vec![Json::str("outcol"), usize_json(*i)]),
        GxTerm::Prop(base, key) => {
            Json::Arr(vec![Json::str("prop"), encode_term(base), Json::str(key)])
        }
        GxTerm::Const(c) => Json::Arr(vec![Json::str("const"), encode_const(c)]),
        GxTerm::App(name, args) => Json::Arr(vec![
            Json::str("app"),
            Json::str(name),
            Json::Arr(args.iter().map(encode_term).collect()),
        ]),
        GxTerm::Agg { kind, distinct, arg, group } => Json::Arr(vec![
            Json::str("agg"),
            Json::str(kind.name()),
            Json::Bool(*distinct),
            encode_term(arg),
            encode_gx(group),
        ]),
    }
}

fn encode_const(c: &GxConst) -> Json {
    match c {
        GxConst::Integer(i) => Json::Int(*i),
        GxConst::Float(f) => obj(vec![("f", Json::str(format!("{f:?}")))]),
        GxConst::String(s) => Json::str(s),
        GxConst::Boolean(b) => Json::Bool(*b),
        GxConst::Null => Json::Null,
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn dec_str(doc: &Json, what: &str) -> Result<String, String> {
    doc.as_str().map(str::to_string).ok_or_else(|| format!("{what}: expected a string"))
}

fn dec_usize(doc: &Json, what: &str) -> Result<usize, String> {
    match doc.as_int() {
        Some(n) if n >= 0 => Ok(n as usize),
        _ => Err(format!("{what}: expected a non-negative integer")),
    }
}

fn dec_usize_arr(doc: &Json, what: &str) -> Result<Vec<usize>, String> {
    doc.as_array()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|item| dec_usize(item, what))
        .collect()
}

fn decode_certificate(doc: &Json) -> Result<Certificate, String> {
    let version = field(doc, "version")?.as_int().ok_or("version: expected an integer")?;
    if version != CERTIFICATE_VERSION {
        return Err(format!("unsupported certificate version {version}"));
    }
    let verdict = match field(doc, "verdict")?.as_str() {
        Some("equivalent") => CertVerdict::Equivalent,
        Some("not_equivalent") => CertVerdict::NotEquivalent,
        other => return Err(format!("unknown verdict {other:?}")),
    };
    Ok(Certificate {
        version,
        verdict,
        left: decode_query_cert(field(doc, "left")?)?,
        right: decode_query_cert(field(doc, "right")?)?,
        evidence: decode_evidence(field(doc, "evidence")?)?,
    })
}

fn decode_query_cert(doc: &Json) -> Result<QueryCert, String> {
    let steps = field(doc, "steps")?
        .as_array()
        .ok_or("steps: expected an array")?
        .iter()
        .map(|step| {
            Ok(DerivationStep {
                rule: dec_str(field(step, "rule")?, "rule")?,
                part: dec_usize(field(step, "part")?, "part")?,
                clause: dec_usize(field(step, "clause")?, "clause")?,
                after: dec_str(field(step, "after")?, "after")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(QueryCert {
        source: dec_str(field(doc, "source")?, "source")?,
        steps,
        normalized: dec_str(field(doc, "normalized")?, "normalized")?,
    })
}

fn decode_evidence(doc: &Json) -> Result<Evidence, String> {
    match field(doc, "type")?.as_str() {
        Some("equivalence") => {
            let permuted_right = match field(doc, "permuted_right")? {
                Json::Null => None,
                other => Some(dec_str(other, "permuted_right")?),
            };
            let segments = field(doc, "segments")?
                .as_array()
                .ok_or("segments: expected an array")?
                .iter()
                .map(|seg| {
                    Ok(SegmentWitness {
                        left: decode_gx(field(seg, "left")?)?,
                        right: decode_gx(field(seg, "right")?)?,
                        proof: decode_proof(field(seg, "proof")?)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Evidence::Equivalence {
                column_permutation: dec_usize_arr(
                    field(doc, "column_permutation")?,
                    "column_permutation",
                )?,
                permuted_right,
                segments,
            })
        }
        Some("counterexample") => Ok(Evidence::Counterexample {
            graph: decode_graph(field(doc, "graph")?)?,
            pool_index: dec_usize(field(doc, "pool_index")?, "pool_index")?,
            left_columns: decode_columns(field(doc, "left_columns")?)?,
            left_rows: decode_rows(field(doc, "left_rows")?)?,
            right_columns: decode_columns(field(doc, "right_columns")?)?,
            right_rows: decode_rows(field(doc, "right_rows")?)?,
        }),
        Some("signature_mismatch") => Ok(Evidence::SignatureMismatch {
            left_signature: decode_signature(field(doc, "left_signature")?)?,
            right_signature: decode_signature(field(doc, "right_signature")?)?,
            graph: decode_graph(field(doc, "graph")?)?,
            pool_index: dec_usize(field(doc, "pool_index")?, "pool_index")?,
            left_columns: decode_columns(field(doc, "left_columns")?)?,
            left_rows: decode_rows(field(doc, "left_rows")?)?,
            right_columns: decode_columns(field(doc, "right_columns")?)?,
            right_rows: decode_rows(field(doc, "right_rows")?)?,
        }),
        other => Err(format!("unknown evidence type {other:?}")),
    }
}

fn decode_signature(doc: &Json) -> Result<Vec<SigColumn>, String> {
    doc.as_array()
        .ok_or("signature: expected an array")?
        .iter()
        .map(|column| {
            Ok(SigColumn {
                name: dec_str(field(column, "name")?, "name")?,
                ty: dec_str(field(column, "ty")?, "ty")?,
                nullable: match field(column, "nullable")? {
                    Json::Bool(b) => *b,
                    _ => return Err("nullable: expected a boolean".to_string()),
                },
            })
        })
        .collect()
}

fn decode_columns(doc: &Json) -> Result<Vec<String>, String> {
    doc.as_array()
        .ok_or("columns: expected an array")?
        .iter()
        .map(|c| dec_str(c, "column"))
        .collect()
}

fn decode_rows(doc: &Json) -> Result<Vec<Vec<Value>>, String> {
    doc.as_array()
        .ok_or("rows: expected an array")?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| "row: expected an array".to_string())?
                .iter()
                .map(decode_value)
                .collect()
        })
        .collect()
}

fn decode_graph(doc: &Json) -> Result<GraphCert, String> {
    let nodes = field(doc, "nodes")?
        .as_array()
        .ok_or("nodes: expected an array")?
        .iter()
        .map(|n| {
            let labels = field(n, "labels")?
                .as_array()
                .ok_or("labels: expected an array")?
                .iter()
                .map(|l| dec_str(l, "label"))
                .collect::<Result<_, String>>()?;
            Ok(NodeData { labels, properties: decode_properties(field(n, "properties")?)? })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let relationships = field(doc, "relationships")?
        .as_array()
        .ok_or("relationships: expected an array")?
        .iter()
        .map(|r| {
            Ok(RelData {
                label: dec_str(field(r, "label")?, "label")?,
                source: NodeId(dec_usize(field(r, "source")?, "source")? as u32),
                target: NodeId(dec_usize(field(r, "target")?, "target")? as u32),
                properties: decode_properties(field(r, "properties")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(GraphCert { nodes, relationships })
}

fn decode_properties(doc: &Json) -> Result<BTreeMap<String, Value>, String> {
    doc.as_object()
        .ok_or("properties: expected an object")?
        .iter()
        .map(|(k, v)| Ok((k.clone(), decode_value(v)?)))
        .collect()
}

/// Decodes a runtime value from its certificate encoding.
pub fn decode_value(doc: &Json) -> Result<Value, String> {
    match doc {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Boolean(*b)),
        Json::Int(i) => Ok(Value::Integer(*i)),
        Json::Str(s) => Ok(Value::String(s.clone())),
        Json::Arr(items) => {
            Ok(Value::List(items.iter().map(decode_value).collect::<Result<_, _>>()?))
        }
        Json::Obj(members) => {
            let [(tag, payload)] = members.as_slice() else {
                return Err("tagged value: expected a single-member object".to_string());
            };
            match tag.as_str() {
                "f" => decode_float(payload).map(Value::Float),
                "m" => Ok(Value::Map(decode_properties(payload)?)),
                "n" => Ok(Value::Node(NodeId(dec_usize(payload, "node id")? as u32))),
                "r" => {
                    Ok(Value::Relationship(RelId(dec_usize(payload, "relationship id")? as u32)))
                }
                "p" => {
                    let items = payload
                        .as_array()
                        .ok_or("path: expected an array")?
                        .iter()
                        .map(decode_value)
                        .collect::<Result<_, _>>()?;
                    Ok(Value::Path(items))
                }
                other => Err(format!("unknown value tag `{other}`")),
            }
        }
    }
}

fn decode_float(doc: &Json) -> Result<f64, String> {
    let text = doc.as_str().ok_or("float: expected a string repr")?;
    text.parse::<f64>().map_err(|_| format!("float: invalid repr `{text}`"))
}

fn decode_proof(doc: &Json) -> Result<Proof, String> {
    let items = doc.as_array().ok_or("proof: expected an array")?;
    match items.first().and_then(Json::as_str) {
        Some("identical") => Ok(Proof::Identical),
        Some("peel") => {
            let inner = items.get(1).ok_or("peel: missing inner proof")?;
            Ok(Proof::Peel(Box::new(decode_proof(inner)?)))
        }
        Some("summands") => {
            let body = items.get(1).ok_or("summands: missing body")?;
            Ok(Proof::Summands(Box::new(SummandsProof {
                left: decode_side(field(body, "left")?)?,
                right: decode_side(field(body, "right")?)?,
                matching: decode_matching(field(body, "matching")?)?,
            })))
        }
        other => Err(format!("unknown proof tag {other:?}")),
    }
}

fn decode_side(doc: &Json) -> Result<SideSummands, String> {
    let kept = field(doc, "kept")?
        .as_array()
        .ok_or("kept: expected an array")?
        .iter()
        .map(|k| {
            let removed_atoms = field(k, "removed_atoms")?
                .as_array()
                .ok_or("removed_atoms: expected an array")?
                .iter()
                .map(decode_gx)
                .collect::<Result<_, String>>()?;
            Ok(KeptSummand {
                index: dec_usize(field(k, "index")?, "index")?,
                removed_atoms,
                result: decode_gx(field(k, "result")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SideSummands {
        total: dec_usize(field(doc, "total")?, "total")?,
        zero_pruned: dec_usize_arr(field(doc, "zero_pruned")?, "zero_pruned")?,
        kept,
    })
}

fn decode_matching(doc: &Json) -> Result<Matching, String> {
    if let Some(pairs) = doc.get("bijection") {
        let pairs = pairs
            .as_array()
            .ok_or("bijection: expected an array")?
            .iter()
            .map(|pair| {
                let items = pair.as_array().ok_or("pair: expected an array")?;
                let [l, r] = items else {
                    return Err("pair: expected two elements".to_string());
                };
                Ok((dec_usize(l, "pair")?, dec_usize(r, "pair")?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        return Ok(Matching::Bijection(pairs));
    }
    if let Some(classes) = doc.get("classes") {
        let representatives = field(classes, "representatives")?
            .as_array()
            .ok_or("representatives: expected an array")?
            .iter()
            .map(decode_gx)
            .collect::<Result<_, String>>()?;
        return Ok(Matching::Classes {
            representatives,
            left_assign: dec_usize_arr(field(classes, "left_assign")?, "left_assign")?,
            right_assign: dec_usize_arr(field(classes, "right_assign")?, "right_assign")?,
            left_counts: dec_usize_arr(field(classes, "left_counts")?, "left_counts")?,
            right_counts: dec_usize_arr(field(classes, "right_counts")?, "right_counts")?,
        });
    }
    Err("matching: expected `bijection` or `classes`".to_string())
}

/// Decodes a G-expression from its tagged-array encoding.
pub fn decode_gx(doc: &Json) -> Result<Gx, String> {
    let items = doc.as_array().ok_or("gx: expected an array")?;
    let tag = items.first().and_then(Json::as_str).ok_or("gx: missing tag")?;
    let arg = |i: usize| -> Result<&Json, String> {
        items.get(i).ok_or_else(|| format!("gx `{tag}`: missing operand {i}"))
    };
    match tag {
        "zero" => Ok(Gx::Zero),
        "one" => Ok(Gx::One),
        "const" => {
            let n = dec_usize(arg(1)?, "const")?;
            Ok(Gx::Const(n as u64))
        }
        "atom" => Ok(Gx::Atom(decode_atom(arg(1)?)?)),
        "nodefn" => Ok(Gx::NodeFn(decode_term(arg(1)?)?)),
        "relfn" => Ok(Gx::RelFn(decode_term(arg(1)?)?)),
        "labfn" => Ok(Gx::LabFn(decode_term(arg(1)?)?, dec_str(arg(2)?, "labfn label")?)),
        "unbounded" => Ok(Gx::Unbounded(decode_term(arg(1)?)?)),
        "mul" => Ok(Gx::Mul(decode_gx_list(arg(1)?)?)),
        "add" => Ok(Gx::Add(decode_gx_list(arg(1)?)?)),
        "squash" => Ok(Gx::Squash(Box::new(decode_gx(arg(1)?)?))),
        "not" => Ok(Gx::Not(Box::new(decode_gx(arg(1)?)?))),
        "sum" => {
            let vars = arg(1)?
                .as_array()
                .ok_or("sum vars: expected an array")?
                .iter()
                .map(|v| Ok(VarId(dec_usize(v, "var id")? as u32)))
                .collect::<Result<_, String>>()?;
            Ok(Gx::Sum { vars, body: Box::new(decode_gx(arg(2)?)?) })
        }
        other => Err(format!("unknown gx tag `{other}`")),
    }
}

fn decode_gx_list(doc: &Json) -> Result<Vec<Gx>, String> {
    doc.as_array().ok_or("gx list: expected an array")?.iter().map(decode_gx).collect()
}

fn decode_atom(doc: &Json) -> Result<GxAtom, String> {
    let items = doc.as_array().ok_or("atom: expected an array")?;
    let tag = items.first().and_then(Json::as_str).ok_or("atom: missing tag")?;
    let arg = |i: usize| -> Result<&Json, String> {
        items.get(i).ok_or_else(|| format!("atom `{tag}`: missing operand {i}"))
    };
    match tag {
        "cmp" => {
            let op =
                CmpOp::from_name(arg(1)?.as_str().unwrap_or("")).ok_or("cmp: unknown operator")?;
            Ok(GxAtom::Cmp(op, decode_term(arg(2)?)?, decode_term(arg(3)?)?))
        }
        "isnull" => Ok(GxAtom::IsNull(
            decode_term(arg(1)?)?,
            arg(2)?.as_bool().ok_or("isnull: expected a bool")?,
        )),
        "pred" => {
            let args = arg(2)?
                .as_array()
                .ok_or("pred args: expected an array")?
                .iter()
                .map(decode_term)
                .collect::<Result<_, String>>()?;
            Ok(GxAtom::Pred(dec_str(arg(1)?, "pred name")?, args))
        }
        other => Err(format!("unknown atom tag `{other}`")),
    }
}

fn decode_term(doc: &Json) -> Result<GxTerm, String> {
    let items = doc.as_array().ok_or("term: expected an array")?;
    let tag = items.first().and_then(Json::as_str).ok_or("term: missing tag")?;
    let arg = |i: usize| -> Result<&Json, String> {
        items.get(i).ok_or_else(|| format!("term `{tag}`: missing operand {i}"))
    };
    match tag {
        "var" => Ok(GxTerm::Var(VarId(dec_usize(arg(1)?, "var id")? as u32))),
        "outcol" => Ok(GxTerm::OutCol(dec_usize(arg(1)?, "outcol")?)),
        "prop" => Ok(GxTerm::Prop(Box::new(decode_term(arg(1)?)?), dec_str(arg(2)?, "prop key")?)),
        "const" => Ok(GxTerm::Const(decode_gconst(arg(1)?)?)),
        "app" => {
            let args = arg(2)?
                .as_array()
                .ok_or("app args: expected an array")?
                .iter()
                .map(decode_term)
                .collect::<Result<_, String>>()?;
            Ok(GxTerm::App(dec_str(arg(1)?, "app name")?, args))
        }
        "agg" => {
            let kind =
                AggKind::from_name(arg(1)?.as_str().unwrap_or("")).ok_or("agg: unknown kind")?;
            Ok(GxTerm::Agg {
                kind,
                distinct: arg(2)?.as_bool().ok_or("agg: expected a bool")?,
                arg: Box::new(decode_term(arg(3)?)?),
                group: Box::new(decode_gx(arg(4)?)?),
            })
        }
        other => Err(format!("unknown term tag `{other}`")),
    }
}

fn decode_gconst(doc: &Json) -> Result<GxConst, String> {
    match doc {
        Json::Null => Ok(GxConst::Null),
        Json::Bool(b) => Ok(GxConst::Boolean(*b)),
        Json::Int(i) => Ok(GxConst::Integer(*i)),
        Json::Str(s) => Ok(GxConst::String(s.clone())),
        Json::Obj(members) => match members.as_slice() {
            [(tag, payload)] if tag == "f" => decode_float(payload).map(GxConst::Float),
            _ => Err("const: expected a float tag object".to_string()),
        },
        _ => Err("const: unsupported shape".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_certificate() -> Certificate {
        let gx = Gx::sum(
            vec![VarId(0)],
            Gx::mul(vec![
                Gx::NodeFn(GxTerm::Var(VarId(0))),
                Gx::Atom(GxAtom::Cmp(
                    CmpOp::Eq,
                    GxTerm::Prop(Box::new(GxTerm::Var(VarId(0))), "age".to_string()),
                    GxTerm::Const(GxConst::Float(1.5)),
                )),
            ]),
        );
        Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::Equivalent,
            left: QueryCert {
                source: "MATCH (a) RETURN a".to_string(),
                steps: vec![DerivationStep {
                    rule: "standardize".to_string(),
                    part: 0,
                    clause: 0,
                    after: "MATCH (n1) RETURN n1".to_string(),
                }],
                normalized: "MATCH (n1) RETURN n1".to_string(),
            },
            right: QueryCert {
                source: "MATCH (n1) RETURN n1".to_string(),
                steps: vec![],
                normalized: "MATCH (n1) RETURN n1".to_string(),
            },
            evidence: Evidence::Equivalence {
                column_permutation: vec![0],
                permuted_right: None,
                segments: vec![SegmentWitness {
                    left: gx.clone(),
                    right: gx,
                    proof: Proof::Peel(Box::new(Proof::Summands(Box::new(SummandsProof {
                        left: SideSummands {
                            total: 2,
                            zero_pruned: vec![1],
                            kept: vec![KeptSummand {
                                index: 0,
                                removed_atoms: vec![],
                                result: Gx::One,
                            }],
                        },
                        right: SideSummands {
                            total: 1,
                            zero_pruned: vec![],
                            kept: vec![KeptSummand {
                                index: 0,
                                removed_atoms: vec![],
                                result: Gx::One,
                            }],
                        },
                        matching: Matching::Bijection(vec![(0, 0)]),
                    })))),
                }],
            },
        }
    }

    #[test]
    fn certificates_round_trip_through_json() {
        let cert = sample_certificate();
        let text = cert.to_json();
        let back = Certificate::from_json(&text).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn counterexample_evidence_round_trips() {
        let mut node = NodeData::default();
        node.labels.insert("Person".to_string());
        node.properties.insert("w".to_string(), Value::Float(-0.0));
        let cert = Certificate {
            version: CERTIFICATE_VERSION,
            verdict: CertVerdict::NotEquivalent,
            left: QueryCert {
                source: "MATCH (a) RETURN a".to_string(),
                steps: vec![],
                normalized: "MATCH (n1) RETURN n1".to_string(),
            },
            right: QueryCert {
                source: "MATCH (b:Person) RETURN b".to_string(),
                steps: vec![],
                normalized: "MATCH (n1:Person) RETURN n1".to_string(),
            },
            evidence: Evidence::Counterexample {
                graph: GraphCert {
                    nodes: vec![node, NodeData::default()],
                    relationships: vec![RelData {
                        label: "KNOWS".to_string(),
                        source: NodeId(0),
                        target: NodeId(1),
                        properties: BTreeMap::new(),
                    }],
                },
                pool_index: 7,
                left_columns: vec!["a".to_string()],
                left_rows: vec![
                    vec![Value::Node(NodeId(0))],
                    vec![Value::List(vec![Value::Null, Value::Integer(i64::MIN)])],
                ],
                right_columns: vec!["b".to_string()],
                right_rows: vec![vec![Value::Node(NodeId(0))]],
            },
        };
        let text = cert.to_json();
        let back = Certificate::from_json(&text).unwrap();
        assert_eq!(back, cert);
        // -0.0 must survive bit-exactly through the tagged float repr.
        let Evidence::Counterexample { graph, .. } = &back.evidence else { panic!() };
        let Value::Float(w) = graph.nodes[0].properties["w"] else { panic!() };
        assert!(w == 0.0 && w.is_sign_negative());
    }

    #[test]
    fn decoding_rejects_malformed_documents() {
        assert!(Certificate::from_json("{}").is_err());
        assert!(Certificate::from_json("{\"version\":2}").is_err());
        let cert = sample_certificate();
        let good = cert.to_json();
        let bad = good.replace("\"equivalent\"", "\"maybe\"");
        assert!(Certificate::from_json(&bad).is_err());
    }
}
