//! A bag-semantics reference evaluator for the supported Cypher fragment.
//!
//! The evaluator is the *oracle* of GraphQE-rs: it is used by property tests
//! to cross-check the prover (two queries proven equivalent must return the
//! same bag of rows on any graph) and by the counterexample search that
//! certifies non-equivalence.

use std::cmp::Ordering;
use std::fmt;

use cypher_parser::ast::{
    Aggregate, Clause, Expr, MatchClause, Projection, ProjectionItems, Query, SingleQuery,
    UnionKind, WithClause,
};

use crate::expr::{eval_expr, eval_predicate, EvalCtx, Row, SymId, SymbolTable};
use crate::graph::PropertyGraph;
use crate::matching::match_clause;
use crate::plan::{match_compiled_clause, QueryPlan};
use crate::value::Value;

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Human readable message.
    pub message: String,
}

impl EvalError {
    /// Creates an evaluation error.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError { message: message.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// The tabular result of a query: named columns and rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names, in `RETURN` order.
    pub columns: Vec<String>,
    /// The result rows, in result order.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// An empty result with no columns.
    pub fn empty() -> Self {
        QueryResult { columns: Vec::new(), rows: Vec::new() }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows sorted by the total value order — the canonical bag
    /// representation used for bag-equality comparison.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    /// Bag equality per Definition 4 of the paper: the results contain the
    /// same tuples with the same multiplicities. Column *names* are ignored
    /// (two equivalent queries may label their columns differently), but the
    /// arity must agree.
    pub fn bag_equal(&self, other: &QueryResult) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.sorted_rows()
            .iter()
            .zip(other.sorted_rows().iter())
            .all(|(a, b)| cmp_rows(a, b) == Ordering::Equal)
    }

    /// Ordered equality: same tuples, multiplicities and order (used when the
    /// outermost clause has an `ORDER BY`).
    pub fn ordered_equal(&self, other: &QueryResult) -> bool {
        if self.columns.len() != other.columns.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows.iter().zip(other.rows.iter()).all(|(a, b)| cmp_rows(a, b) == Ordering::Equal)
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// The evaluator configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluator {
    /// Upper bound on the number of hops explored for unbounded
    /// variable-length patterns (`-[*]->`). Defaults to the number of
    /// relationships in the graph, which is exhaustive because relationships
    /// may not repeat along a path.
    pub max_var_length: Option<u32>,
    /// Use the linear-scan candidate enumeration ([`crate::matching::scan`])
    /// instead of the adjacency index (see [`crate::expr::EvalCtx`]).
    pub scan_matching: bool,
    /// Evaluate with the map-backed row representation instead of flat
    /// interned-symbol rows (see [`crate::expr::Row`]). The two
    /// representations produce identical results; the flag exists for
    /// differential testing and baseline benchmarking, mirroring
    /// `scan_matching`.
    pub map_rows: bool,
    /// Match through the name-resolving AST interpreter
    /// ([`crate::matching`]) instead of the compiled [`crate::plan`] layer.
    /// The two paths produce identical results; the flag exists for
    /// differential testing and baseline benchmarking — the third axis next
    /// to `scan_matching` and `map_rows`.
    pub interpret_patterns: bool,
}

/// A query bound to its [`QueryPlan`] (symbol table + lowered-plan cache):
/// prepare once, evaluate over many graphs. The counterexample search
/// evaluates the same query over a pool of hundreds of graphs; preparing
/// amortizes the AST walk, name interning and clause lowering across the
/// whole pool instead of paying them per graph.
pub struct PreparedQuery<'q> {
    query: &'q Query,
    plan: QueryPlan,
}

impl<'q> PreparedQuery<'q> {
    /// The underlying query.
    pub fn query(&self) -> &'q Query {
        self.query
    }

    /// The plan-time symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        self.plan.symbols()
    }

    /// The query's plan (symbol table + lowering cache).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }
}

impl Evaluator {
    /// Creates an evaluator with default settings.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Plan time: interns every name the query can bind or reference, so
    /// evaluation-time lookups are hash probes over a warm table and row
    /// keys are dense u32 ids; `MATCH` clauses and projections lower to
    /// [`SymId`]-native compiled plans on first application. The result can
    /// be evaluated over any number of graphs with
    /// [`Evaluator::evaluate_prepared`].
    pub fn prepare<'q>(&self, query: &'q Query) -> PreparedQuery<'q> {
        PreparedQuery { query, plan: QueryPlan::new(query) }
    }

    /// Evaluates a prepared query over a property graph.
    pub fn evaluate_prepared(
        &self,
        graph: &PropertyGraph,
        prepared: &PreparedQuery<'_>,
    ) -> Result<QueryResult, EvalError> {
        self.evaluate_planned(graph, prepared.query, &prepared.plan)
    }

    /// Evaluates `query` under an externally owned [`QueryPlan`]. The plan
    /// must come from [`QueryPlan::new`] (or a prior evaluation) over this
    /// exact query instance — plans key on AST node addresses, so a foreign
    /// plan is safe but re-lowers everything.
    pub fn evaluate_planned(
        &self,
        graph: &PropertyGraph,
        query: &Query,
        plan: &QueryPlan,
    ) -> Result<QueryResult, EvalError> {
        let ctx = EvalCtx {
            graph,
            symbols: plan.symbols(),
            max_var_length: self.max_var_length.unwrap_or(graph.relationship_count() as u32),
            scan_matching: self.scan_matching,
            map_rows: self.map_rows,
            plans: if self.interpret_patterns { None } else { Some(plan.plans()) },
        };
        evaluate_union_query(ctx, query, vec![Row::for_ctx(ctx)], true)
    }

    /// Evaluates a query over a property graph (one-shot). Names intern on
    /// demand — the plan-time AST walk of [`Evaluator::prepare`] only pays
    /// off when a prepared query is reused across many graphs, so one-shot
    /// evaluation skips it (clauses still lower on first application).
    pub fn evaluate(&self, graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
        self.evaluate_planned(graph, query, &QueryPlan::empty())
    }
}

/// Convenience function: evaluates `query` on `graph` with default settings.
pub fn evaluate_query(graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
    Evaluator::new().evaluate(graph, query)
}

/// [`evaluate_query`] forced onto the linear-scan matching baseline — the
/// differential oracle for the indexed evaluator.
pub fn evaluate_query_scan(graph: &PropertyGraph, query: &Query) -> Result<QueryResult, EvalError> {
    Evaluator { scan_matching: true, ..Evaluator::new() }.evaluate(graph, query)
}

/// [`evaluate_query`] forced onto the map-backed row representation — the
/// differential oracle for the flat interned-symbol rows.
pub fn evaluate_query_map_rows(
    graph: &PropertyGraph,
    query: &Query,
) -> Result<QueryResult, EvalError> {
    Evaluator { map_rows: true, ..Evaluator::new() }.evaluate(graph, query)
}

/// [`evaluate_query`] forced onto the name-resolving AST interpreter — the
/// differential oracle for the compiled [`crate::plan`] layer.
pub fn evaluate_query_interpreted(
    graph: &PropertyGraph,
    query: &Query,
) -> Result<QueryResult, EvalError> {
    Evaluator { interpret_patterns: true, ..Evaluator::new() }.evaluate(graph, query)
}

/// Evaluates a (possibly `UNION`-combined) query starting from the given
/// rows. Used both at the top level and for `EXISTS { ... }` subqueries,
/// where `initial_rows` carries the outer bindings.
pub(crate) fn evaluate_single_query_on_rows(
    ctx: EvalCtx<'_>,
    query: &Query,
    initial_rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    evaluate_union_query(ctx, query, initial_rows, require_return)
}

fn evaluate_union_query(
    ctx: EvalCtx<'_>,
    query: &Query,
    initial_rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    let mut combined: Option<QueryResult> = None;
    for (index, part) in query.parts.iter().enumerate() {
        let result = evaluate_single(ctx, part, initial_rows.clone(), require_return)?;
        combined = Some(match combined {
            None => result,
            Some(acc) => {
                if acc.columns.len() != result.columns.len() {
                    return Err(EvalError::new(
                        "UNION requires sub-queries with the same number of columns",
                    ));
                }
                let mut rows = acc.rows;
                rows.extend(result.rows);
                let merged = QueryResult { columns: acc.columns, rows };
                match query.unions[index - 1] {
                    UnionKind::All => merged,
                    UnionKind::Distinct => dedupe_result(merged),
                }
            }
        });
    }
    Ok(combined.unwrap_or_else(QueryResult::empty))
}

fn dedupe_result(result: QueryResult) -> QueryResult {
    let rows = dedup_first_occurrence(result.rows, |a, b| cmp_rows(a, b));
    QueryResult { columns: result.columns, rows }
}

/// Keeps the first occurrence of every distinct element under the total
/// order `cmp`, preserving input order: sort indices by `(element, index)`,
/// mark the leader of every run of equal elements, then filter by the mark.
/// O(n log n) comparisons and no element clones — this replaces the
/// quadratic scan-over-`seen` dedup (which additionally cloned every kept
/// element into `seen`) used by `UNION`, `DISTINCT` and the
/// distinct-aggregate paths.
fn dedup_first_occurrence<T>(mut items: Vec<T>, cmp: impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    if items.len() <= 1 {
        return items;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_unstable_by(|&a, &b| cmp(&items[a], &items[b]).then(a.cmp(&b)));
    let mut keep = vec![false; items.len()];
    let mut leader: Option<usize> = None;
    for &index in &order {
        if leader.is_none_or(|l| cmp(&items[l], &items[index]) != Ordering::Equal) {
            keep[index] = true;
            leader = Some(index);
        }
    }
    let mut keep = keep.into_iter();
    items.retain(|_| keep.next().expect("mask covers every element"));
    items
}

fn evaluate_single(
    ctx: EvalCtx<'_>,
    query: &SingleQuery,
    mut rows: Vec<Row>,
    require_return: bool,
) -> Result<QueryResult, EvalError> {
    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                rows = apply_match(ctx, m, rows)?;
            }
            Clause::Unwind(u) => {
                // Interned once per clause application, not once per output
                // row (both paths — idempotent, so behavior is unchanged).
                let alias = ctx.symbols.intern(&u.alias);
                let mut next = Vec::new();
                for row in rows {
                    let value = eval_expr(ctx, &row, &u.expr)?;
                    match value {
                        Value::Null => {}
                        Value::List(items) => {
                            for item in items {
                                next.push(row.with_sym(ctx.symbols, alias, item));
                            }
                        }
                        other => {
                            next.push(row.with_sym(ctx.symbols, alias, other));
                        }
                    }
                }
                rows = next;
            }
            Clause::With(w) => {
                rows = apply_with(ctx, w, rows)?;
            }
            Clause::Return(p) => {
                let (columns, projected) = apply_projection(ctx, p, &rows)?;
                let result_rows =
                    projected.into_iter().map(|(values, _)| values).collect::<Vec<_>>();
                return Ok(QueryResult { columns, rows: result_rows });
            }
        }
    }
    if require_return {
        return Err(EvalError::new("query does not end with a RETURN clause"));
    }
    // Subquery (EXISTS) without RETURN: expose the surviving multiplicity.
    Ok(QueryResult { columns: Vec::new(), rows: rows.into_iter().map(|_| Vec::new()).collect() })
}

fn apply_match(
    ctx: EvalCtx<'_>,
    clause: &MatchClause,
    rows: Vec<Row>,
) -> Result<Vec<Row>, EvalError> {
    // Compiled default: lower the clause once (memoized in the run's plan
    // cache) and match through the SymId-native plan. `plans: None` — direct
    // `EvalCtx::new` users and `Evaluator::interpret_patterns` — takes the
    // preserved name-resolving interpreter below.
    if let Some(plans) = ctx.plans {
        let compiled = plans.match_plan(ctx.symbols, clause);
        let mut next = Vec::new();
        for row in rows {
            let matches = match_compiled_clause(ctx, &compiled, &row)?;
            if matches.is_empty() && compiled.optional {
                let mut extended = row.clone();
                for sym in &compiled.optional_syms {
                    extended.insert_if_absent_sym(ctx.symbols, *sym, Value::Null);
                }
                next.push(extended);
            } else {
                next.extend(matches);
            }
        }
        return Ok(next);
    }
    let mut next = Vec::new();
    // Computed once per clause, not per unmatched row (it walks every
    // pattern and allocates the name list).
    let mut optional_variables: Option<Vec<String>> = None;
    for row in rows {
        let matches = match_clause(ctx, clause, &row)?;
        if matches.is_empty() && clause.optional {
            // OPTIONAL MATCH keeps the row, binding the pattern variables to
            // NULL (left outer join semantics).
            let variables = optional_variables.get_or_insert_with(|| pattern_variables(clause));
            let mut extended = row.clone();
            for name in variables {
                extended.insert_if_absent(ctx.symbols, name, Value::Null);
            }
            next.push(extended);
        } else {
            next.extend(matches);
        }
    }
    Ok(next)
}

/// All variables introduced by the patterns of a `MATCH` clause.
fn pattern_variables(clause: &MatchClause) -> Vec<String> {
    let mut names = Vec::new();
    for pattern in &clause.patterns {
        if let Some(v) = &pattern.variable {
            names.push(v.clone());
        }
        for node in pattern.nodes() {
            if let Some(v) = &node.variable {
                names.push(v.clone());
            }
        }
        for rel in pattern.relationships() {
            if let Some(v) = &rel.variable {
                names.push(v.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn apply_with(
    ctx: EvalCtx<'_>,
    clause: &WithClause,
    rows: Vec<Row>,
) -> Result<Vec<Row>, EvalError> {
    let (columns, projected) = apply_projection(ctx, &clause.projection, &rows)?;
    // Output ids interned once per clause application, not once per row.
    let column_syms: Vec<SymId> = columns.iter().map(|name| ctx.symbols.intern(name)).collect();
    let mut next = Vec::new();
    for (values, env) in projected {
        let mut row = Row::for_ctx(ctx);
        for (sym, value) in column_syms.iter().zip(values) {
            row.insert_sym(ctx.symbols, *sym, value);
        }
        if let Some(predicate) = &clause.where_clause {
            // The WHERE of a WITH sees both the projected names and (for
            // robustness) the pre-projection bindings.
            let mut combined = env.clone();
            combined.merge_from(ctx.symbols, &row);
            if !eval_predicate(ctx, &combined, predicate)? {
                continue;
            }
        }
        next.push(row);
    }
    Ok(next)
}

/// Applies a projection (shared by `WITH` and `RETURN`).
///
/// Returns the output column names and, for every output row, the projected
/// values together with the *environment* row used to produce it (the
/// pre-projection bindings merged with the projected ones) — the environment
/// is what `ORDER BY` and a `WITH ... WHERE` may refer to.
#[allow(clippy::type_complexity)]
fn apply_projection(
    ctx: EvalCtx<'_>,
    projection: &Projection,
    rows: &[Row],
) -> Result<(Vec<String>, Vec<(Vec<Value>, Row)>), EvalError> {
    // Explicit items under a plan cache resolve to the clause's compiled
    // projection: output names were computed once at lowering time (the
    // interpreted path pretty-prints un-aliased expressions on every
    // application) and output ids are pre-interned. `RETURN *` expands
    // dynamically either way — its column set depends on the rows. The `Rc`
    // is held for the whole function so borrowed expressions stay valid.
    let compiled = match (&projection.items, ctx.plans) {
        (ProjectionItems::Items(_), Some(plans)) => {
            Some(plans.projection_plan(ctx.symbols, projection))
        }
        _ => None,
    };
    // Expand `*` into the sorted list of visible variables. Explicit items
    // are borrowed (`Cow`) — cloning a deep expression tree per projection
    // application was a measurable share of small-graph evaluation cost.
    let (columns, exprs, column_syms): (Vec<String>, Vec<std::borrow::Cow<'_, Expr>>, Vec<SymId>) =
        match &compiled {
            Some(compiled) => (
                compiled.columns.clone(),
                compiled.exprs.iter().map(std::borrow::Cow::Borrowed).collect(),
                compiled.syms.clone(),
            ),
            None => {
                let items: Vec<(String, std::borrow::Cow<'_, Expr>)> = match &projection.items {
                    ProjectionItems::Star => {
                        let mut names: Vec<String> = rows
                            .iter()
                            .flat_map(|r| r.names(ctx.symbols))
                            .map(|name| name.to_string())
                            .collect::<std::collections::BTreeSet<_>>()
                            .into_iter()
                            .collect();
                        names.sort();
                        names
                            .into_iter()
                            .map(|n| (n.clone(), std::borrow::Cow::Owned(Expr::Variable(n))))
                            .collect()
                    }
                    ProjectionItems::Items(items) => items
                        .iter()
                        .map(|item| (item.output_name(), std::borrow::Cow::Borrowed(&item.expr)))
                        .collect(),
                };
                // Interned once per application, not once per row, for the env
                // binding loops below (idempotent — behavior is unchanged).
                let syms = items.iter().map(|(name, _)| ctx.symbols.intern(name)).collect();
                let (columns, exprs) = items.into_iter().unzip();
                (columns, exprs, syms)
            }
        };

    let has_aggregate = exprs.iter().any(|expr| expr.contains_aggregate());
    let mut produced: Vec<(Vec<Value>, Row)> = Vec::new();

    if has_aggregate {
        // Group rows by the values of the non-aggregate items.
        let grouping: Vec<&Expr> =
            exprs.iter().filter(|e| !e.contains_aggregate()).map(|e| &**e).collect();
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        for row in rows {
            let key =
                grouping.iter().map(|e| eval_expr(ctx, row, e)).collect::<Result<Vec<_>, _>>()?;
            match groups.iter_mut().find(|(k, _)| cmp_rows(k, &key) == Ordering::Equal) {
                Some((_, members)) => members.push(row.clone()),
                None => groups.push((key, vec![row.clone()])),
            }
        }
        // A global aggregate over zero rows still produces one row.
        if groups.is_empty() && grouping.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        for (_, members) in groups {
            let representative = members.first().cloned().unwrap_or_else(|| Row::for_ctx(ctx));
            let mut values = Vec::new();
            for expr in &exprs {
                values.push(eval_with_aggregates(ctx, &members, &representative, expr)?);
            }
            let mut env = representative.clone();
            for (sym, value) in column_syms.iter().zip(values.iter()) {
                env.insert_sym(ctx.symbols, *sym, value.clone());
            }
            produced.push((values, env));
        }
    } else {
        for row in rows {
            let mut values = Vec::new();
            for expr in &exprs {
                values.push(eval_expr(ctx, row, expr)?);
            }
            let mut env = row.clone();
            for (sym, value) in column_syms.iter().zip(values.iter()) {
                env.insert_sym(ctx.symbols, *sym, value.clone());
            }
            produced.push((values, env));
        }
    }

    if projection.distinct {
        produced = dedup_first_occurrence(produced, |(a, _), (b, _)| cmp_rows(a, b));
    }

    if !projection.order_by.is_empty() {
        let mut keyed: Vec<(Vec<(Value, bool)>, (Vec<Value>, Row))> = Vec::new();
        for entry in produced {
            let mut keys = Vec::new();
            for order in &projection.order_by {
                keys.push((eval_expr(ctx, &entry.1, &order.expr)?, order.ascending));
            }
            keyed.push((keys, entry));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for ((va, asc), (vb, _)) in a.iter().zip(b.iter()) {
                let ord = va.total_cmp(vb);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        produced = keyed.into_iter().map(|(_, entry)| entry).collect();
    }

    if let Some(skip) = &projection.skip {
        let n = constant_usize(ctx, skip, "SKIP")?;
        produced = produced.into_iter().skip(n).collect();
    }
    if let Some(limit) = &projection.limit {
        let n = constant_usize(ctx, limit, "LIMIT")?;
        produced.truncate(n);
    }
    Ok((columns, produced))
}

/// Evaluates an expression that may contain aggregate calls over a group of
/// rows. Non-aggregate sub-expressions are evaluated on the representative
/// row of the group.
fn eval_with_aggregates(
    ctx: EvalCtx<'_>,
    group: &[Row],
    representative: &Row,
    expr: &Expr,
) -> Result<Value, EvalError> {
    match expr {
        Expr::CountStar { distinct } => {
            if *distinct {
                // Whole-row values are extracted in *name* order so the
                // count is identical under both row representations.
                let value_rows: Vec<Vec<Value>> =
                    group.iter().map(|row| row.values_by_name(ctx.symbols)).collect();
                let distinct_rows = dedup_first_occurrence(value_rows, |a, b| cmp_rows(a, b));
                Ok(Value::Integer(distinct_rows.len() as i64))
            } else {
                Ok(Value::Integer(group.len() as i64))
            }
        }
        Expr::AggregateCall { func, distinct, arg } => {
            let mut values = Vec::new();
            for row in group {
                let value = eval_expr(ctx, row, arg)?;
                if !value.is_null() {
                    values.push(value);
                }
            }
            if *distinct {
                values = dedup_first_occurrence(values, |a, b| a.total_cmp(b));
            }
            Ok(compute_aggregate(*func, values))
        }
        Expr::Binary(op, lhs, rhs) => {
            let left = eval_with_aggregates(ctx, group, representative, lhs)?;
            let right = eval_with_aggregates(ctx, group, representative, rhs)?;
            // Re-dispatch on literal values by delegating to the scalar path.
            let lit = Expr::Binary(
                *op,
                Box::new(value_to_placeholder("·agg_lhs")),
                Box::new(value_to_placeholder("·agg_rhs")),
            );
            let mut row = representative.clone();
            row.insert(ctx.symbols, "·agg_lhs", left);
            row.insert(ctx.symbols, "·agg_rhs", right);
            eval_expr(ctx, &row, &lit)
        }
        Expr::Unary(op, inner) => {
            let value = eval_with_aggregates(ctx, group, representative, inner)?;
            let mut row = representative.clone();
            row.insert(ctx.symbols, "·agg", value);
            eval_expr(ctx, &row, &Expr::Unary(*op, Box::new(value_to_placeholder("·agg"))))
        }
        _ if !expr.contains_aggregate() => eval_expr(ctx, representative, expr),
        other => Err(EvalError::new(format!("unsupported aggregate expression shape: {other:?}"))),
    }
}

fn value_to_placeholder(name: &str) -> Expr {
    Expr::Variable(name.to_string())
}

fn compute_aggregate(func: Aggregate, values: Vec<Value>) -> Value {
    match func {
        Aggregate::Count => Value::Integer(values.len() as i64),
        Aggregate::Collect => Value::List(values),
        Aggregate::Sum => {
            if values.is_empty() {
                return Value::Integer(0);
            }
            let mut acc = Value::Integer(0);
            for value in values {
                acc = acc.add(&value);
            }
            acc
        }
        Aggregate::Min => values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null),
        Aggregate::Max => values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null),
        Aggregate::Avg => {
            if values.is_empty() {
                return Value::Null;
            }
            let count = values.len() as f64;
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            Value::Float(sum / count)
        }
    }
}

fn constant_usize(ctx: EvalCtx<'_>, expr: &Expr, what: &str) -> Result<usize, EvalError> {
    let value = eval_expr(ctx, &Row::for_ctx(ctx), expr)?;
    match value.as_integer() {
        Some(v) if v >= 0 => Ok(v as usize),
        _ => Err(EvalError::new(format!("{what} requires a non-negative integer, got {value}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn run(graph: &PropertyGraph, text: &str) -> QueryResult {
        let query = parse_query(text).unwrap();
        evaluate_query(graph, &query).unwrap()
    }

    fn cell(result: &QueryResult, row: usize, col: usize) -> &Value {
        &result.rows[row][col]
    }

    #[test]
    fn evaluates_the_paper_listing_1() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
             WHERE reader.name = 'Alice' RETURN writer.name",
        );
        assert_eq!(result.columns, vec!["writer.name"]);
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_projection_aliases_and_order() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person) RETURN p.name AS name ORDER BY p.age DESC");
        assert_eq!(result.columns, vec!["name"]);
        assert_eq!(
            result.rows,
            vec![
                vec![Value::from("J. K. Rowling")],
                vec![Value::from("Alice")],
                vec![Value::from("Jack")],
            ]
        );
    }

    #[test]
    fn evaluates_skip_and_limit() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name SKIP 1 LIMIT 1");
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_distinct() {
        let graph = PropertyGraph::paper_example();
        let all = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN b.title");
        assert_eq!(all.len(), 2);
        let distinct = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN DISTINCT b.title");
        assert_eq!(distinct.len(), 1);
    }

    #[test]
    fn evaluates_union_and_union_all() {
        let graph = PropertyGraph::paper_example();
        let all =
            run(&graph, "MATCH (p:Person) RETURN p.name UNION ALL MATCH (p:Person) RETURN p.name");
        assert_eq!(all.len(), 6);
        let distinct =
            run(&graph, "MATCH (p:Person) RETURN p.name UNION MATCH (p:Person) RETURN p.name");
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn evaluates_with_pipeline() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (p:Person) WITH p.name AS name WHERE name <> 'Jack' RETURN name ORDER BY name",
        );
        assert_eq!(
            result.rows,
            vec![vec![Value::from("Alice")], vec![Value::from("J. K. Rowling")]]
        );
    }

    #[test]
    fn evaluates_optional_match() {
        let graph = PropertyGraph::paper_example();
        // Only the book has no outgoing relationship; OPTIONAL MATCH keeps it
        // with r = NULL.
        let result = run(&graph, "MATCH (n) OPTIONAL MATCH (n)-[r]->(m) RETURN n, r");
        assert_eq!(result.len(), 4);
        let nulls = result.rows.iter().filter(|row| row[1].is_null()).count();
        assert_eq!(nulls, 1);
        // Plain MATCH drops the unmatched row.
        let inner = run(&graph, "MATCH (n) MATCH (n)-[r]->(m) RETURN n, r");
        assert_eq!(inner.len(), 3);
    }

    #[test]
    fn evaluates_optional_match_where_is_part_of_the_optional_pattern() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (n:Person) OPTIONAL MATCH (n)-[r:READ]->(b) WHERE b.language = 'French' \
             RETURN n.name, r",
        );
        // Nobody read a French book, so every person keeps a NULL r.
        assert_eq!(result.len(), 3);
        assert!(result.rows.iter().all(|row| row[1].is_null()));
    }

    #[test]
    fn evaluates_aggregates() {
        let graph = PropertyGraph::paper_example();
        let result =
            run(&graph, "MATCH (p:Person) RETURN COUNT(*), SUM(p.age), MIN(p.age), MAX(p.age)");
        assert_eq!(result.rows.len(), 1);
        assert_eq!(cell(&result, 0, 0), &Value::Integer(3));
        assert_eq!(cell(&result, 0, 1), &Value::Integer(112));
        assert_eq!(cell(&result, 0, 2), &Value::Integer(26));
        assert_eq!(cell(&result, 0, 3), &Value::Integer(59));
    }

    #[test]
    fn evaluates_grouped_aggregates() {
        let graph = PropertyGraph::paper_example();
        // Group readers by book title.
        let result = run(
            &graph,
            "MATCH (p:Person)-[:READ]->(b:Book) RETURN b.title, COUNT(*) ORDER BY b.title",
        );
        assert_eq!(result.rows, vec![vec![Value::from("Harry Potter"), Value::Integer(2)]]);
    }

    #[test]
    fn aggregate_over_empty_input() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (n:Missing) RETURN COUNT(n)");
        assert_eq!(result.rows, vec![vec![Value::Integer(0)]]);
        // With a grouping key there are no groups and hence no rows.
        let result = run(&graph, "MATCH (n:Missing) RETURN n.name, COUNT(n)");
        assert!(result.is_empty());
    }

    #[test]
    fn evaluates_collect_and_count_distinct() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN COLLECT(b.title)");
        assert_eq!(
            result.rows,
            vec![vec![Value::List(vec![Value::from("Harry Potter"), Value::from("Harry Potter")])]]
        );
        let result = run(&graph, "MATCH (p:Person)-[:READ]->(b) RETURN COUNT(DISTINCT b.title)");
        assert_eq!(result.rows, vec![vec![Value::Integer(1)]]);
    }

    #[test]
    fn evaluates_unwind() {
        let graph = PropertyGraph::new();
        let result = run(&graph, "UNWIND [1, 2, 3] AS x RETURN x");
        assert_eq!(result.len(), 3);
        let result = run(
            &graph,
            "WITH [{c1: 0, c2: 1}, {c1: 2, c2: 3}] AS tmp UNWIND tmp AS row RETURN row.c1",
        );
        assert_eq!(result.rows, vec![vec![Value::Integer(0)], vec![Value::Integer(2)]]);
    }

    #[test]
    fn evaluates_exists_subquery() {
        let graph = PropertyGraph::paper_example();
        let result = run(
            &graph,
            "MATCH (n:Person) WHERE EXISTS { MATCH (n)-[:WRITE]->(b) RETURN b } RETURN n.name",
        );
        assert_eq!(result.rows, vec![vec![Value::from("J. K. Rowling")]]);
    }

    #[test]
    fn evaluates_return_star() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person)-[r:WRITE]->(b) RETURN *");
        assert_eq!(result.columns, vec!["a", "b", "r"]);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn evaluates_cartesian_product_of_patterns() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person), (b:Book) RETURN a, b");
        assert_eq!(result.len(), 3);
        let result = run(&graph, "MATCH (a:Person) MATCH (b:Person) RETURN a, b");
        assert_eq!(result.len(), 9);
    }

    #[test]
    fn bag_and_ordered_equality() {
        let graph = PropertyGraph::paper_example();
        let asc = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name");
        let desc = run(&graph, "MATCH (p:Person) RETURN p.name ORDER BY p.name DESC");
        assert!(asc.bag_equal(&desc));
        assert!(!asc.ordered_equal(&desc));
        assert!(asc.ordered_equal(&asc));
        let fewer = run(&graph, "MATCH (p:Person) RETURN p.name LIMIT 2");
        assert!(!asc.bag_equal(&fewer));
    }

    #[test]
    fn with_star_keeps_all_bindings() {
        let graph = PropertyGraph::paper_example();
        let result = run(&graph, "MATCH (a:Person)-[r]->(b) WITH * RETURN a, r, b");
        assert_eq!(result.len(), 3);
    }

    #[test]
    fn errors_on_invalid_limit() {
        let graph = PropertyGraph::paper_example();
        let query = parse_query("MATCH (n) RETURN n LIMIT -1").unwrap();
        assert!(evaluate_query(&graph, &query).is_err());
    }

    #[test]
    fn union_arity_mismatch_is_an_error() {
        let graph = PropertyGraph::paper_example();
        let query = parse_query("MATCH (n) RETURN n UNION ALL MATCH (n) RETURN n, n.name").unwrap();
        assert!(evaluate_query(&graph, &query).is_err());
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        // The sort-based dedup must keep the output in first-occurrence
        // order, exactly like the quadratic scan it replaced.
        let graph = PropertyGraph::new();
        let result = run(&graph, "UNWIND [3, 1, 3, 2, 1] AS x RETURN DISTINCT x");
        assert_eq!(
            result.rows,
            vec![vec![Value::Integer(3)], vec![Value::Integer(1)], vec![Value::Integer(2)]]
        );
        // COLLECT(DISTINCT ...) keeps first-occurrence order too.
        let result = run(&graph, "UNWIND [3, 1, 3, 2, 1] AS x RETURN COLLECT(DISTINCT x)");
        assert_eq!(
            result.rows,
            vec![vec![Value::List(vec![Value::Integer(3), Value::Integer(1), Value::Integer(2)])]]
        );
        // UNION dedup: first occurrence across the combined parts.
        let result = run(&graph, "UNWIND [2, 1] AS x RETURN x UNION UNWIND [1, 3] AS x RETURN x");
        assert_eq!(
            result.rows,
            vec![vec![Value::Integer(2)], vec![Value::Integer(1)], vec![Value::Integer(3)]]
        );
        // COUNT(DISTINCT ...) through the same path.
        let result = run(&graph, "UNWIND [1, 1, 2, 2, 2] AS x RETURN COUNT(DISTINCT x)");
        assert_eq!(result.rows, vec![vec![Value::Integer(2)]]);
    }

    #[test]
    fn distinct_separates_lossy_float_integer_collisions() {
        // 2^53 + 1 and 2^53 as a float are different values; the lossy
        // comparison used to merge them under DISTINCT.
        let graph = PropertyGraph::new();
        let result =
            run(&graph, "UNWIND [9007199254740993, 9007199254740992.0] AS x RETURN DISTINCT x");
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn map_rows_oracle_matches_flat_rows() {
        let graph = PropertyGraph::paper_example();
        let queries = [
            "MATCH (reader:Person)-[:READ]->(book:Book)<-[:WRITE]-(writer) \
             WHERE reader.name = 'Alice' RETURN writer.name",
            "MATCH (p:Person) RETURN p.name AS name ORDER BY p.age DESC",
            "MATCH (n) OPTIONAL MATCH (n)-[r]->(m) RETURN n, r",
            "MATCH (p:Person)-[:READ]->(b) RETURN b.title, COUNT(*) ORDER BY b.title",
            "MATCH (a:Person)-[r:WRITE]->(b) RETURN *",
            "MATCH (p:Person) WITH p.name AS name WHERE name <> 'Jack' RETURN name ORDER BY name",
            "UNWIND [1, 2, 2, 3] AS x RETURN DISTINCT x",
            "MATCH (n:Person) WHERE EXISTS { MATCH (n)-[:WRITE]->(b) RETURN b } RETURN n.name",
            "MATCH (p:Person) RETURN p.name UNION MATCH (p:Person) RETURN p.name",
            "MATCH (p:Person)-[:READ]->(b) RETURN COUNT(DISTINCT b.title)",
        ];
        for text in queries {
            let query = parse_query(text).unwrap();
            let flat = evaluate_query(&graph, &query).unwrap();
            let map = evaluate_query_map_rows(&graph, &query).unwrap();
            assert_eq!(flat.columns, map.columns, "columns diverged on {text}");
            assert!(flat.ordered_equal(&map), "rows diverged on {text}:\n{flat}\n{map}");
        }
    }

    #[test]
    fn evaluates_with_order_limit_then_match_listing_2() {
        let graph = PropertyGraph::paper_example();
        // Q1 and Q2 of Listing 2 are equivalent: pick the node with the
        // smallest p1 (here: name), then follow an outgoing edge.
        let q1 = run(
            &graph,
            "MATCH (n1) WITH n1 ORDER BY n1.name LIMIT 1 MATCH (n1)-[]->(n2) RETURN n2",
        );
        let q2 = run(
            &graph,
            "MATCH (n1) WITH n1 ORDER BY n1.name LIMIT 1 MATCH (n2)<-[]-(n1) RETURN n2",
        );
        assert!(q1.bag_equal(&q2));
    }
}
