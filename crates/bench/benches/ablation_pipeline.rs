//! Ablation benchmark: pipeline latency with and without Table II
//! normalization (DESIGN.md §7).

use graphqe::GraphQE;
use graphqe_bench::microbench::bench;

fn main() {
    let q1 = "MATCH (n1)-[*1..2]->(n2) RETURN n1";
    let q2 = "MATCH (n1)-[]->(n2) RETURN n1 UNION ALL MATCH (n1)-[]->()-[]->(n2) RETURN n1";
    println!("ablation/normalization");
    let full = GraphQE::new();
    let without = GraphQE { normalize: false, search_counterexamples: false, ..GraphQE::new() };
    bench("with_normalization", 10, || {
        std::hint::black_box(full.prove(q1, q2));
    });
    bench("without_normalization", 10, || {
        std::hint::black_box(without.prove(q1, q2));
    });
}
