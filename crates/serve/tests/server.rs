//! Loopback integration tests: the executable version of SERVING.md.
//!
//! Every test spawns a real server on `127.0.0.1:0` and speaks HTTP/1.1 to
//! it over `TcpStream`. The fault harness is process-global, so every test
//! serializes on [`SERIAL`] (the same discipline as the core fault tests).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use graphqe_serve::json::Json;
use graphqe_serve::{ServeConfig, Server};
use limits::faults::{self, FaultKind};
use limits::Stage;

/// Serializes every test in this file: armed faults, the panic hook, and the
/// process-wide caches are shared.
static SERIAL: Mutex<()> = Mutex::new(());

const EQ: (&str, &str) = ("MATCH (n) RETURN n", "MATCH (m) RETURN m");
const NEQ: (&str, &str) = ("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n");

/// One keep-alive client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        // Single-segment requests: two small writes would trip the Nagle +
        // delayed-ACK interaction and add ~40 ms to every exchange.
        stream.set_nodelay(true).unwrap();
        let writer = stream.try_clone().unwrap();
        Client { reader: BufReader::new(stream), writer }
    }

    /// Sends one request and reads the response, reusing the connection.
    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
        let body = body.unwrap_or("");
        let message = format!(
            "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(message.as_bytes()).unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, Json) {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("Content-Length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        (status, Json::parse(&text).expect("JSON body"))
    }
}

fn prove_body(pairs: &[(&str, &str)]) -> String {
    let rendered: Vec<String> = pairs.iter().map(|(l, r)| format!("[{l:?},{r:?}]")).collect();
    format!("{{\"pairs\":[{}]}}", rendered.join(","))
}

fn test_server(config: ServeConfig) -> Server {
    Server::spawn(config).expect("spawn server")
}

/// Default test config: a short read timeout so a shutdown never waits the
/// production 30s for an idle keep-alive connection a test forgot to drop.
fn test_config() -> ServeConfig {
    ServeConfig { read_timeout: Duration::from_secs(2), ..ServeConfig::default() }
}

fn verdicts(response: &Json) -> Vec<String> {
    response
        .get("results")
        .and_then(Json::as_array)
        .expect("results array")
        .iter()
        .map(|r| r.get("verdict").and_then(Json::as_str).expect("verdict").to_string())
        .collect()
}

fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(previous);
    result
}

#[test]
fn certified_proves_attach_independently_checkable_artifacts() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);

    let body = format!(
        "{{\"pairs\":[[{:?},{:?}],[{:?},{:?}]],\"certificates\":true}}",
        EQ.0, EQ.1, NEQ.0, NEQ.1
    );
    let (status, response) = client.request("POST", "/v1/prove", Some(&body));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent", "not_equivalent"]);
    for result in response.get("results").unwrap().as_array().unwrap() {
        // Round-trip through the wire form and re-validate with the
        // dependency-free checker — the client-side workflow SERVING.md
        // documents.
        let wire = result.get("certificate").expect("certificate attached").to_string();
        let certificate =
            graphqe_checker::Certificate::from_json(&wire).expect("certificate parses");
        graphqe_checker::check_certificate(&certificate).expect("certificate validates");
    }

    // Without the flag, responses stay certificate-free.
    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ])));
    assert_eq!(status, 200);
    assert!(response.get("results").unwrap().as_array().unwrap()[0].get("certificate").is_none());

    let (status, stats) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    assert!(stats.get("cert_emitted").unwrap().as_u64().unwrap() >= 2);
    assert!(stats.get("cert_check_failures").unwrap().as_u64().is_some());

    drop(client);
    server.shutdown();
}

#[test]
fn proves_pairs_over_a_keep_alive_connection() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);

    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ, NEQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent", "not_equivalent"]);
    assert_eq!(response.get("equivalent").unwrap().as_u64(), Some(1));
    assert_eq!(response.get("not_equivalent").unwrap().as_u64(), Some(1));
    let neq = &response.get("results").unwrap().as_array().unwrap()[1];
    let example = neq.get("counterexample").expect("counterexample details");
    assert!(example.get("nodes").unwrap().as_u64().is_some());
    assert!(example.get("left_rows").is_some() && example.get("right_rows").is_some());

    // Same connection: health, stats, and a second (now warm) prove.
    let (status, health) = client.request("GET", "/v1/health", None);
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent"]);

    let (status, stats) = client.request("GET", "/v1/stats", None);
    assert_eq!(status, 200);
    assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 4);
    assert_eq!(stats.get("pairs").unwrap().as_u64(), Some(3));
    assert!(stats.get("caches").unwrap().get("parse_hit_rate").is_some());
    assert!(stats.get("queue_capacity").unwrap().as_u64().unwrap() > 0);

    drop(client);
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_verdicts() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(ServeConfig { workers: 3, ..test_config() });
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let mut client = Client::connect(&server);
                for _ in 0..3 {
                    let (status, response) =
                        client.request("POST", "/v1/prove", Some(&prove_body(&[EQ, NEQ])));
                    assert_eq!(status, 200);
                    assert_eq!(verdicts(&response), ["equivalent", "not_equivalent"]);
                }
            });
        }
    });
    let mut client = Client::connect(&server);
    let (_, stats) = client.request("GET", "/v1/stats", None);
    assert_eq!(stats.get("pairs").unwrap().as_u64(), Some(18));
    assert_eq!(stats.get("equivalent").unwrap().as_u64(), Some(9));
    assert_eq!(stats.get("not_equivalent").unwrap().as_u64(), Some(9));
    drop(client);
    server.shutdown();
}

#[test]
fn a_zero_deadline_surfaces_as_a_structured_timeout() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);
    let body = format!("{{\"pairs\":[[{:?},{:?}]],\"deadline_ms\":0}}", EQ.0, EQ.1);
    let (status, response) = client.request("POST", "/v1/prove", Some(&body));
    // Per-pair failures are in-band: the envelope is still 200.
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["unknown"]);
    let error = response.get("results").unwrap().as_array().unwrap()[0]
        .get("error")
        .expect("error object")
        .clone();
    assert_eq!(error.get("code").unwrap().as_str(), Some("timeout"));
    assert!(error.get("stage").unwrap().as_str().is_some(), "timeout must name its stage");
    assert!(error.get("reason").unwrap().as_str().is_some());
    // The connection (and server) is fine afterwards.
    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent"]);
    drop(client);
    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_errors_not_hangs() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(ServeConfig { max_body_bytes: 4096, ..test_config() });

    let expect_error = |status: u16, response: &Json, code: &str| {
        let error = response.get("error").expect("error object");
        assert_eq!(error.get("code").and_then(Json::as_str), Some(code), "status {status}");
    };

    // Unknown path and wrong method (connection stays usable after both).
    let mut client = Client::connect(&server);
    let (status, response) = client.request("GET", "/v1/nope", None);
    assert_eq!(status, 404);
    expect_error(status, &response, "not_found");
    let (status, response) = client.request("DELETE", "/v1/prove", None);
    assert_eq!(status, 405);
    expect_error(status, &response, "method_not_allowed");

    // Bad JSON, missing and empty "pairs": 400 with the offending field.
    for bad in ["this is not json", "{}", "{\"pairs\":[]}", "{\"pairs\":[[\"only one\"]]}"] {
        let mut client = Client::connect(&server);
        let (status, response) = client.request("POST", "/v1/prove", Some(bad));
        assert_eq!(status, 400, "{bad:?}");
        expect_error(status, &response, "bad_request");
    }

    // A POST without Content-Length is refused with 411.
    {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"POST /v1/prove HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("411"), "got {response:?}");
    }

    // A declared body above the cap is refused with 413 before it is read.
    {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer
            .write_all(b"POST /v1/prove HTTP/1.1\r\nHost: x\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("413"), "got {response:?}");
    }

    // The server is healthy after all of it.
    let mut client = Client::connect(&server);
    let (status, _) = client.request("GET", "/v1/health", None);
    assert_eq!(status, 200);
    drop(client);
    server.shutdown();
}

#[test]
fn a_full_admission_queue_rejects_with_a_structured_overload() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    // One worker, one queue slot. A stalled request occupies the worker;
    // the next connection fills the queue; the one after that must be
    // rejected inline with 503.
    let server = test_server(ServeConfig { workers: 1, queue_capacity: 1, ..test_config() });
    faults::arm(Stage::Normalize, FaultKind::Stall(Duration::from_millis(800)), 1);

    let mut stalled = Client::connect(&server);
    let body = prove_body(&[EQ]);
    let head = format!(
        "POST /v1/prove HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stalled.writer.write_all(head.as_bytes()).unwrap();
    // Let the worker pick the stalled connection up, leaving the queue empty.
    std::thread::sleep(Duration::from_millis(200));

    let queued = Client::connect(&server); // fills the single queue slot
    std::thread::sleep(Duration::from_millis(50));
    let mut rejected = Client::connect(&server);
    let (status, response) = rejected.read_response();
    assert_eq!(status, 503);
    let error = response.get("error").expect("error object");
    assert_eq!(error.get("code").and_then(Json::as_str), Some("overloaded"));
    assert!(error.get("retry_after_ms").unwrap().as_u64().is_some());

    // The stalled request still completes correctly.
    let (status, response) = stalled.read_response();
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent"]);
    faults::disarm();
    // Close both sessions so the single worker can drain the queue before
    // the stats connection arrives (capacity is 1).
    drop(stalled);
    drop(queued);
    std::thread::sleep(Duration::from_millis(200));

    let mut client = Client::connect(&server);
    let (_, stats) = client.request("GET", "/v1/stats", None);
    assert!(stats.get("rejected_overload").unwrap().as_u64().unwrap() >= 1);
    drop(client);
    server.shutdown();
}

#[test]
fn cache_clears_are_generation_guarded() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);
    // Warm something up, then observe the generation.
    let (_, _) = client.request("POST", "/v1/prove", Some(&prove_body(&[NEQ])));
    let (_, stats) = client.request("GET", "/v1/stats", None);
    let generation = stats.get("pool_cache_generation").unwrap().as_u64().unwrap();

    // A clear that names the observed generation lands...
    let body = format!("{{\"expected_generation\":{generation}}}");
    let (status, response) = client.request("POST", "/v1/admin/clear-caches", Some(&body));
    assert_eq!(status, 200);
    assert_eq!(response.get("cleared").unwrap().as_bool(), Some(true));
    assert_eq!(response.get("generation").unwrap().as_u64(), Some(generation + 1));

    // ...and a second clear with the now-stale generation is refused: the
    // warm state rebuilt since the first clear is not wiped again.
    let (status, response) = client.request("POST", "/v1/admin/clear-caches", Some(&body));
    assert_eq!(status, 409);
    assert_eq!(response.get("cleared").unwrap().as_bool(), Some(false));
    assert_eq!(response.get("generation").unwrap().as_u64(), Some(generation + 1));

    // Proving still works after the clear (caches repopulate).
    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ, NEQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent", "not_equivalent"]);
    drop(client);
    server.shutdown();
}

#[test]
fn an_injected_panic_degrades_one_pair_and_the_server_survives() {
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);
    let (status, response) = with_quiet_panics(|| {
        faults::arm(Stage::Decide, FaultKind::Panic, 1);
        let result = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ])));
        faults::disarm();
        result
    });
    assert_eq!(status, 200, "a pair panic must not fail the request envelope");
    assert_eq!(verdicts(&response), ["unknown"]);
    let error = response.get("results").unwrap().as_array().unwrap()[0]
        .get("error")
        .expect("error object")
        .clone();
    assert_eq!(error.get("code").unwrap().as_str(), Some("panicked"));

    // The same worker (same connection) proves the pair cleanly afterwards:
    // the panic froze nothing.
    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent"]);
    let (_, stats) = client.request("GET", "/v1/stats", None);
    assert_eq!(stats.get("unknown").unwrap().as_u64(), Some(1));
    drop(client);
    server.shutdown();
}

/// CI matrix entry point: with `GRAPHQE_FAULT=<kind>@<stage>` set, arm it
/// against a live server and assert the server keeps answering with
/// structured responses. Without the variable the test is a no-op.
#[test]
fn armed_from_the_environment_the_server_survives() {
    let Ok(spec) = std::env::var("GRAPHQE_FAULT") else { return };
    let Some((_, kind)) = faults::parse_spec(&spec) else {
        panic!("unparsable GRAPHQE_FAULT spec: {spec}")
    };
    let _serial = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let server = test_server(test_config());
    let mut client = Client::connect(&server);
    // Stall faults need a deadline shorter than the stall (50ms default) to
    // become observable trips; panic/smt-unknown degrade on their own.
    let deadline = if matches!(kind, FaultKind::Stall(_)) { ",\"deadline_ms\":25" } else { "" };
    let pairs: Vec<String> = [
        ("MATCH (n) WHERE n.age > 5 AND n.age > 3 RETURN n", "MATCH (n) WHERE n.age > 5 RETURN n"),
        NEQ,
        EQ,
    ]
    .iter()
    .map(|(l, r)| format!("[{l:?},{r:?}]"))
    .collect();
    let body = format!("{{\"pairs\":[{}]{deadline}}}", pairs.join(","));
    let (status, response) = with_quiet_panics(|| {
        assert!(faults::arm_from_env().is_some(), "arming from env must succeed");
        let result = client.request("POST", "/v1/prove", Some(&body));
        faults::disarm();
        result
    });
    assert_eq!(status, 200, "the server must answer under {spec}");
    assert_eq!(verdicts(&response).len(), 3, "every pair must get a verdict under {spec}");

    // The server is alive and correct afterwards.
    let (status, response) = client.request("POST", "/v1/prove", Some(&prove_body(&[EQ, NEQ])));
    assert_eq!(status, 200);
    assert_eq!(verdicts(&response), ["equivalent", "not_equivalent"]);
    let (status, _) = client.request("GET", "/v1/health", None);
    assert_eq!(status, 200);
    drop(client);
    server.shutdown();
}
