//! Tseitin transformation of formulas into CNF over abstracted theory atoms.
//!
//! Boolean structure (`and`, `or`, `not`, `=>`, `ite`) is encoded with
//! auxiliary variables; theory atoms (equalities, inequalities, boolean
//! variables) become propositional variables whose meaning the lazy DPLL(T)
//! loop later checks with the theory solvers.

use std::collections::HashMap;

use crate::sat::{Lit, SatSolver};
use crate::term::Term;

/// The result of abstracting a formula: the SAT solver is loaded with the
/// CNF, and `atoms` maps each propositional variable back to its theory atom.
#[derive(Debug, Default)]
pub struct Abstraction {
    /// Theory atom of each propositional variable (if the variable stands for
    /// an atom rather than a Tseitin auxiliary).
    pub atoms: HashMap<usize, Term>,
    atom_vars: HashMap<Term, usize>,
}

impl Abstraction {
    /// Creates an empty abstraction.
    pub fn new() -> Self {
        Abstraction::default()
    }

    /// Encodes `formula` and asserts it (top-level) into `solver`.
    pub fn assert_formula(&mut self, solver: &mut SatSolver, formula: &Term) {
        let literal = self.encode(solver, formula);
        solver.add_clause(vec![literal]);
    }

    /// Returns the propositional variable of a theory atom, allocating one if
    /// needed.
    fn atom_var(&mut self, solver: &mut SatSolver, atom: &Term) -> usize {
        if let Some(&var) = self.atom_vars.get(atom) {
            return var;
        }
        let var = solver.new_var();
        self.atom_vars.insert(atom.clone(), var);
        self.atoms.insert(var, atom.clone());
        var
    }

    /// Encodes a formula, returning a literal equivalent to it.
    fn encode(&mut self, solver: &mut SatSolver, formula: &Term) -> Lit {
        match formula {
            Term::BoolConst(b) => {
                // A fresh variable pinned to the constant.
                let var = solver.new_var();
                solver.add_clause(vec![Lit::new(var, *b)]);
                Lit::new(var, true)
            }
            Term::Not(inner) => self.encode(solver, inner).negated(),
            Term::And(items) => {
                let literals: Vec<Lit> = items.iter().map(|i| self.encode(solver, i)).collect();
                let output = Lit::new(solver.new_var(), true);
                // output -> each literal.
                for literal in &literals {
                    solver.add_clause(vec![output.negated(), *literal]);
                }
                // all literals -> output.
                let mut clause: Vec<Lit> = literals.iter().map(|l| l.negated()).collect();
                clause.push(output);
                solver.add_clause(clause);
                output
            }
            Term::Or(items) => {
                let literals: Vec<Lit> = items.iter().map(|i| self.encode(solver, i)).collect();
                let output = Lit::new(solver.new_var(), true);
                // each literal -> output.
                for literal in &literals {
                    solver.add_clause(vec![literal.negated(), output]);
                }
                // output -> some literal.
                let mut clause = literals;
                clause.push(output.negated());
                solver.add_clause(clause);
                output
            }
            Term::Implies(lhs, rhs) => {
                let encoded = Term::or(vec![Term::not((**lhs).clone()), (**rhs).clone()]);
                self.encode(solver, &encoded)
            }
            Term::Ite(cond, then_branch, else_branch) => {
                let encoded = Term::and(vec![
                    Term::or(vec![Term::not((**cond).clone()), (**then_branch).clone()]),
                    Term::or(vec![(**cond).clone(), (**else_branch).clone()]),
                ]);
                self.encode(solver, &encoded)
            }
            // Anything else is a theory atom (boolean variable, equality,
            // inequality).
            atom => Lit::new(self.atom_var(solver, atom), true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    fn solve(formula: &Term) -> SatOutcome {
        let mut solver = SatSolver::new();
        let mut abstraction = Abstraction::new();
        abstraction.assert_formula(&mut solver, formula);
        solver.solve()
    }

    #[test]
    fn propositional_tautologies_and_contradictions() {
        let a = Term::bool_var("a");
        let b = Term::bool_var("b");
        // a ∧ ¬a is UNSAT.
        assert_eq!(solve(&Term::and(vec![a.clone(), Term::not(a.clone())])), SatOutcome::Unsat);
        // (a ∨ b) ∧ ¬a ∧ ¬b is UNSAT.
        assert_eq!(
            solve(&Term::and(vec![
                Term::or(vec![a.clone(), b.clone()]),
                Term::not(a.clone()),
                Term::not(b.clone()),
            ])),
            SatOutcome::Unsat
        );
        // (a => b) ∧ a ∧ ¬b is UNSAT.
        assert_eq!(
            solve(&Term::and(vec![
                Term::implies(a.clone(), b.clone()),
                a.clone(),
                Term::not(b.clone()),
            ])),
            SatOutcome::Unsat
        );
        // (a => b) ∧ a ∧ b is SAT.
        assert!(matches!(
            solve(&Term::and(vec![Term::implies(a.clone(), b.clone()), a, b])),
            SatOutcome::Sat(_)
        ));
    }

    #[test]
    fn atoms_are_shared() {
        let atom = Term::eq(Term::int_var("x"), Term::int(1));
        let mut solver = SatSolver::new();
        let mut abstraction = Abstraction::new();
        abstraction
            .assert_formula(&mut solver, &Term::or(vec![atom.clone(), Term::not(atom.clone())]));
        // The same atom must map to a single propositional variable.
        assert_eq!(abstraction.atoms.len(), 1);
    }

    #[test]
    fn ite_encoding() {
        let c = Term::bool_var("c");
        let t = Term::bool_var("t");
        let e = Term::bool_var("e");
        // (ite c t e) ∧ c ∧ ¬t is UNSAT.
        let formula = Term::and(vec![
            Term::Ite(Box::new(c.clone()), Box::new(t.clone()), Box::new(e.clone())),
            c,
            Term::not(t),
        ]);
        assert_eq!(solve(&formula), SatOutcome::Unsat);
    }

    #[test]
    fn bool_constants() {
        assert!(matches!(solve(&Term::tt()), SatOutcome::Sat(_)));
        assert_eq!(solve(&Term::ff()), SatOutcome::Unsat);
    }
}
