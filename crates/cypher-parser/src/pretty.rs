//! Pretty-printing of ASTs back into Cypher text.
//!
//! The printer produces canonical text: keywords upper-cased, single spaces,
//! explicit parentheses only where needed. `parse(pretty(ast))` round-trips
//! to an equal AST (covered by unit and property tests).

use crate::ast::*;

/// Renders a full query.
pub fn query_to_string(query: &Query) -> String {
    let mut out = String::new();
    for (i, part) in query.parts.iter().enumerate() {
        if i > 0 {
            match query.unions[i - 1] {
                UnionKind::All => out.push_str(" UNION ALL "),
                UnionKind::Distinct => out.push_str(" UNION "),
            }
        }
        out.push_str(&single_query_to_string(part));
    }
    out
}

/// Renders a single (non-union) query.
pub fn single_query_to_string(query: &SingleQuery) -> String {
    query.clauses.iter().map(clause_to_string).collect::<Vec<_>>().join(" ")
}

/// Renders one clause.
pub fn clause_to_string(clause: &Clause) -> String {
    match clause {
        Clause::Match(m) => {
            let mut out = String::new();
            if m.optional {
                out.push_str("OPTIONAL ");
            }
            out.push_str("MATCH ");
            out.push_str(&m.patterns.iter().map(path_to_string).collect::<Vec<_>>().join(", "));
            if let Some(w) = &m.where_clause {
                out.push_str(" WHERE ");
                out.push_str(&expr_to_string(w));
            }
            out
        }
        Clause::Unwind(u) => format!("UNWIND {} AS {}", expr_to_string(&u.expr), u.alias),
        Clause::With(w) => {
            let mut out = format!("WITH {}", projection_to_string(&w.projection));
            if let Some(pred) = &w.where_clause {
                out.push_str(" WHERE ");
                out.push_str(&expr_to_string(pred));
            }
            out
        }
        Clause::Return(p) => format!("RETURN {}", projection_to_string(p)),
    }
}

/// Renders a projection body (shared by `WITH` and `RETURN`).
pub fn projection_to_string(p: &Projection) -> String {
    let mut out = String::new();
    if p.distinct {
        out.push_str("DISTINCT ");
    }
    match &p.items {
        ProjectionItems::Star => out.push('*'),
        ProjectionItems::Items(items) => {
            out.push_str(
                &items
                    .iter()
                    .map(|item| match &item.alias {
                        Some(alias) => format!("{} AS {}", expr_to_string(&item.expr), alias),
                        None => expr_to_string(&item.expr),
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
    }
    if !p.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        out.push_str(
            &p.order_by
                .iter()
                .map(|o| {
                    if o.ascending {
                        expr_to_string(&o.expr)
                    } else {
                        format!("{} DESC", expr_to_string(&o.expr))
                    }
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if let Some(skip) = &p.skip {
        out.push_str(" SKIP ");
        out.push_str(&expr_to_string(skip));
    }
    if let Some(limit) = &p.limit {
        out.push_str(" LIMIT ");
        out.push_str(&expr_to_string(limit));
    }
    out
}

/// Renders a path pattern.
pub fn path_to_string(path: &PathPattern) -> String {
    let mut out = String::new();
    if let Some(v) = &path.variable {
        out.push_str(v);
        out.push_str(" = ");
    }
    out.push_str(&node_to_string(&path.start));
    for segment in &path.segments {
        out.push_str(&relationship_to_string(&segment.relationship));
        out.push_str(&node_to_string(&segment.node));
    }
    out
}

/// Renders a node pattern.
pub fn node_to_string(node: &NodePattern) -> String {
    let mut out = String::from("(");
    if let Some(v) = &node.variable {
        out.push_str(v);
    }
    for label in &node.labels {
        out.push(':');
        out.push_str(label);
    }
    if !node.properties.is_empty() {
        if node.variable.is_some() || !node.labels.is_empty() {
            out.push(' ');
        }
        out.push_str(&property_map_to_string(&node.properties));
    }
    out.push(')');
    out
}

/// Renders a relationship pattern including its arrow decoration.
pub fn relationship_to_string(rel: &RelationshipPattern) -> String {
    let mut detail = String::new();
    if let Some(v) = &rel.variable {
        detail.push_str(v);
    }
    if !rel.labels.is_empty() {
        detail.push(':');
        detail.push_str(&rel.labels.join("|"));
    }
    if let Some(length) = &rel.length {
        detail.push('*');
        match (length.min, length.max) {
            (Some(min), Some(max)) if min == max => detail.push_str(&min.to_string()),
            (Some(min), Some(max)) => detail.push_str(&format!("{min}..{max}")),
            (Some(min), None) => detail.push_str(&format!("{min}..")),
            (None, Some(max)) => detail.push_str(&format!("..{max}")),
            (None, None) => {}
        }
    }
    if !rel.properties.is_empty() {
        if !detail.is_empty() {
            detail.push(' ');
        }
        detail.push_str(&property_map_to_string(&rel.properties));
    }
    let body = if detail.is_empty() { String::new() } else { format!("[{detail}]") };
    match rel.direction {
        RelDirection::Outgoing => format!("-{body}->"),
        RelDirection::Incoming => format!("<-{body}-"),
        RelDirection::Undirected => format!("-{body}-"),
    }
}

fn property_map_to_string(properties: &[(String, Expr)]) -> String {
    let body = properties
        .iter()
        .map(|(k, v)| format!("{k}: {}", expr_to_string(v)))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{body}}}")
}

/// Renders an expression with minimal but sufficient parenthesization.
pub fn expr_to_string(expr: &Expr) -> String {
    render_expr(expr, 0)
}

/// Precedence levels used to decide when parentheses are required. Higher
/// binds tighter.
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::Xor => 2,
        BinaryOp::And => 3,
        BinaryOp::Eq
        | BinaryOp::Neq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge
        | BinaryOp::In
        | BinaryOp::StartsWith
        | BinaryOp::EndsWith
        | BinaryOp::Contains => 5,
        BinaryOp::Add | BinaryOp::Sub => 6,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 7,
        BinaryOp::Pow => 8,
    }
}

fn op_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "=",
        BinaryOp::Neq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
        BinaryOp::Xor => "XOR",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
        BinaryOp::Pow => "^",
        BinaryOp::In => "IN",
        BinaryOp::StartsWith => "STARTS WITH",
        BinaryOp::EndsWith => "ENDS WITH",
        BinaryOp::Contains => "CONTAINS",
    }
}

fn render_expr(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Literal(lit) => literal_to_string(lit),
        Expr::Variable(v) => v.clone(),
        Expr::Parameter(p) => format!("${p}"),
        Expr::Property(base, key) => format!("{}.{key}", render_expr(base, 10)),
        Expr::Unary(op, inner) => {
            let rendered = render_expr(inner, 9);
            let text = match op {
                UnaryOp::Not => format!("NOT {rendered}"),
                UnaryOp::Neg => format!("-{rendered}"),
                UnaryOp::Pos => format!("+{rendered}"),
            };
            // NOT binds between AND and comparisons.
            let prec = if *op == UnaryOp::Not { 4 } else { 9 };
            maybe_paren(text, prec, parent_prec)
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let lhs_text = render_expr(lhs, prec);
            // Use prec + 1 on the right so non-associative chains reproduce
            // the original grouping when reparsed (all our binary operators
            // are parsed left-associatively except `^`).
            let rhs_prec = if *op == BinaryOp::Pow { prec } else { prec + 1 };
            let rhs_text = render_expr(rhs, rhs_prec);
            maybe_paren(format!("{lhs_text} {} {rhs_text}", op_text(*op)), prec, parent_prec)
        }
        Expr::IsNull { expr, negated } => {
            let text = if *negated {
                format!("{} IS NOT NULL", render_expr(expr, 6))
            } else {
                format!("{} IS NULL", render_expr(expr, 6))
            };
            maybe_paren(text, 5, parent_prec)
        }
        Expr::List(items) => {
            format!("[{}]", items.iter().map(|e| render_expr(e, 0)).collect::<Vec<_>>().join(", "))
        }
        Expr::Map(entries) => {
            let body = entries
                .iter()
                .map(|(k, v)| format!("{k}: {}", render_expr(v, 0)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{{body}}}")
        }
        Expr::FunctionCall { name, args } => {
            format!(
                "{name}({})",
                args.iter().map(|a| render_expr(a, 0)).collect::<Vec<_>>().join(", ")
            )
        }
        Expr::AggregateCall { func, distinct, arg } => {
            if *distinct {
                format!("{}(DISTINCT {})", func.name(), render_expr(arg, 0))
            } else {
                format!("{}({})", func.name(), render_expr(arg, 0))
            }
        }
        Expr::CountStar { distinct } => {
            if *distinct {
                "COUNT(DISTINCT *)".to_string()
            } else {
                "COUNT(*)".to_string()
            }
        }
        Expr::Exists(query) => format!("EXISTS {{ {} }}", query_to_string(query)),
        Expr::Case { branches, otherwise } => {
            let mut out = String::from("CASE");
            for (cond, value) in branches {
                out.push_str(&format!(
                    " WHEN {} THEN {}",
                    render_expr(cond, 0),
                    render_expr(value, 0)
                ));
            }
            if let Some(e) = otherwise {
                out.push_str(&format!(" ELSE {}", render_expr(e, 0)));
            }
            out.push_str(" END");
            out
        }
    }
}

fn maybe_paren(text: String, prec: u8, parent_prec: u8) -> String {
    if prec < parent_prec {
        format!("({text})")
    } else {
        text
    }
}

fn literal_to_string(lit: &Literal) -> String {
    match lit {
        Literal::Integer(v) => v.to_string(),
        Literal::Float(v) => {
            // Keep a decimal point so the value re-lexes as a float.
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Literal::String(s) => {
            let escaped = s.replace('\\', "\\\\").replace('\'', "\\'");
            format!("'{escaped}'")
        }
        Literal::Boolean(true) => "TRUE".to_string(),
        Literal::Boolean(false) => "FALSE".to_string(),
        Literal::Null => "NULL".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    /// Helper: parse, print, re-parse, and require identical ASTs.
    fn round_trip(text: &str) {
        let first = parse_query(text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
        let printed = query_to_string(&first);
        let second = parse_query(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(first, second, "round trip mismatch:\n  in:  {text}\n  out: {printed}");
    }

    #[test]
    fn round_trips_core_queries() {
        round_trip("MATCH (n:Person) RETURN n.name");
        round_trip("MATCH (a)-[r:KNOWS]->(b) WHERE a.age > 10 RETURN b");
        round_trip("MATCH (a)<-[:READ]-(b), (c)-[x]-(d) RETURN a, d");
        round_trip("OPTIONAL MATCH (a)-[r *1..3]->(b) RETURN r");
        round_trip("MATCH (n) RETURN DISTINCT n ORDER BY n.age DESC SKIP 1 LIMIT 2");
        round_trip("MATCH (n) WITH n.name AS name WHERE name <> 'x' RETURN name");
        round_trip("UNWIND [1, 2, 3] AS x RETURN x");
        round_trip("MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b");
        round_trip("MATCH (a) RETURN a UNION MATCH (b) RETURN b");
        round_trip("MATCH (n) RETURN COUNT(*), SUM(n.age), COLLECT(DISTINCT n.name)");
        round_trip("MATCH (n {age: 1}) WHERE EXISTS { MATCH (n)-[]->(m) RETURN m } RETURN n");
        round_trip("MATCH p = (a)-->(b) RETURN p");
        round_trip("MATCH (n) RETURN CASE WHEN n.a > 1 THEN 'x' ELSE 'y' END");
        round_trip("MATCH (n) WHERE n.x IS NOT NULL AND NOT n.y = 2 RETURN *");
        round_trip("MATCH (n:A:B {p: 'q'})-[r:X|Y {w: 2}]->(m) RETURN n, r, m");
    }

    #[test]
    fn round_trips_operator_grouping() {
        round_trip("MATCH (n) WHERE (n.a + n.b) * n.c = 1 RETURN n");
        round_trip("MATCH (n) WHERE n.a = 1 OR n.b = 2 AND n.c = 3 RETURN n");
        round_trip("MATCH (n) WHERE (n.a = 1 OR n.b = 2) AND n.c = 3 RETURN n");
        round_trip("MATCH (n) WHERE NOT (n.a = 1 OR n.b = 2) RETURN n");
        round_trip("MATCH (n) RETURN n.a - (n.b - n.c)");
        round_trip("MATCH (n) RETURN n.a - n.b - n.c");
    }

    #[test]
    fn prints_expected_text() {
        let q = parse_query("match (n:Person {age: 59}) where n.name='X' return n.name as name")
            .unwrap();
        assert_eq!(
            query_to_string(&q),
            "MATCH (n:Person {age: 59}) WHERE n.name = 'X' RETURN n.name AS name"
        );
    }

    #[test]
    fn prints_relationship_variants() {
        let q = parse_query("MATCH (a)-[*]->(b)<-[r:X|Y]-(c)--(d) RETURN a").unwrap();
        assert_eq!(query_to_string(&q), "MATCH (a)-[*]->(b)<-[r:X|Y]-(c)--(d) RETURN a");
    }

    #[test]
    fn prints_float_and_string_literals_relexably() {
        round_trip("MATCH (n) WHERE n.x = 2.0 AND n.y = 'it\\'s' RETURN n");
    }
}
