//! Differential and determinism tests of the oracle stack (PRs 3–5):
//!
//! * the adjacency-indexed pattern matcher must return results identical to
//!   the linear-scan baseline (`matching::scan`) — on generator-produced
//!   graphs under a PRNG-driven property harness, and on every dataset pair;
//! * the flat interned-symbol row representation must return results
//!   identical to the map-backed baseline (`Evaluator::map_rows`) — under
//!   the same property harness over rewritten and mutated query pairs, and
//!   on every dataset pair;
//! * the compiled `SymId`-native query plans must return results identical
//!   to the name-resolving AST interpreter
//!   (`Evaluator::interpret_patterns`) — under the same property harness,
//!   and across **all eight** evaluator configurations (compiled × matching
//!   × row representation) on every dataset pair;
//! * the parallel counterexample search must reach the same verdict as the
//!   sequential search (a witness iff one exists, not necessarily the same
//!   graph index).
//!
//! The property harness is hand-rolled (no crates.io access, so `proptest`
//! is unavailable): a deterministic PRNG drives case generation and every
//! failure message carries the inputs needed to reproduce it.

use cypher_parser::parse_and_check;
use graphqe::counterexample::{find_counterexample, find_counterexample_parallel};
use graphqe::SearchConfig;
use property_graph::rng::DetRng;
use property_graph::{
    evaluate_query, evaluate_query_interpreted, evaluate_query_map_rows, evaluate_query_scan,
    Evaluator, GeneratorConfig, GraphGenerator, PropertyGraph,
};

/// Evaluates `query` on `graph` through both matching paths and asserts the
/// results are identical — not merely bag-equal: the indexed path must
/// preserve the scan's enumeration order, which `LIMIT` without `ORDER BY`
/// can observe.
fn assert_paths_agree(graph: &PropertyGraph, query_text: &str, context: &str) {
    let Ok(query) = parse_and_check(query_text) else { return };
    let indexed = evaluate_query(graph, &query);
    let scanned = evaluate_query_scan(graph, &query);
    match (indexed, scanned) {
        (Ok(indexed), Ok(scanned)) => {
            assert!(
                indexed.ordered_equal(&scanned),
                "indexed and scan matching diverged ({context}) on query `{query_text}` \
                 over graph:\n{graph}\nindexed: {indexed}\nscan: {scanned}"
            );
        }
        (indexed, scanned) => assert_eq!(
            indexed.is_err(),
            scanned.is_err(),
            "one path errored ({context}) on query `{query_text}`"
        ),
    }
}

/// PRNG-driven differential property test: random generator-produced graphs
/// against a pool of queries exercising every candidate-enumeration shape
/// (labels, directions, undirected merges, self-loops via the generator,
/// property constraints, variable-length paths, injectivity).
#[test]
fn indexed_matching_is_identical_to_scan_on_random_graphs() {
    const QUERIES: &[&str] = &[
        "MATCH (n) RETURN n",
        "MATCH (n:Person) RETURN n",
        "MATCH (n:Person:Book) RETURN n",
        "MATCH (n {p1: 1}) RETURN n",
        "MATCH (n:Person {name: 'Alice'}) RETURN n.name",
        "MATCH (a)-[r]->(b) RETURN a, b",
        "MATCH (a)<-[r:READ]-(b) RETURN a",
        "MATCH (a)-[r:READ]-(b) RETURN r",
        "MATCH (a)-[r:READ|WRITE]->(b) RETURN b",
        "MATCH (a)-[r {date: 1}]->(b) RETURN a",
        "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1, p2",
        "MATCH (a:Person)-[:READ]->(b), (a)-[:KNOWS]->(c) RETURN a, b, c",
        "MATCH (x)-[*1..3]->(y) RETURN y",
        "MATCH (x)-[:KNOWS *1..2]-(y) RETURN x",
        "MATCH p = (a)-[:READ]->(b) RETURN p",
        "MATCH (a)-[r]->(b) WHERE a.age > 2 RETURN a.name, b.p1",
        "MATCH (n) RETURN n.p1 LIMIT 3",
        "MATCH (n) RETURN DISTINCT n.p1",
        "MATCH (a)-[r]->(a) RETURN a",
    ];
    let mut rng = DetRng::seed_from_u64(0x0D15_EA5E);
    let mut cases = 0;
    while cases < 60 {
        let seed = rng.next_u64();
        let mut generator = GraphGenerator::new(seed);
        let graph = generator.generate();
        let query = QUERIES[rng.range_usize(0, QUERIES.len())];
        assert_paths_agree(&graph, query, &format!("graph seed {seed}"));
        cases += 1;
    }
    // The deterministic seed graphs of the counterexample pool, too.
    for query in QUERIES {
        assert_paths_agree(&PropertyGraph::new(), query, "empty graph");
        assert_paths_agree(&PropertyGraph::paper_example(), query, "paper example");
    }
}

/// The acceptance-criterion suite: for **every** pair of both datasets, both
/// queries evaluate identically through the indexed and scan matchers over
/// graphs drawn from the pair's own vocabulary (the same distribution the
/// counterexample search explores).
#[test]
fn indexed_vs_scan_differential_on_every_dataset_pair() {
    let pairs: Vec<_> = cyeqset::cyeqset().into_iter().chain(cyeqset::cyneqset()).collect();
    assert!(pairs.len() > 250, "datasets unexpectedly small: {}", pairs.len());
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(0xFEED, vocabulary.clone()).generate_many(4));
        graphs.extend(
            GraphGenerator::with_config(
                0xFEED + 1,
                GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
            )
            .generate_many(2),
        );
        for graph in &graphs {
            assert_paths_agree(graph, &pair.left, "dataset pair, left");
            assert_paths_agree(graph, &pair.right, "dataset pair, right");
        }
    }
}

/// Evaluates `query` on `graph` under both row representations (flat
/// interned-symbol rows vs the map-backed oracle) and asserts identical
/// results — ordered equality, which subsumes the "identical sorted row
/// bags" contract: row order is representation-independent by construction.
fn assert_row_reprs_agree(graph: &PropertyGraph, query_text: &str, context: &str) {
    let Ok(query) = parse_and_check(query_text) else { return };
    let flat = evaluate_query(graph, &query);
    let map = evaluate_query_map_rows(graph, &query);
    match (flat, map) {
        (Ok(flat), Ok(map)) => {
            assert_eq!(
                flat.columns, map.columns,
                "row representations disagree on columns ({context}) for `{query_text}`"
            );
            assert!(
                flat.ordered_equal(&map),
                "flat and map rows diverged ({context}) on query `{query_text}` over \
                 graph:\n{graph}\nflat: {flat}\nmap: {map}"
            );
            // And the sorted bags (what the counterexample oracle compares)
            // agree too, explicitly.
            assert_eq!(
                flat.sorted_rows(),
                map.sorted_rows(),
                "sorted row bags diverged ({context}) on `{query_text}`"
            );
        }
        (flat, map) => assert_eq!(
            flat.is_err(),
            map.is_err(),
            "one row representation errored ({context}) on query `{query_text}`"
        ),
    }
}

/// Query pool for the row-representation property test: the dataset bases
/// the rewrite/mutation machinery understands.
const ROW_REPR_BASES: &[&str] = &[
    "MATCH (a:Person)-[r:READ]->(b:Book) RETURN a.name, b.title",
    "MATCH (a:Person)-[r1:READ]->(b)<-[r2:WRITE]-(c) WHERE r1 <> r2 RETURN c.name",
    "MATCH (a)-[r]->(b) WHERE a.age > 2 AND b.age < 5 RETURN a, b",
    "MATCH (u:User)-[f:FOLLOWS]->(v:User) WHERE v.age > 1 RETURN u.name",
    "MATCH (a:Tag)<-[x:IN]-(b) RETURN b.p1",
    "MATCH (p:Person)-[:READ]->(b) RETURN DISTINCT b.title",
    "MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 2",
    "MATCH (n) OPTIONAL MATCH (n)-[r]->(m) RETURN n, r",
    "MATCH (p:Person)-[:READ]->(b) RETURN b.title, COUNT(*) ORDER BY b.title",
];

/// PRNG-driven property differential of the two row representations over
/// rewritten (equivalence-preserving) and mutated (equivalence-breaking)
/// query pairs: both sides of every pair must evaluate identically under
/// flat and map rows, on graphs drawn from the pair's own vocabulary.
#[test]
fn flat_rows_match_map_rows_on_rewritten_and_mutated_pairs() {
    let mut rng = DetRng::seed_from_u64(0xF1A7_0B5E);
    let mut cases = 0;
    while cases < 36 {
        let base = ROW_REPR_BASES[rng.range_usize(0, ROW_REPR_BASES.len())];
        // Half the cases take an equivalence-preserving rewrite, half an
        // equivalence-breaking mutation; either way both representations
        // must agree on both queries of the pair.
        let variant = if rng.range_usize(0, 2) == 0 {
            let rewrites = cyeqset::rewrite::all_rewrites(base);
            if rewrites.is_empty() {
                continue;
            }
            rewrites[rng.range_usize(0, rewrites.len())].1.clone()
        } else {
            match cyeqset::mutate::mutate(base, rng.range_usize(0, 5)) {
                Some((_, mutated)) => mutated,
                None => continue,
            }
        };
        cases += 1;
        let seed = rng.next_u64();
        let (Ok(q1), Ok(q2)) = (parse_and_check(base), parse_and_check(&variant)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(seed, vocabulary).generate_many(3));
        for graph in &graphs {
            let context = format!("graph seed {seed}");
            assert_row_reprs_agree(graph, base, &context);
            assert_row_reprs_agree(graph, &variant, &context);
        }
    }
}

/// The acceptance-criterion suite for the flat rows: for **every** pair of
/// both datasets, both queries evaluate identically under the flat and
/// map-backed row representations over graphs drawn from the pair's own
/// vocabulary — and the scan-matching combination agrees as well, so the
/// evaluator's two differential axes (matching path × row representation)
/// are covered together.
#[test]
fn flat_vs_map_rows_differential_on_every_dataset_pair() {
    let pairs: Vec<_> = cyeqset::cyeqset().into_iter().chain(cyeqset::cyneqset()).collect();
    assert!(pairs.len() > 250, "datasets unexpectedly small: {}", pairs.len());
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(0xF1A7, vocabulary.clone()).generate_many(3));
        graphs.extend(
            GraphGenerator::with_config(
                0xF1A7 + 1,
                GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
            )
            .generate_many(2),
        );
        for graph in &graphs {
            assert_row_reprs_agree(graph, &pair.left, "dataset pair, left");
            assert_row_reprs_agree(graph, &pair.right, "dataset pair, right");
        }
    }
}

/// The eight evaluator configurations (compiled × matching path × row
/// representation) all agree on a query mix that exercises every row
/// operation.
#[test]
fn all_eight_evaluator_configurations_agree() {
    let queries = [
        "MATCH (p1)-[x]->(b)<-[y]-(p2) RETURN p1, p2",
        "MATCH (x)-[*1..3]->(y) RETURN y",
        "MATCH p = (a)-[:READ]->(b) RETURN p",
        "MATCH (n) RETURN DISTINCT n.p1",
        "MATCH (a)-[r]->(b) WHERE a.age > 2 RETURN a.name, b.p1 ORDER BY a.name",
        "UNWIND [1, 2, 2] AS x RETURN x, COUNT(*)",
        "MATCH (n) OPTIONAL MATCH (n)-[r:READ]->(m) RETURN n, r",
    ];
    let mut graphs = vec![PropertyGraph::paper_example()];
    graphs.extend(GraphGenerator::new(0x4C0_FFEE).generate_many(6));
    for graph in &graphs {
        for text in queries {
            let Ok(query) = parse_and_check(text) else { continue };
            let reference = evaluate_query(graph, &query).unwrap();
            for interpret_patterns in [false, true] {
                for scan_matching in [false, true] {
                    for map_rows in [false, true] {
                        let evaluator = Evaluator {
                            scan_matching,
                            map_rows,
                            interpret_patterns,
                            ..Evaluator::new()
                        };
                        let result = evaluator.evaluate(graph, &query).unwrap();
                        assert!(
                            reference.ordered_equal(&result),
                            "configuration (interpret={interpret_patterns}, \
                             scan={scan_matching}, map={map_rows}) diverged on `{text}` \
                             over {graph}"
                        );
                    }
                }
            }
        }
    }
}

/// Evaluates `query` on `graph` through the compiled-plan path and the
/// name-resolving interpreter and asserts identical results — ordered
/// equality, like the other two differential axes.
fn assert_plan_paths_agree(graph: &PropertyGraph, query_text: &str, context: &str) {
    let Ok(query) = parse_and_check(query_text) else { return };
    let compiled = evaluate_query(graph, &query);
    let interpreted = evaluate_query_interpreted(graph, &query);
    match (compiled, interpreted) {
        (Ok(compiled), Ok(interpreted)) => {
            assert_eq!(
                compiled.columns, interpreted.columns,
                "plan paths disagree on columns ({context}) for `{query_text}`"
            );
            assert!(
                compiled.ordered_equal(&interpreted),
                "compiled and interpreted plans diverged ({context}) on query `{query_text}` \
                 over graph:\n{graph}\ncompiled: {compiled}\ninterpreted: {interpreted}"
            );
        }
        (compiled, interpreted) => assert_eq!(
            compiled.is_err(),
            interpreted.is_err(),
            "one plan path errored ({context}) on query `{query_text}`"
        ),
    }
}

/// PRNG-driven property differential of the compiled `SymId`-native plans
/// against the name-resolving interpreter, over rewritten
/// (equivalence-preserving) and mutated (equivalence-breaking) query pairs —
/// the same harness shape as the row-representation differential, pointed
/// at the third oracle axis.
#[test]
fn compiled_plans_match_interpreter_on_rewritten_and_mutated_pairs() {
    let mut rng = DetRng::seed_from_u64(0xC0DE_9A95);
    let mut cases = 0;
    while cases < 36 {
        let base = ROW_REPR_BASES[rng.range_usize(0, ROW_REPR_BASES.len())];
        let variant = if rng.range_usize(0, 2) == 0 {
            let rewrites = cyeqset::rewrite::all_rewrites(base);
            if rewrites.is_empty() {
                continue;
            }
            rewrites[rng.range_usize(0, rewrites.len())].1.clone()
        } else {
            match cyeqset::mutate::mutate(base, rng.range_usize(0, 5)) {
                Some((_, mutated)) => mutated,
                None => continue,
            }
        };
        cases += 1;
        let seed = rng.next_u64();
        let (Ok(q1), Ok(q2)) = (parse_and_check(base), parse_and_check(&variant)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(seed, vocabulary).generate_many(3));
        for graph in &graphs {
            let context = format!("graph seed {seed}");
            assert_plan_paths_agree(graph, base, &context);
            assert_plan_paths_agree(graph, &variant, &context);
        }
    }
}

/// The acceptance-criterion suite for the plan layer: for **every** pair of
/// both datasets, both queries evaluate identically under all eight
/// evaluator configurations (compiled × matching × row representation) over
/// graphs drawn from the pair's own vocabulary.
#[test]
fn all_configurations_agree_on_every_dataset_pair() {
    let pairs: Vec<_> = cyeqset::cyeqset().into_iter().chain(cyeqset::cyneqset()).collect();
    assert!(pairs.len() > 250, "datasets unexpectedly small: {}", pairs.len());
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let vocabulary = GeneratorConfig::from_queries(&[&q1, &q2]);
        let mut graphs = vec![PropertyGraph::new(), PropertyGraph::paper_example()];
        graphs.extend(GraphGenerator::with_config(0xC0DE, vocabulary.clone()).generate_many(2));
        graphs.extend(
            GraphGenerator::with_config(
                0xC0DE + 1,
                GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
            )
            .generate_many(1),
        );
        for graph in &graphs {
            for query in [&q1, &q2] {
                let reference = evaluate_query(graph, query);
                for interpret_patterns in [false, true] {
                    for scan_matching in [false, true] {
                        for map_rows in [false, true] {
                            let evaluator = Evaluator {
                                scan_matching,
                                map_rows,
                                interpret_patterns,
                                ..Evaluator::new()
                            };
                            let result = evaluator.evaluate(graph, query);
                            match (&reference, result) {
                                (Ok(reference), Ok(result)) => assert!(
                                    reference.ordered_equal(&result),
                                    "configuration (interpret={interpret_patterns}, \
                                     scan={scan_matching}, map={map_rows}) diverged on \
                                     `{}` / `{}`",
                                    pair.left,
                                    pair.right,
                                ),
                                (reference, result) => assert_eq!(
                                    reference.is_err(),
                                    result.is_err(),
                                    "one configuration errored on `{}`",
                                    pair.left,
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Parallel-vs-sequential verdict determinism over dataset-derived pairs:
/// the parallel search must find a witness exactly when the sequential
/// search does. (The witness index may differ; the verdict may not.)
#[test]
fn parallel_search_verdict_matches_sequential_on_dataset_pairs() {
    // A slice of CyNeqSet (witnesses exist) and CyEqSet (pools exhaust).
    let pairs: Vec<_> = cyeqset::cyneqset()
        .into_iter()
        .step_by(17)
        .chain(cyeqset::cyeqset().into_iter().step_by(29))
        .collect();
    assert!(pairs.len() >= 10);
    // A reduced pool keeps the exhausting (equivalent) pairs fast while
    // still covering both verdict outcomes. The search memo is bypassed so
    // the parallel worker/cancellation machinery genuinely runs instead of
    // replaying the sequential outcome.
    let config = SearchConfig { random_graphs: 24, use_memo: false, ..SearchConfig::default() };
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let sequential = find_counterexample(&q1, &q2, &config);
        for threads in [2, 3] {
            let parallel = find_counterexample_parallel(&q1, &q2, &config, threads);
            assert_eq!(
                sequential.is_some(),
                parallel.is_some(),
                "parallel verdict diverged on {} vs {} with {threads} threads",
                pair.left,
                pair.right,
            );
            if let (Some(seq), Some(par)) = (&sequential, &parallel) {
                // Any parallel witness must be a real witness; the smallest
                // possible index is the sequential one.
                assert!(par.pool_index >= seq.pool_index);
                let left = evaluate_query(&par.graph, &q1).unwrap();
                let right = evaluate_query(&par.graph, &q2).unwrap();
                assert!(!left.bag_equal(&right), "parallel witness does not witness");
            }
        }
    }
}
