//! Independent stage-⓪ signature re-inference.
//!
//! The validator for [`crate::cert::Evidence::SignatureMismatch`] recomputes
//! both output signatures from the certificate's source queries and re-checks
//! that they admit no type-compatible column bijection. This module is the
//! checker's own implementation of the prover-side analyzer's typing rules —
//! deliberately written against the raw AST rather than shared with the
//! `graphqe-analyzer` crate, so an inference bug on the prover side surfaces
//! as a certificate rejection instead of being rubber-stamped.
//!
//! The rules mirror the reference evaluator's semantics (claims are only made
//! when they hold on every graph): entities bound by `MATCH` are non-null,
//! `OPTIONAL MATCH` binds nullable unless the variable is already non-null,
//! integer arithmetic is `Integer` but nullable (overflow and division by
//! zero degrade to `NULL`), `COUNT`/`COLLECT` are non-null, and anything
//! uncertain is `Any`/nullable. Where the prover's analyzer raises a definite
//! type error, this mirror simply abstains (`None`) — ill-typed queries never
//! reach a certificate in the first place.

use crate::cert::SigColumn;
use cypher_parser::ast::{
    Aggregate, BinaryOp, Clause, Expr, Literal, Projection, Query, SingleQuery, UnaryOp,
};
use std::collections::BTreeMap;

/// The checker's copy of the analyzer's type lattice, keyed by the stable
/// wire names used in [`SigColumn::ty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigType {
    /// Unknown / mixed (top of the lattice).
    Any,
    /// A graph node.
    Node,
    /// A graph relationship.
    Relationship,
    /// A path.
    Path,
    /// A 64-bit integer.
    Integer,
    /// A 64-bit float.
    Float,
    /// A string.
    String,
    /// A boolean.
    Boolean,
    /// A list.
    List,
    /// A map.
    Map,
}

impl SigType {
    /// The stable wire name (matches the prover analyzer's `Display`).
    pub fn name(self) -> &'static str {
        match self {
            SigType::Any => "Any",
            SigType::Node => "Node",
            SigType::Relationship => "Relationship",
            SigType::Path => "Path",
            SigType::Integer => "Integer",
            SigType::Float => "Float",
            SigType::String => "String",
            SigType::Boolean => "Boolean",
            SigType::List => "List",
            SigType::Map => "Map",
        }
    }

    /// Parses a wire name back into the lattice.
    pub fn from_name(name: &str) -> Option<SigType> {
        Some(match name {
            "Any" => SigType::Any,
            "Node" => SigType::Node,
            "Relationship" => SigType::Relationship,
            "Path" => SigType::Path,
            "Integer" => SigType::Integer,
            "Float" => SigType::Float,
            "String" => SigType::String,
            "Boolean" => SigType::Boolean,
            "List" => SigType::List,
            "Map" => SigType::Map,
            _ => return None,
        })
    }

    fn join(self, other: SigType) -> SigType {
        if self == other {
            self
        } else {
            SigType::Any
        }
    }

    fn compatible(self, other: SigType) -> bool {
        self == SigType::Any
            || other == SigType::Any
            || self == other
            || matches!(
                (self, other),
                (SigType::Integer, SigType::Float) | (SigType::Float, SigType::Integer)
            )
    }

    fn is_numeric(self) -> bool {
        matches!(self, SigType::Integer | SigType::Float)
    }

    fn is_entity(self) -> bool {
        matches!(self, SigType::Node | SigType::Relationship | SigType::Path)
    }
}

/// `(type, nullable)` of one binding or expression.
type Binding = (SigType, bool);

#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: BTreeMap<String, Binding>,
}

impl Scope {
    fn get(&self, name: &str) -> Binding {
        self.bindings.get(name).copied().unwrap_or((SigType::Any, true))
    }
}

/// Re-infers the output signature of a query. `None` when no static
/// signature exists (`RETURN *`, `UNION` arity mismatch) or when the query
/// is one the prover-side analyzer would have rejected as ill-typed.
pub fn infer_signature(query: &Query) -> Option<Vec<SigColumn>> {
    let (first, rest) = query.parts.split_first()?;
    let mut signature = infer_single(first, &Scope::default())??;
    for part in rest {
        let part_sig = infer_single(part, &Scope::default())??;
        if part_sig.len() != signature.len() {
            return None;
        }
        signature = signature
            .iter()
            .zip(part_sig.iter())
            .map(|(a, b)| SigColumn {
                name: a.name.clone(),
                ty: SigType::from_name(&a.ty)
                    .unwrap_or(SigType::Any)
                    .join(SigType::from_name(&b.ty).unwrap_or(SigType::Any))
                    .name()
                    .to_string(),
                nullable: a.nullable || b.nullable,
            })
            .collect();
    }
    Some(signature)
}

/// Whether two recorded signatures admit no type-compatible column bijection
/// (the prover permutes columns, so this is bijection-based, not positional).
/// Returns `None` when a recorded type name is not part of the lattice.
pub fn signatures_discriminate(left: &[SigColumn], right: &[SigColumn]) -> Option<bool> {
    if left.len() != right.len() {
        return Some(true);
    }
    let parse = |columns: &[SigColumn]| {
        columns
            .iter()
            .map(|c| Some((SigType::from_name(&c.ty)?, c.nullable)))
            .collect::<Option<Vec<Binding>>>()
    };
    let left = parse(left)?;
    let right = parse(right)?;
    fn recurse(left: &[Binding], right: &[Binding], used: &mut [bool], position: usize) -> bool {
        if position == left.len() {
            return true;
        }
        for candidate in 0..right.len() {
            let (lt, ln) = left[position];
            let (rt, rn) = right[candidate];
            let compatible = lt.compatible(rt) || (ln && rn);
            if !used[candidate] && compatible {
                used[candidate] = true;
                if recurse(left, right, used, position + 1) {
                    return true;
                }
                used[candidate] = false;
            }
        }
        false
    }
    let mut used = vec![false; right.len()];
    Some(!recurse(&left, &right, &mut used, 0))
}

/// One part's clause walk: the outer `Option` abstains on a typing problem
/// (a query the prover-side analyzer rejects), the inner `Option` is `None`
/// when the part has no statically-known signature (`RETURN *`, or no
/// `RETURN` at all as in `EXISTS` subqueries).
fn infer_single(query: &SingleQuery, outer: &Scope) -> Option<Option<Vec<SigColumn>>> {
    let mut scope = outer.clone();
    let mut signature = None;
    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                let bind = |scope: &mut Scope, var: &str, ty: SigType| {
                    let nullable = m.optional && scope.bindings.get(var).is_none_or(|(_, n)| *n);
                    scope.bindings.insert(var.to_string(), (ty, nullable));
                };
                for pattern in &m.patterns {
                    if let Some(path_var) = &pattern.variable {
                        bind(&mut scope, path_var, SigType::Path);
                    }
                    for node in pattern.nodes() {
                        if let Some(var) = &node.variable {
                            bind(&mut scope, var, SigType::Node);
                        }
                    }
                    for rel in pattern.relationships() {
                        if let Some(var) = &rel.variable {
                            bind(&mut scope, var, SigType::Relationship);
                        }
                    }
                }
                if let Some(predicate) = &m.where_clause {
                    check_predicate(predicate, &scope)?;
                }
            }
            Clause::Unwind(u) => {
                let element = unwind_element_type(&u.expr, &scope)?;
                scope.bindings.insert(u.alias.clone(), element);
            }
            Clause::With(w) => {
                check_bounds(&w.projection, &scope)?;
                scope = projected_scope(&w.projection, &scope)?;
                if let Some(predicate) = &w.where_clause {
                    check_predicate(predicate, &scope)?;
                }
            }
            Clause::Return(p) => {
                check_bounds(p, &scope)?;
                signature = match p.explicit_items() {
                    None => None, // RETURN *: no static signature.
                    Some(items) => {
                        let mut sig = Vec::new();
                        for item in items {
                            let (ty, nullable) = type_of(&item.expr, &scope)?;
                            sig.push(SigColumn {
                                name: item.output_name(),
                                ty: ty.name().to_string(),
                                nullable,
                            });
                        }
                        Some(sig)
                    }
                };
            }
        }
    }
    Some(signature)
}

fn unwind_element_type(expr: &Expr, scope: &Scope) -> Option<Binding> {
    if let Expr::List(items) = expr {
        let mut ty = None;
        let mut nullable = false;
        for item in items {
            if matches!(item, Expr::Literal(Literal::Null)) {
                nullable = true;
                continue;
            }
            let (item_ty, item_nullable) = type_of(item, scope)?;
            nullable |= item_nullable;
            ty = Some(match ty {
                None => item_ty,
                Some(acc) => SigType::join(acc, item_ty),
            });
        }
        return Some((ty.unwrap_or(SigType::Any), nullable));
    }
    let (ty, _) = type_of(expr, scope)?;
    match ty {
        SigType::List | SigType::Any => Some((SigType::Any, true)),
        _ => None, // Definitely not a list: the analyzer rejects this query.
    }
}

fn check_bounds(projection: &Projection, scope: &Scope) -> Option<()> {
    for order in &projection.order_by {
        type_of(&order.expr, scope)?;
    }
    for expr in [projection.skip.as_ref(), projection.limit.as_ref()].into_iter().flatten() {
        let (ty, _) = type_of(expr, scope)?;
        if !matches!(ty, SigType::Integer | SigType::Any) {
            return None;
        }
    }
    Some(())
}

fn projected_scope(projection: &Projection, current: &Scope) -> Option<Scope> {
    match projection.explicit_items() {
        None => Some(current.clone()), // WITH *
        Some(items) => {
            let mut scope = Scope::default();
            for item in items {
                let binding = type_of(&item.expr, current)?;
                scope.bindings.insert(item.output_name(), binding);
            }
            Some(scope)
        }
    }
}

fn check_predicate(expr: &Expr, scope: &Scope) -> Option<()> {
    let (ty, _) = type_of(expr, scope)?;
    if !matches!(ty, SigType::Boolean | SigType::Any) {
        return None;
    }
    Some(())
}

fn type_of(expr: &Expr, scope: &Scope) -> Option<Binding> {
    Some(match expr {
        Expr::Literal(Literal::Integer(_)) => (SigType::Integer, false),
        Expr::Literal(Literal::Float(_)) => (SigType::Float, false),
        Expr::Literal(Literal::String(_)) => (SigType::String, false),
        Expr::Literal(Literal::Boolean(_)) => (SigType::Boolean, false),
        Expr::Literal(Literal::Null) => (SigType::Any, true),
        Expr::Variable(name) => scope.get(name),
        Expr::Parameter(_) => (SigType::Any, true),
        Expr::Property(base, _) => {
            type_of(base, scope)?;
            (SigType::Any, true)
        }
        Expr::Unary(op, inner) => {
            let (ty, nullable) = type_of(inner, scope)?;
            match op {
                UnaryOp::Pos => (ty, nullable),
                UnaryOp::Neg => {
                    if ty.is_entity() || matches!(ty, SigType::Boolean | SigType::Map) {
                        return None;
                    }
                    match ty {
                        SigType::Integer => (SigType::Integer, true),
                        SigType::Float => (SigType::Float, nullable),
                        _ => (SigType::Any, true),
                    }
                }
                UnaryOp::Not => {
                    if !matches!(ty, SigType::Boolean | SigType::Any) {
                        return None;
                    }
                    (SigType::Boolean, if ty == SigType::Boolean { nullable } else { true })
                }
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let left = type_of(lhs, scope)?;
            let right = type_of(rhs, scope)?;
            binary_type(*op, left, right)?
        }
        Expr::IsNull { expr, .. } => {
            type_of(expr, scope)?;
            (SigType::Boolean, false)
        }
        Expr::List(items) => {
            for item in items {
                type_of(item, scope)?;
            }
            (SigType::List, false)
        }
        Expr::Map(entries) => {
            for (_, value) in entries {
                type_of(value, scope)?;
            }
            (SigType::Map, false)
        }
        Expr::FunctionCall { name, args } => {
            let mut arg_types = Vec::new();
            for arg in args {
                arg_types.push(type_of(arg, scope)?);
            }
            function_type(name, &arg_types)
        }
        Expr::AggregateCall { func, arg, .. } => {
            let arg_type = type_of(arg, scope)?;
            aggregate_type(*func, arg_type)
        }
        Expr::CountStar { .. } => (SigType::Integer, false),
        Expr::Exists(query) => {
            for part in &query.parts {
                infer_single(part, scope)?;
            }
            (SigType::Boolean, false)
        }
        Expr::Case { branches, otherwise } => {
            let mut ty = None;
            let mut nullable = otherwise.is_none();
            for (cond, value) in branches {
                check_predicate(cond, scope)?;
                let (value_ty, value_nullable) = type_of(value, scope)?;
                nullable |= value_nullable;
                ty = Some(match ty {
                    None => value_ty,
                    Some(acc) => SigType::join(acc, value_ty),
                });
            }
            if let Some(e) = otherwise {
                let (value_ty, value_nullable) = type_of(e, scope)?;
                nullable |= value_nullable;
                ty = Some(match ty {
                    None => value_ty,
                    Some(acc) => SigType::join(acc, value_ty),
                });
            }
            (ty.unwrap_or(SigType::Any), nullable)
        }
    })
}

fn binary_type(op: BinaryOp, (lt, ln): Binding, (rt, rn): Binding) -> Option<Binding> {
    let nullable = ln || rn;
    let numeric_ok = |strings_and_lists_ok: bool| {
        for ty in [lt, rt] {
            let bad = ty.is_entity()
                || matches!(ty, SigType::Boolean | SigType::Map)
                || (!strings_and_lists_ok && matches!(ty, SigType::String | SigType::List));
            if bad {
                return None;
            }
        }
        Some(())
    };
    Some(match op {
        BinaryOp::Add => {
            numeric_ok(true)?;
            match (lt, rt) {
                (SigType::Integer, SigType::Integer) => (SigType::Integer, true),
                (SigType::String, SigType::String) => (SigType::String, nullable),
                (SigType::List, SigType::List) => (SigType::List, nullable),
                (a, b) if a.is_numeric() && b.is_numeric() => (SigType::Float, nullable),
                _ => (SigType::Any, true),
            }
        }
        BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            numeric_ok(false)?;
            match (lt, rt) {
                (SigType::Integer, SigType::Integer) => (SigType::Integer, true),
                (a, b) if a.is_numeric() && b.is_numeric() => (SigType::Float, nullable),
                _ => (SigType::Any, true),
            }
        }
        BinaryOp::Pow => {
            numeric_ok(false)?;
            if lt.is_numeric() && rt.is_numeric() {
                (SigType::Float, nullable)
            } else {
                (SigType::Float, true)
            }
        }
        BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
            for ty in [lt, rt] {
                if !matches!(ty, SigType::Boolean | SigType::Any) {
                    return None;
                }
            }
            (SigType::Boolean, nullable)
        }
        BinaryOp::Eq
        | BinaryOp::Neq
        | BinaryOp::Lt
        | BinaryOp::Le
        | BinaryOp::Gt
        | BinaryOp::Ge => (SigType::Boolean, nullable),
        BinaryOp::In | BinaryOp::StartsWith | BinaryOp::EndsWith | BinaryOp::Contains => {
            (SigType::Boolean, true)
        }
    })
}

fn function_type(name: &str, args: &[Binding]) -> Binding {
    use cypher_parser::BuiltinFunction as F;
    let arg = |i: usize| args.get(i).copied().unwrap_or((SigType::Any, true));
    let Some(function) = F::from_name(name) else { return (SigType::Any, true) };
    match function {
        F::Id => match arg(0) {
            (SigType::Node | SigType::Relationship, false) => (SigType::Integer, false),
            _ => (SigType::Any, true),
        },
        F::Labels => match arg(0) {
            (SigType::Node, false) => (SigType::List, false),
            _ => (SigType::Any, true),
        },
        F::Type => match arg(0) {
            (SigType::Relationship, false) => (SigType::String, false),
            _ => (SigType::Any, true),
        },
        F::Size => match arg(0) {
            (SigType::List | SigType::String, false) => (SigType::Integer, false),
            _ => (SigType::Any, true),
        },
        F::Length => match arg(0) {
            (SigType::Path | SigType::List | SigType::String, false) => (SigType::Integer, false),
            _ => (SigType::Any, true),
        },
        F::Head | F::Last | F::Index => (SigType::Any, true),
        F::Abs => match arg(0) {
            (SigType::Integer, false) => (SigType::Integer, false),
            (SigType::Float, false) => (SigType::Float, false),
            _ => (SigType::Any, true),
        },
        F::ToUpper | F::ToLower => match arg(0) {
            (SigType::String, false) => (SigType::String, false),
            _ => (SigType::Any, true),
        },
        F::Coalesce => {
            let mut ty = None;
            let mut nullable = true;
            for (arg_ty, arg_nullable) in args {
                ty = Some(match ty {
                    None => *arg_ty,
                    Some(acc) => SigType::join(acc, *arg_ty),
                });
                if !arg_nullable {
                    nullable = false;
                    break;
                }
            }
            (ty.unwrap_or(SigType::Any), nullable)
        }
        F::Exists => (SigType::Boolean, false),
        F::StartNode | F::EndNode => match arg(0) {
            (SigType::Relationship, false) => (SigType::Node, false),
            _ => (SigType::Any, true),
        },
    }
}

fn aggregate_type(func: Aggregate, (arg_ty, _): Binding) -> Binding {
    match func {
        Aggregate::Count => (SigType::Integer, false),
        Aggregate::Collect => (SigType::List, false),
        Aggregate::Sum => match arg_ty {
            SigType::Integer => (SigType::Integer, true),
            _ => (SigType::Any, true),
        },
        Aggregate::Min | Aggregate::Max => match arg_ty {
            SigType::Any => (SigType::Any, true),
            ty => (ty, true),
        },
        Aggregate::Avg => (SigType::Float, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;

    fn sig(text: &str) -> Vec<SigColumn> {
        infer_signature(&parse_query(text).expect("syntax")).expect("signature")
    }

    #[test]
    fn mirrors_the_analyzer_on_representative_queries() {
        let s = sig("MATCH (a)-[r]->(b) RETURN a, r, b.age");
        assert_eq!((s[0].ty.as_str(), s[0].nullable), ("Node", false));
        assert_eq!((s[1].ty.as_str(), s[1].nullable), ("Relationship", false));
        assert_eq!((s[2].ty.as_str(), s[2].nullable), ("Any", true));

        let s = sig("UNWIND [1, 2] AS x RETURN x, x + 1, COUNT(*)");
        assert_eq!((s[0].ty.as_str(), s[0].nullable), ("Integer", false));
        assert_eq!((s[1].ty.as_str(), s[1].nullable), ("Integer", true));
        assert_eq!((s[2].ty.as_str(), s[2].nullable), ("Integer", false));
    }

    #[test]
    fn abstains_on_queries_the_analyzer_rejects() {
        assert_eq!(infer_signature(&parse_query("UNWIND 1 AS x RETURN x").unwrap()), None);
        assert_eq!(infer_signature(&parse_query("MATCH (n) WHERE 1 RETURN n").unwrap()), None);
        assert_eq!(infer_signature(&parse_query("MATCH (n) RETURN *").unwrap()), None);
    }

    #[test]
    fn discrimination_is_bijection_based() {
        let col = |ty: &str, nullable: bool| SigColumn {
            name: "c".to_string(),
            ty: ty.to_string(),
            nullable,
        };
        assert_eq!(
            signatures_discriminate(&[col("Integer", false)], &[col("String", false)]),
            Some(true)
        );
        assert_eq!(
            signatures_discriminate(
                &[col("Integer", false), col("String", false)],
                &[col("String", false), col("Integer", false)]
            ),
            Some(false)
        );
        // NULL = NULL: two nullable columns never discriminate.
        assert_eq!(
            signatures_discriminate(&[col("Integer", true)], &[col("String", true)]),
            Some(false)
        );
        // Unknown type names are a schema problem, not a verdict.
        assert_eq!(signatures_discriminate(&[col("Widget", false)], &[col("Any", true)]), None);
    }
}
