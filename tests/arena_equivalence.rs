//! PR 1 acceptance tests: the hash-consed arena normalizer must be a drop-in
//! replacement for the reference tree normalizer — idempotent, and verdict
//! preserving on every CyEqSet / CyNeqSet pair.

use cyeqset::{cyeqset, cyneqset, QueryPair};
use cypher_normalizer::normalize_query;
use cypher_parser::parse_and_check;
use gexpr::{normalize, normalize_tree, GExpr};
use graphqe::GraphQE;
use liastar::{check_equivalence_with_opts, DecideOptions};

/// The G-expressions of every dataset pair that survives stages ① - ③.
fn dataset_gexprs() -> Vec<(String, GExpr)> {
    let mut out = Vec::new();
    for pair in cyeqset().into_iter().chain(cyneqset()) {
        for side in [&pair.left, &pair.right] {
            let Ok(parsed) = parse_and_check(side) else { continue };
            let Ok(built) = gexpr::build_query(&normalize_query(&parsed)) else { continue };
            out.push((side.clone(), built.expr));
        }
    }
    assert!(out.len() > 500, "dataset should produce hundreds of G-expressions");
    out
}

/// The arena normalizer returns exactly what the reference tree normalizer
/// returns, on every G-expression the datasets can produce.
#[test]
fn arena_normalizer_matches_reference_on_all_dataset_pairs() {
    for (query, expr) in dataset_gexprs() {
        let via_arena = normalize(&expr);
        let reference = normalize_tree(&expr);
        assert_eq!(via_arena, reference, "normalizer mismatch for query: {query}");
    }
}

/// Normalization through the arena is idempotent.
#[test]
fn arena_normalizer_is_idempotent_on_all_dataset_pairs() {
    for (query, expr) in dataset_gexprs() {
        let once = normalize(&expr);
        let twice = normalize(&once);
        assert_eq!(once, twice, "arena normalization not idempotent for query: {query}");
    }
}

/// The decision procedure reaches the same verdict through both normalizers
/// on every dataset pair.
#[test]
fn decide_verdicts_identical_across_normalizers() {
    let pairs: Vec<QueryPair> = cyeqset().into_iter().chain(cyneqset()).collect();
    let mut decided = 0;
    for pair in &pairs {
        let (Ok(q1), Ok(q2)) = (parse_and_check(&pair.left), parse_and_check(&pair.right)) else {
            continue;
        };
        let (n1, n2) = (normalize_query(&q1), normalize_query(&q2));
        let (Ok(b1), Ok(b2)) = (gexpr::build_query(&n1), gexpr::build_query(&n2)) else {
            continue;
        };
        let tree = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: true },
        );
        let arena = check_equivalence_with_opts(
            &b1.expr,
            &b2.expr,
            DecideOptions { tree_normalizer: false },
        );
        assert_eq!(tree.0, arena.0, "decision differs on {} vs {}", pair.left, pair.right);
        decided += 1;
    }
    assert!(decided > 200, "most dataset pairs should reach the decision stage: {decided}");
}

/// End-to-end: the full prover (including column permutation mapping and
/// divide-and-conquer, excluding only the normalizer-independent
/// counterexample search) reports the same verdict class with both
/// normalizers on every CyEqSet pair.
#[test]
fn full_prover_verdicts_identical_across_normalizers_on_cyeqset() {
    let arena_prover = GraphQE { search_counterexamples: false, ..GraphQE::new() };
    let tree_prover =
        GraphQE { search_counterexamples: false, use_tree_normalizer: true, ..GraphQE::new() };
    for pair in cyeqset() {
        let a = arena_prover.prove(&pair.left, &pair.right);
        let t = tree_prover.prove(&pair.left, &pair.right);
        assert_eq!(
            a.is_equivalent(),
            t.is_equivalent(),
            "prover verdict differs on {} vs {}",
            pair.left,
            pair.right
        );
    }
}
