//! A hand-rolled Fx-style hasher for the evaluator's hot hash maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs tens
//! of nanoseconds per short string — visible in the symbol table, which
//! hashes a variable name on every row lookup and every plan-time interning
//! step. The multiply-xor scheme below (the Firefox/rustc "FxHash" design,
//! reimplemented because the build environment has no crates.io access)
//! hashes short keys several times faster. It is **not** collision-resistant
//! against adversarial keys; use it only for maps keyed by query-derived
//! names, where an adversary can at worst slow down their own query.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier of the Fx scheme (a 64-bit golden-ratio-derived odd
/// constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor streaming hasher; see the module docs.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut word = [0u8; 8];
            word[..remainder.len()].copy_from_slice(remainder);
            // Fold the length in so "a" and "a\0" (from a hypothetical
            // 9-byte key's tail) cannot collide trivially.
            word[7] = remainder.len() as u8;
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut hasher = FxHasher::default();
        hasher.write(bytes);
        hasher.finish()
    }

    #[test]
    fn distinguishes_close_keys() {
        let samples: Vec<&[u8]> =
            vec![b"", b"a", b"b", b"aa", b"ab", b"n", b"n1", b"n2", b"name", b"names", b"a\0"];
        for (i, a) in samples.iter().enumerate() {
            for (j, b) in samples.iter().enumerate() {
                if i != j {
                    assert_ne!(hash_of(a), hash_of(b), "{a:?} vs {b:?} collide");
                }
            }
        }
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(hash_of(b"variable"), hash_of(b"variable"));
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("n".into(), 1);
        assert_eq!(map.get("n"), Some(&1));
    }
}
