//! Semantic checking of parsed Cypher queries (stage ① of the GraphQE
//! workflow).
//!
//! The paper's prover discards queries with semantic errors before building
//! G-expressions. The two checks named in §III-C are implemented here, plus a
//! couple of closely related scope checks:
//!
//! 1. **Incorrect variable references** — a variable used in `WHERE`,
//!    projections, `ORDER BY` or property maps must be bound by an enclosing
//!    `MATCH`, `UNWIND` or `WITH`.
//! 2. **Incorrect relationship labels** — relationship patterns that share a
//!    variable but declare different label sets are invalid because a
//!    relationship has exactly one label.
//! 3. A variable cannot denote both a node and a relationship.
//! 4. Every top-level single query must end with a `RETURN` clause.
//! 5. **Unknown function names are rejected.** The reference evaluator used
//!    to evaluate unrecognized calls to `NULL`, which can collapse two
//!    inequivalent queries into agreeing `NULL` columns and corrupt the
//!    counterexample oracle's verdicts; admitting only the names the
//!    evaluator models keeps its fallthrough unreachable for checked
//!    queries.
//!
//! Every rejection is a [`Diagnostic`]: a stable machine-readable code, a
//! byte-offset [`Span`] into the query text, a human-readable message and an
//! optional note. When the original source text is available
//! ([`check_semantics_with_source`]), spans are narrowed from the enclosing
//! clause to the offending identifier.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::*;
use crate::functions::BuiltinFunction;
use crate::token::TokenKind;
use crate::Span;

/// A structured, coded diagnostic produced by stage ⓪/① static checks.
///
/// `code` values are stable and machine-readable (clients and the serving
/// wire protocol dispatch on them); `span` is a byte-offset range into the
/// query text (a dummy `0..0` span when no source position is known).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`undefined_variable`,
    /// `unknown_function`, `binding_conflict`,
    /// `relationship_label_conflict`, `missing_return`, `type_mismatch`).
    pub code: &'static str,
    /// Byte-offset range of the offending construct in the query text.
    pub span: Span,
    /// Human readable message.
    pub message: String,
    /// Optional secondary explanation (rendered after the message).
    pub note: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the given code, span and message.
    pub fn new(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { code, span, message: message.into(), note: None }
    }

    /// Attaches a secondary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = Some(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.message)?;
        if let Some(note) = &self.note {
            write!(f, " (note: {note})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// The historical name of the stage-① error type; kept as an alias so
/// downstream `SemanticError` mentions keep compiling and reading naturally.
pub type SemanticError = Diagnostic;

/// The kind of graph entity a variable is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BindingKind {
    Node,
    Relationship,
    Path,
    /// A value binding introduced by `WITH ... AS x` or `UNWIND ... AS x`.
    Value,
}

/// The set of variables visible at a given point of the query.
#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: BTreeMap<String, BindingKind>,
}

/// Span and source context for diagnostics: the enclosing clause's span plus
/// (when available) the original query text for identifier-precise narrowing.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    source: Option<&'a str>,
    clause: Span,
}

impl<'a> Ctx<'a> {
    fn at(self, clause: Span) -> Self {
        Ctx { clause, ..self }
    }

    /// The span of the first occurrence of identifier `name` inside the
    /// current clause, falling back to the whole clause when the source text
    /// is unavailable or the identifier cannot be located. Function names are
    /// lowercased by the parser, so matching is case-insensitive.
    fn identifier_span(&self, name: &str) -> Span {
        let Some(source) = self.source else { return self.clause };
        let Some(slice) = source.get(self.clause.start..self.clause.end) else {
            return self.clause;
        };
        let Ok(tokens) = crate::lexer::tokenize(slice) else { return self.clause };
        for token in &tokens {
            if let TokenKind::Ident(ident) = &token.kind {
                if ident.eq_ignore_ascii_case(name) {
                    return Span::new(
                        self.clause.start + token.span.start,
                        self.clause.start + token.span.end,
                    );
                }
            }
        }
        self.clause
    }
}

impl Scope {
    fn bind(&mut self, name: &str, kind: BindingKind, ctx: Ctx<'_>) -> Result<(), Diagnostic> {
        match self.bindings.get(name) {
            Some(existing) if *existing != kind && kind != BindingKind::Value => {
                Err(Diagnostic::new(
                    "binding_conflict",
                    ctx.identifier_span(name),
                    format!(
                        "variable `{name}` is already bound as a {existing:?} and cannot be \
                         re-bound as a {kind:?}"
                    ),
                ))
            }
            _ => {
                self.bindings.insert(name.to_string(), kind);
                Ok(())
            }
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }
}

/// Checks a full query for semantic validity (no source text available:
/// diagnostics carry clause-level spans of the parsed AST).
pub fn check_semantics(query: &Query) -> Result<(), Diagnostic> {
    check_semantics_inner(query, None)
}

/// Checks a full query for semantic validity, narrowing diagnostic spans to
/// the offending identifier using the original query text.
pub fn check_semantics_with_source(query: &Query, source: &str) -> Result<(), Diagnostic> {
    check_semantics_inner(query, Some(source))
}

fn check_semantics_inner(query: &Query, source: Option<&str>) -> Result<(), Diagnostic> {
    let ctx = Ctx { source, clause: Span::dummy() };
    for part in &query.parts {
        check_single_query(part, &Scope::default(), true, ctx)?;
    }
    Ok(())
}

fn check_single_query(
    query: &SingleQuery,
    outer: &Scope,
    require_return: bool,
    ctx: Ctx<'_>,
) -> Result<(), Diagnostic> {
    let mut scope = outer.clone();
    // Relationship variable -> label set, for the "one label per relationship"
    // check across the whole single query.
    let mut rel_labels: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                let ctx = ctx.at(m.span);
                // Patterns may refer to variables bound earlier (joins), so we
                // first collect the new bindings, then check property maps and
                // WHERE against the extended scope.
                for pattern in &m.patterns {
                    bind_path_pattern(pattern, &mut scope, &mut rel_labels, ctx)?;
                }
                for pattern in &m.patterns {
                    for node in pattern.nodes() {
                        for (_, value) in &node.properties {
                            check_expr(value, &scope, ctx)?;
                        }
                    }
                    for rel in pattern.relationships() {
                        for (_, value) in &rel.properties {
                            check_expr(value, &scope, ctx)?;
                        }
                    }
                }
                if let Some(predicate) = &m.where_clause {
                    check_expr(predicate, &scope, ctx)?;
                }
            }
            Clause::Unwind(u) => {
                let ctx = ctx.at(u.span);
                check_expr(&u.expr, &scope, ctx)?;
                scope.bind(&u.alias, BindingKind::Value, ctx)?;
            }
            Clause::With(w) => {
                let ctx = ctx.at(w.span);
                check_projection(&w.projection, &scope, ctx)?;
                scope = projected_scope(&w.projection, &scope, ctx)?;
                if let Some(predicate) = &w.where_clause {
                    check_expr(predicate, &scope, ctx)?;
                }
            }
            Clause::Return(p) => {
                check_projection(p, &scope, ctx.at(p.span))?;
            }
        }
    }

    if require_return && !matches!(query.clauses.last(), Some(Clause::Return(_))) {
        let span = match query.clauses.last() {
            Some(Clause::Match(m)) => m.span,
            Some(Clause::Unwind(u)) => u.span,
            Some(Clause::With(w)) => w.span,
            Some(Clause::Return(p)) => p.span,
            None => Span::dummy(),
        };
        return Err(Diagnostic::new(
            "missing_return",
            span,
            "a query must end with a RETURN clause",
        ));
    }
    Ok(())
}

fn bind_path_pattern(
    pattern: &PathPattern,
    scope: &mut Scope,
    rel_labels: &mut BTreeMap<String, Vec<String>>,
    ctx: Ctx<'_>,
) -> Result<(), Diagnostic> {
    if let Some(path_var) = &pattern.variable {
        scope.bind(path_var, BindingKind::Path, ctx)?;
    }
    for node in pattern.nodes() {
        if let Some(var) = &node.variable {
            scope.bind(var, BindingKind::Node, ctx)?;
        }
    }
    for rel in pattern.relationships() {
        if let Some(var) = &rel.variable {
            scope.bind(var, BindingKind::Relationship, ctx)?;
            let mut labels = rel.labels.clone();
            labels.sort();
            match rel_labels.get(var) {
                Some(existing) if *existing != labels => {
                    return Err(Diagnostic::new(
                        "relationship_label_conflict",
                        ctx.identifier_span(var),
                        format!(
                            "relationship variable `{var}` is used with conflicting label sets \
                             {existing:?} and {labels:?}"
                        ),
                    )
                    .with_note("a relationship has exactly one label"));
                }
                _ => {
                    rel_labels.insert(var.clone(), labels);
                }
            }
        }
    }
    Ok(())
}

fn check_projection(
    projection: &Projection,
    scope: &Scope,
    ctx: Ctx<'_>,
) -> Result<(), Diagnostic> {
    if let Some(items) = projection.explicit_items() {
        for item in items {
            check_expr(&item.expr, scope, ctx)?;
        }
    }
    // ORDER BY may refer both to pre-projection variables and to the aliases
    // introduced by the projection itself.
    let extended = projected_scope(projection, scope, ctx)?;
    for order in &projection.order_by {
        if check_expr(&order.expr, scope, ctx).is_err() {
            check_expr(&order.expr, &extended, ctx)?;
        }
    }
    if let Some(skip) = &projection.skip {
        check_expr(skip, scope, ctx)?;
    }
    if let Some(limit) = &projection.limit {
        check_expr(limit, scope, ctx)?;
    }
    Ok(())
}

/// Computes the scope visible after a `WITH` projection.
fn projected_scope(
    projection: &Projection,
    current: &Scope,
    ctx: Ctx<'_>,
) -> Result<Scope, Diagnostic> {
    match projection.explicit_items() {
        // `WITH *` keeps every binding.
        None => Ok(current.clone()),
        Some(items) => {
            let mut scope = Scope::default();
            for item in items {
                match (&item.alias, &item.expr) {
                    (Some(alias), _) => {
                        scope.bind(alias, BindingKind::Value, ctx)?;
                    }
                    // `WITH n` keeps `n` under its own name (and kind).
                    (None, Expr::Variable(name)) => {
                        let kind =
                            current.bindings.get(name).copied().unwrap_or(BindingKind::Value);
                        scope.bind(name, kind, ctx)?;
                    }
                    (None, expr) => {
                        // Un-aliased non-variable projections are addressable
                        // by their textual form (Cypher allows this).
                        scope.bind(
                            &crate::pretty::expr_to_string(expr),
                            BindingKind::Value,
                            ctx,
                        )?;
                    }
                }
            }
            Ok(scope)
        }
    }
}

fn check_expr(expr: &Expr, scope: &Scope, ctx: Ctx<'_>) -> Result<(), Diagnostic> {
    let mut error = None;
    expr.walk(&mut |e| {
        if error.is_some() {
            return;
        }
        match e {
            Expr::Variable(name) if !scope.contains(name) => {
                error = Some(
                    Diagnostic::new(
                        "undefined_variable",
                        ctx.identifier_span(name),
                        format!("reference to undefined variable `{name}`"),
                    )
                    .with_note(
                        "variables must be bound by an enclosing MATCH, UNWIND or WITH \
                         before use",
                    ),
                );
            }
            Expr::FunctionCall { name, .. } if BuiltinFunction::from_name(name).is_none() => {
                error = Some(
                    Diagnostic::new(
                        "unknown_function",
                        ctx.identifier_span(name),
                        format!("unknown function `{name}`"),
                    )
                    .with_note(
                        "the reference evaluator would silently evaluate it to NULL, \
                         corrupting counterexample verdicts",
                    ),
                );
            }
            Expr::Exists(query) => {
                // EXISTS subqueries see the outer scope and do not need a
                // RETURN clause of their own.
                for part in &query.parts {
                    if let Err(e) = check_single_query(part, scope, false, ctx) {
                        error = Some(e);
                    }
                }
            }
            _ => {}
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn check(text: &str) -> Result<(), Diagnostic> {
        check_semantics_with_source(&parse_query(text).expect("syntax"), text)
    }

    #[test]
    fn accepts_valid_queries() {
        assert!(check("MATCH (n:Person) WHERE n.age = 59 RETURN n.name").is_ok());
        assert!(check("MATCH (a)-[r]->(b) RETURN a, r, b").is_ok());
        assert!(check("MATCH (a) WITH a.name AS name RETURN name").is_ok());
        assert!(check("UNWIND [1, 2] AS x RETURN x").is_ok());
        assert!(check("MATCH (a) RETURN a UNION MATCH (b) RETURN b").is_ok());
        assert!(check("MATCH p = (a)-[]->(b) RETURN p").is_ok());
        assert!(check("MATCH (a)-[r:X]->(b) MATCH (c)-[s:X]->(d) RETURN a, c").is_ok());
    }

    #[test]
    fn rejects_undefined_variable_in_where() {
        let text = "MATCH (n) WHERE m.age = 1 RETURN n";
        let err = check(text).unwrap_err();
        assert!(err.message.contains("undefined variable `m`"));
        assert_eq!(err.code, "undefined_variable");
        // The span points at the identifier `m`, not the whole clause.
        assert_eq!(&text[err.span.start..err.span.end], "m");
        assert_eq!(err.span.start, text.find(" m.").unwrap() + 1);
    }

    #[test]
    fn rejects_undefined_variable_in_return() {
        let text = "MATCH (n) RETURN q";
        let err = check(text).unwrap_err();
        assert!(err.message.contains("undefined variable `q`"));
        assert_eq!(err.code, "undefined_variable");
        assert_eq!(&text[err.span.start..err.span.end], "q");
    }

    #[test]
    fn rejects_variable_lost_after_with() {
        // After `WITH a.name AS name`, the binding `a` is no longer in scope.
        let err = check("MATCH (a)-[r]->(b) WITH a.name AS name RETURN r").unwrap_err();
        assert!(err.message.contains("undefined variable `r`"));
    }

    #[test]
    fn with_star_keeps_bindings() {
        assert!(check("MATCH (a)-[r]->(b) WITH * RETURN r").is_ok());
    }

    #[test]
    fn rejects_conflicting_relationship_labels() {
        let text = "MATCH (a)-[r:READ]->(b) MATCH (c)-[r:WRITE]->(d) RETURN a";
        let err = check(text).unwrap_err();
        assert!(err.message.contains("conflicting label sets"));
        assert_eq!(err.code, "relationship_label_conflict");
        // The span falls inside the second MATCH clause, where the conflict
        // was detected.
        assert!(err.span.start >= text.find("MATCH (c)").unwrap());
        assert_eq!(&text[err.span.start..err.span.end], "r");
    }

    #[test]
    fn accepts_same_relationship_variable_with_same_label() {
        assert!(check("MATCH (a)-[r:READ]->(b) MATCH (c)-[r:READ]->(d) RETURN a").is_ok());
    }

    #[test]
    fn rejects_node_and_relationship_kind_clash() {
        let err = check("MATCH (r)-[r]->(b) RETURN b").unwrap_err();
        assert!(err.message.contains("already bound"));
        assert_eq!(err.code, "binding_conflict");
    }

    #[test]
    fn missing_return_is_coded() {
        let err =
            check_semantics(&parse_query("MATCH (n) WITH n AS m").expect("syntax")).unwrap_err();
        assert_eq!(err.code, "missing_return");
    }

    #[test]
    fn exists_subquery_sees_outer_scope() {
        assert!(
            check("MATCH (n) WHERE EXISTS { MATCH (n)-[:KNOWS]->(m) RETURN m } RETURN n").is_ok()
        );
        let err = check(
            "MATCH (n) WHERE EXISTS { MATCH (x)-[:KNOWS]->(m) WHERE y.a = 1 RETURN m } RETURN n",
        )
        .unwrap_err();
        assert!(err.message.contains("undefined variable `y`"));
    }

    #[test]
    fn order_by_can_reference_alias_or_original() {
        assert!(check("MATCH (n) RETURN n.name AS name ORDER BY name").is_ok());
        assert!(check("MATCH (n) RETURN n.name AS name ORDER BY n.age").is_ok());
    }

    #[test]
    fn property_map_expressions_are_checked() {
        let err = check("MATCH (n {age: m.age}) RETURN n").unwrap_err();
        assert!(err.message.contains("undefined variable `m`"));
    }

    #[test]
    fn pattern_can_reference_earlier_binding_in_property_map() {
        assert!(check("MATCH (n) MATCH (m {age: n.age}) RETURN m").is_ok());
    }

    #[test]
    fn diagnostics_without_source_fall_back_to_clause_spans() {
        let text = "MATCH (n) WHERE m.age = 1 RETURN n";
        let query = parse_query(text).expect("syntax");
        let err = check_semantics(&query).unwrap_err();
        assert_eq!(err.code, "undefined_variable");
        // Clause-level fallback: the span covers the whole MATCH clause.
        assert_eq!(err.span, Span::new(0, text.find(" RETURN").unwrap()));
    }

    #[test]
    fn rejects_unknown_function_names() {
        let text = "MATCH (n) WHERE mystery(n) = 1 RETURN n";
        let err = check(text).unwrap_err();
        assert!(err.message.contains("unknown function `mystery`"), "{}", err.message);
        assert_eq!(err.code, "unknown_function");
        // The parser lowercases function names; identifier narrowing is
        // case-insensitive, so the span still lands on the source spelling.
        assert_eq!(&text[err.span.start..err.span.end], "mystery");
        // In projections and nested argument positions too.
        assert!(check("MATCH (n) RETURN frobnicate(n.age)").is_err());
        assert!(check("MATCH (n) RETURN size(frobnicate(n.age))").is_err());
        // The parser lowercases function names, so case variants of known
        // names stay admitted while cased unknowns are still rejected.
        assert!(check("MATCH (n) WHERE SIZE(n.name) > 2 RETURN n").is_ok());
        assert!(check("MATCH (n) WHERE Frobnicate(n.name) > 2 RETURN n").is_err());
        // Inside EXISTS subqueries.
        assert!(check("MATCH (n) WHERE EXISTS { MATCH (n) WHERE bogus(n) = 1 RETURN n } RETURN n")
            .is_err());
    }

    #[test]
    fn accepts_every_evaluator_modelled_function() {
        for call in [
            "id(n)",
            "labels(n)",
            "size(n.name)",
            "length(n.name)",
            "head([n.age])",
            "last([n.age])",
            "abs(n.age)",
            "toUpper(n.name)",
            "toLower(n.name)",
            "coalesce(n.age, 0)",
            "exists(n.age)",
        ] {
            assert!(
                check(&format!("MATCH (n) WHERE {call} = 1 RETURN n")).is_ok(),
                "{call} wrongly rejected"
            );
        }
        // Aggregates are not function calls and stay admitted.
        assert!(check("MATCH (n) RETURN COUNT(n), SUM(n.age)").is_ok());
    }
}
