//! The five mutation rules used to construct CyNeqSet from CyEqSet
//! (§VII-A of the paper): each mutation turns a query into a query that is
//! *not* equivalent to the original.

use cypher_parser::ast::{Clause, Expr, Literal, ProjectionItems, RelDirection, UnionKind};
use cypher_parser::{parse_query, pretty::query_to_string};

/// Mutation 1: flip the direction of the first directed relationship pattern.
pub fn flip_direction(query_text: &str) -> Option<String> {
    let mut query = parse_query(query_text).ok()?;
    for part in &mut query.parts {
        for clause in &mut part.clauses {
            let Clause::Match(m) = clause else { continue };
            for pattern in &mut m.patterns {
                for segment in &mut pattern.segments {
                    let rel = &mut segment.relationship;
                    if rel.direction != RelDirection::Undirected {
                        rel.direction = rel.direction.reversed();
                        return Some(query_to_string(&query));
                    }
                }
            }
        }
    }
    None
}

/// Mutation 2: change the first property value / comparison constant or the
/// first label of the query.
pub fn change_value_or_label(query_text: &str) -> Option<String> {
    let mut query = parse_query(query_text).ok()?;
    // First try to bump an integer literal in a WHERE clause or property map.
    let mut changed = false;
    for part in &mut query.parts {
        for clause in &mut part.clauses {
            if changed {
                break;
            }
            if let Clause::Match(m) = clause {
                if let Some(w) = m.where_clause.take() {
                    // `Expr::map` takes a `Fn`, so track the first-hit flag in
                    // a cell.
                    let hit = std::cell::Cell::new(false);
                    let rewritten = w.map(&|e| match &e {
                        Expr::Literal(Literal::Integer(v)) if !hit.get() => {
                            hit.set(true);
                            Expr::int(v + 1)
                        }
                        _ => e,
                    });
                    changed = hit.get();
                    m.where_clause = Some(rewritten);
                }
                if !changed {
                    for pattern in &mut m.patterns {
                        for node in std::iter::once(&mut pattern.start)
                            .chain(pattern.segments.iter_mut().map(|s| &mut s.node))
                        {
                            if changed {
                                break;
                            }
                            if let Some(label) = node.labels.first_mut() {
                                label.push('X');
                                changed = true;
                            } else if let Some((_, value)) = node.properties.first_mut() {
                                if let Expr::Literal(Literal::Integer(v)) = value {
                                    *value = Expr::int(*v + 1);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if changed {
        Some(query_to_string(&query))
    } else {
        None
    }
}

/// Mutation 3: swap `UNION ALL` and `UNION`.
pub fn toggle_union(query_text: &str) -> Option<String> {
    let mut query = parse_query(query_text).ok()?;
    if query.unions.is_empty() {
        return None;
    }
    for union in &mut query.unions {
        *union = match union {
            UnionKind::All => UnionKind::Distinct,
            UnionKind::Distinct => UnionKind::All,
        };
    }
    Some(query_to_string(&query))
}

/// Mutation 4: change the value of a `LIMIT` / `SKIP` or flip an `ORDER BY`
/// direction.
pub fn change_limit_or_order(query_text: &str) -> Option<String> {
    let mut query = parse_query(query_text).ok()?;
    for part in &mut query.parts {
        for clause in &mut part.clauses {
            let projection = match clause {
                Clause::Return(p) => p,
                Clause::With(w) => &mut w.projection,
                _ => continue,
            };
            if let Some(Expr::Literal(Literal::Integer(v))) = projection.limit.clone() {
                projection.limit = Some(Expr::int(v + 1));
                return Some(query_to_string(&query));
            }
            if let Some(Expr::Literal(Literal::Integer(v))) = projection.skip.clone() {
                projection.skip = Some(Expr::int(v + 1));
                return Some(query_to_string(&query));
            }
        }
    }
    None
}

/// Mutation 5: toggle `DISTINCT` on the final `RETURN`.
pub fn toggle_distinct(query_text: &str) -> Option<String> {
    let mut query = parse_query(query_text).ok()?;
    let part = query.parts.last_mut()?;
    if let Some(Clause::Return(projection)) = part.clauses.last_mut() {
        // Toggling DISTINCT only changes semantics if duplicates are possible;
        // it stays a mutation candidate either way (the dataset construction
        // confirms non-equivalence via the counterexample search).
        projection.distinct = !projection.distinct;
        if let ProjectionItems::Star = projection.items {
            // `RETURN DISTINCT *` over distinct graph entities never has
            // duplicates; prefer a different mutation.
            return None;
        }
        return Some(query_to_string(&query));
    }
    None
}

/// Applies the mutation rules in a deterministic rotation starting at
/// `index % 5`, returning the first one that applies together with its name.
pub fn mutate(query_text: &str, index: usize) -> Option<(String, String)> {
    type MutationRule = (&'static str, fn(&str) -> Option<String>);
    let rules: [MutationRule; 5] = [
        ("flip-direction", flip_direction),
        ("change-value-or-label", change_value_or_label),
        ("toggle-union", toggle_union),
        ("change-limit-or-order", change_limit_or_order),
        ("toggle-distinct", toggle_distinct),
    ];
    for offset in 0..rules.len() {
        let (name, rule) = rules[(index + offset) % rules.len()];
        if let Some(mutated) = rule(query_text) {
            if mutated != query_text {
                return Some((name.to_string(), mutated));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_rule_applies_to_a_matching_query() {
        assert!(flip_direction("MATCH (a)-[r]->(b) RETURN a").is_some());
        assert!(flip_direction("MATCH (a) RETURN a").is_none());
        assert!(change_value_or_label("MATCH (a:Person) WHERE a.x = 1 RETURN a").is_some());
        assert!(toggle_union("MATCH (a) RETURN a UNION ALL MATCH (b) RETURN b").is_some());
        assert!(toggle_union("MATCH (a) RETURN a").is_none());
        assert!(change_limit_or_order("MATCH (a) RETURN a ORDER BY a.x LIMIT 3").is_some());
        assert!(toggle_distinct("MATCH (a) RETURN a.name").is_some());
    }

    #[test]
    fn mutate_always_finds_a_rule_for_typical_queries() {
        for (index, query) in [
            "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
            "MATCH (a) WHERE a.age > 3 RETURN a",
            "MATCH (a) RETURN a.name UNION MATCH (b) RETURN b.name",
        ]
        .iter()
        .enumerate()
        {
            let (_, mutated) = mutate(query, index).expect("mutation applies");
            assert_ne!(&mutated, query);
            assert!(cypher_parser::parse_query(&mutated).is_ok());
        }
    }

    #[test]
    fn mutations_change_results_on_the_paper_graph() {
        use property_graph::{evaluate_query, PropertyGraph};
        let graph = PropertyGraph::paper_example();
        let base = "MATCH (a:Person)-[r:READ]->(b:Book) RETURN a.name";
        let original = evaluate_query(&graph, &parse_query(base).unwrap()).unwrap();
        let (_, mutated) = mutate(base, 0).unwrap();
        let changed = evaluate_query(&graph, &parse_query(&mutated).unwrap()).unwrap();
        assert!(!original.bag_equal(&changed));
    }
}
