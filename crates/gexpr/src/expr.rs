//! The U-semiring G-expression algebra (§IV of the paper).
//!
//! A G-expression `g(t)` denotes, for every tuple `t` and every property
//! graph, a natural number — the multiplicity of `t` in the query result.
//! The algebra is the unbounded semiring of Definition 3 extended with the
//! graph-native functions `Node(e)`, `Rel(e)`, `Lab(e, label)`,
//! `UNBOUNDED(e)` and the endpoint functions `src(e)` / `tgt(e)` (the paper's
//! `out` / `in`).

use std::fmt;

use crate::term::{GAtom, GTerm, VarId};

/// A U-semiring G-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum GExpr {
    /// The additive identity 0.
    Zero,
    /// The multiplicative identity 1.
    One,
    /// A natural-number constant (used for literal multiplicities).
    Const(u64),
    /// The bracket operator `[φ]` applied to an atomic predicate.
    Atom(GAtom),
    /// `Node(e)`: 1 if the entity is a node.
    NodeFn(GTerm),
    /// `Rel(e)`: 1 if the entity is a relationship.
    RelFn(GTerm),
    /// `Lab(e, label)`: 1 if the entity carries the label.
    LabFn(GTerm, String),
    /// `UNBOUNDED(e)`: uninterpreted marker for arbitrary-length paths.
    Unbounded(GTerm),
    /// A product of sub-expressions (`×`, n-ary, commutative).
    Mul(Vec<GExpr>),
    /// A sum of sub-expressions (`+`, n-ary, commutative).
    Add(Vec<GExpr>),
    /// The squash operator `‖·‖` mapping 0 to 0 and any positive value to 1.
    Squash(Box<GExpr>),
    /// The `not(·)` operator mapping 0 to 1 and any positive value to 0.
    Not(Box<GExpr>),
    /// An unbounded summation `Σ_{vars} body` over all graph entities /
    /// values for each variable.
    Sum {
        /// The bound variables.
        vars: Vec<VarId>,
        /// The summed body.
        body: Box<GExpr>,
    },
}

impl GExpr {
    /// Builds a product, flattening nested products and dropping units.
    pub fn mul(factors: Vec<GExpr>) -> GExpr {
        let mut flat = Vec::new();
        for factor in factors {
            match factor {
                GExpr::One => {}
                GExpr::Zero => return GExpr::Zero,
                GExpr::Mul(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GExpr::One,
            1 => flat.into_iter().next().expect("one factor"),
            _ => GExpr::Mul(flat),
        }
    }

    /// Builds a sum, flattening nested sums and dropping zeros.
    pub fn add(terms: Vec<GExpr>) -> GExpr {
        let mut flat = Vec::new();
        for term in terms {
            match term {
                GExpr::Zero => {}
                GExpr::Add(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GExpr::Zero,
            1 => flat.into_iter().next().expect("one term"),
            _ => GExpr::Add(flat),
        }
    }

    /// Builds a squash, collapsing trivial cases.
    pub fn squash(inner: GExpr) -> GExpr {
        match inner {
            GExpr::Zero => GExpr::Zero,
            GExpr::One => GExpr::One,
            GExpr::Squash(e) => GExpr::Squash(e),
            other => GExpr::Squash(Box::new(other)),
        }
    }

    /// Builds a negation, collapsing trivial cases.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: GExpr) -> GExpr {
        match inner {
            GExpr::Zero => GExpr::One,
            GExpr::One => GExpr::Zero,
            other => GExpr::Not(Box::new(other)),
        }
    }

    /// Builds a summation; an empty variable list is the body itself.
    pub fn sum(vars: Vec<VarId>, body: GExpr) -> GExpr {
        if vars.is_empty() {
            return body;
        }
        match body {
            GExpr::Zero => GExpr::Zero,
            GExpr::Sum { vars: inner_vars, body } => {
                let mut all = vars;
                all.extend(inner_vars);
                GExpr::Sum { vars: all, body }
            }
            other => GExpr::Sum { vars, body: Box::new(other) },
        }
    }

    /// An equality bracket `[lhs = rhs]`.
    pub fn eq(lhs: GTerm, rhs: GTerm) -> GExpr {
        GExpr::Atom(GAtom::eq(lhs, rhs))
    }

    /// Collects the free variables of the expression into `out`
    /// (variables bound by an inner `Σ` are not free).
    pub fn free_variables(&self, out: &mut Vec<VarId>) {
        match self {
            GExpr::Zero | GExpr::One | GExpr::Const(_) => {}
            GExpr::Atom(atom) => atom.variables(out),
            GExpr::NodeFn(t) | GExpr::RelFn(t) | GExpr::Unbounded(t) | GExpr::LabFn(t, _) => {
                t.variables(out)
            }
            GExpr::Mul(items) | GExpr::Add(items) => {
                for item in items {
                    item.free_variables(out);
                }
            }
            GExpr::Squash(inner) | GExpr::Not(inner) => inner.free_variables(out),
            GExpr::Sum { vars, body } => {
                let mut inner = Vec::new();
                body.free_variables(&mut inner);
                for v in inner {
                    if !vars.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// Substitutes a (free) variable by a term throughout the expression.
    pub fn substitute(&self, var: VarId, replacement: &GTerm) -> GExpr {
        match self {
            GExpr::Zero | GExpr::One | GExpr::Const(_) => self.clone(),
            GExpr::Atom(atom) => GExpr::Atom(atom.substitute(var, replacement)),
            GExpr::NodeFn(t) => GExpr::NodeFn(t.substitute(var, replacement)),
            GExpr::RelFn(t) => GExpr::RelFn(t.substitute(var, replacement)),
            GExpr::LabFn(t, label) => GExpr::LabFn(t.substitute(var, replacement), label.clone()),
            GExpr::Unbounded(t) => GExpr::Unbounded(t.substitute(var, replacement)),
            GExpr::Mul(items) => {
                GExpr::Mul(items.iter().map(|i| i.substitute(var, replacement)).collect())
            }
            GExpr::Add(items) => {
                GExpr::Add(items.iter().map(|i| i.substitute(var, replacement)).collect())
            }
            GExpr::Squash(inner) => GExpr::Squash(Box::new(inner.substitute(var, replacement))),
            GExpr::Not(inner) => GExpr::Not(Box::new(inner.substitute(var, replacement))),
            GExpr::Sum { vars, body } => {
                if vars.contains(&var) {
                    // The variable is shadowed; nothing to substitute.
                    self.clone()
                } else {
                    GExpr::Sum {
                        vars: vars.clone(),
                        body: Box::new(body.substitute(var, replacement)),
                    }
                }
            }
        }
    }

    /// Renames every variable according to `mapping` (used by the
    /// canonicalizer and the isomorphism matcher). Variables missing from the
    /// mapping are left unchanged. The renaming is applied in a single pass,
    /// so swapping two variables works as expected.
    pub fn rename_variables(&self, mapping: &std::collections::BTreeMap<VarId, VarId>) -> GExpr {
        self.rename_all(&|v| mapping.get(&v).copied().unwrap_or(v))
    }

    /// Renames every variable occurrence — bound and free — with the given
    /// function, in one pass.
    pub fn rename_all(&self, f: &impl Fn(VarId) -> VarId) -> GExpr {
        match self {
            GExpr::Zero | GExpr::One | GExpr::Const(_) => self.clone(),
            GExpr::Atom(atom) => GExpr::Atom(atom.rename_vars(f)),
            GExpr::NodeFn(t) => GExpr::NodeFn(t.rename_vars(f)),
            GExpr::RelFn(t) => GExpr::RelFn(t.rename_vars(f)),
            GExpr::LabFn(t, label) => GExpr::LabFn(t.rename_vars(f), label.clone()),
            GExpr::Unbounded(t) => GExpr::Unbounded(t.rename_vars(f)),
            GExpr::Mul(items) => GExpr::Mul(items.iter().map(|i| i.rename_all(f)).collect()),
            GExpr::Add(items) => GExpr::Add(items.iter().map(|i| i.rename_all(f)).collect()),
            GExpr::Squash(inner) => GExpr::Squash(Box::new(inner.rename_all(f))),
            GExpr::Not(inner) => GExpr::Not(Box::new(inner.rename_all(f))),
            GExpr::Sum { vars, body } => GExpr::Sum {
                vars: vars.iter().map(|v| f(*v)).collect(),
                body: Box::new(body.rename_all(f)),
            },
        }
    }

    /// The largest variable id used anywhere in the expression (free or
    /// bound), or `None` if no variable occurs.
    pub fn max_var(&self) -> Option<VarId> {
        let mut max: Option<VarId> = None;
        self.visit(&mut |e| {
            let mut vars = Vec::new();
            match e {
                GExpr::Atom(a) => a.variables(&mut vars),
                GExpr::NodeFn(t) | GExpr::RelFn(t) | GExpr::Unbounded(t) | GExpr::LabFn(t, _) => {
                    t.variables(&mut vars)
                }
                GExpr::Sum { vars: bound, .. } => vars.extend(bound.iter().copied()),
                _ => {}
            }
            for v in vars {
                max = Some(match max {
                    None => v,
                    Some(m) if v > m => v,
                    Some(m) => m,
                });
            }
        });
        max
    }

    /// Visits every sub-expression (pre-order), including aggregate groups.
    pub fn visit(&self, f: &mut impl FnMut(&GExpr)) {
        f(self);
        match self {
            GExpr::Mul(items) | GExpr::Add(items) => {
                for item in items {
                    item.visit(f);
                }
            }
            GExpr::Squash(inner) | GExpr::Not(inner) => inner.visit(f),
            GExpr::Sum { body, .. } => body.visit(f),
            _ => {}
        }
    }

    /// Returns `true` if the expression is syntactically `Zero`.
    pub fn is_zero(&self) -> bool {
        matches!(self, GExpr::Zero)
    }
}

impl fmt::Display for GExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GExpr::Zero => write!(f, "0"),
            GExpr::One => write!(f, "1"),
            GExpr::Const(v) => write!(f, "{v}"),
            GExpr::Atom(atom) => write!(f, "{atom}"),
            GExpr::NodeFn(t) => write!(f, "Node({t})"),
            GExpr::RelFn(t) => write!(f, "Rel({t})"),
            GExpr::LabFn(t, label) => write!(f, "Lab({t}, {label})"),
            GExpr::Unbounded(t) => write!(f, "UNBOUNDED({t})"),
            GExpr::Mul(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " × ")?;
                    }
                    match item {
                        GExpr::Add(_) => write!(f, "({item})")?,
                        _ => write!(f, "{item}")?,
                    }
                }
                Ok(())
            }
            GExpr::Add(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            GExpr::Squash(inner) => write!(f, "‖{inner}‖"),
            GExpr::Not(inner) => write!(f, "not({inner})"),
            GExpr::Sum { vars, body } => {
                write!(f, "Σ_{{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}({body})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{CmpOp, GConst};
    use std::collections::BTreeMap;

    fn var(i: u32) -> GTerm {
        GTerm::Var(VarId(i))
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(GExpr::mul(vec![GExpr::One, GExpr::NodeFn(var(0))]), GExpr::NodeFn(var(0)));
        assert_eq!(GExpr::mul(vec![GExpr::Zero, GExpr::NodeFn(var(0))]), GExpr::Zero);
        assert_eq!(GExpr::add(vec![GExpr::Zero]), GExpr::Zero);
        assert_eq!(GExpr::add(vec![GExpr::Zero, GExpr::One]), GExpr::One);
        assert_eq!(GExpr::squash(GExpr::Zero), GExpr::Zero);
        assert_eq!(GExpr::squash(GExpr::One), GExpr::One);
        assert_eq!(GExpr::not(GExpr::Zero), GExpr::One);
        assert_eq!(GExpr::not(GExpr::One), GExpr::Zero);
        // Nested products and sums are flattened.
        let nested = GExpr::mul(vec![
            GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(1))]),
            GExpr::NodeFn(var(2)),
        ]);
        match nested {
            GExpr::Mul(items) => assert_eq!(items.len(), 3),
            other => panic!("expected product, got {other}"),
        }
    }

    #[test]
    fn sum_constructor_merges_nested_sums() {
        let inner = GExpr::sum(vec![VarId(1)], GExpr::NodeFn(var(1)));
        let outer = GExpr::sum(vec![VarId(0)], inner);
        match outer {
            GExpr::Sum { vars, .. } => assert_eq!(vars, vec![VarId(0), VarId(1)]),
            other => panic!("expected sum, got {other}"),
        }
        assert_eq!(GExpr::sum(vec![], GExpr::One), GExpr::One);
        assert_eq!(GExpr::sum(vec![VarId(0)], GExpr::Zero), GExpr::Zero);
    }

    #[test]
    fn free_variables_respect_binding() {
        let body =
            GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::eq(var(0), GTerm::prop(var(1), "x"))]);
        let expr = GExpr::sum(vec![VarId(0)], body);
        let mut free = Vec::new();
        expr.free_variables(&mut free);
        assert_eq!(free, vec![VarId(1)]);
    }

    #[test]
    fn substitution_respects_shadowing() {
        let expr = GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0)));
        let substituted = expr.substitute(VarId(0), &GTerm::int(3));
        assert_eq!(substituted, expr);
        let open = GExpr::NodeFn(var(0));
        assert_eq!(open.substitute(VarId(0), &GTerm::int(3)), GExpr::NodeFn(GTerm::int(3)));
    }

    #[test]
    fn rename_variables_handles_swaps() {
        // Swap e0 and e1 — a naive sequential substitution would conflate them.
        let expr = GExpr::mul(vec![
            GExpr::NodeFn(var(0)),
            GExpr::RelFn(var(1)),
            GExpr::eq(var(0), GTerm::prop(var(1), "k")),
        ]);
        let mut mapping = BTreeMap::new();
        mapping.insert(VarId(0), VarId(1));
        mapping.insert(VarId(1), VarId(0));
        let renamed = expr.rename_variables(&mapping);
        let expected = GExpr::mul(vec![
            GExpr::NodeFn(var(1)),
            GExpr::RelFn(var(0)),
            GExpr::eq(var(1), GTerm::prop(var(0), "k")),
        ]);
        assert_eq!(renamed, expected);
    }

    #[test]
    fn rename_variables_renames_bound_occurrences() {
        let expr = GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0)));
        let mut mapping = BTreeMap::new();
        mapping.insert(VarId(0), VarId(5));
        let renamed = expr.rename_variables(&mapping);
        assert_eq!(renamed, GExpr::sum(vec![VarId(5)], GExpr::NodeFn(var(5))));
    }

    #[test]
    fn display_is_readable() {
        let g = GExpr::sum(
            vec![VarId(0)],
            GExpr::mul(vec![
                GExpr::NodeFn(var(0)),
                GExpr::LabFn(var(0), "Person".into()),
                GExpr::Atom(GAtom::Cmp(
                    CmpOp::Eq,
                    GTerm::prop(var(0), "age"),
                    GTerm::Const(GConst::Integer(59)),
                )),
            ]),
        );
        let text = g.to_string();
        assert!(text.contains("Σ_{e0}"));
        assert!(text.contains("Node(e0)"));
        assert!(text.contains("Lab(e0, Person)"));
        assert!(text.contains("[e0.age = 59]"));
    }

    #[test]
    fn max_var_covers_bound_and_free() {
        let expr = GExpr::sum(vec![VarId(4)], GExpr::eq(var(4), GTerm::prop(var(9), "x")));
        assert_eq!(expr.max_var(), Some(VarId(9)));
        assert_eq!(GExpr::One.max_var(), None);
    }
}
