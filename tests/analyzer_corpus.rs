//! Corpus-wide acceptance tests for the stage-⓪ analyzer:
//!
//! 1. the analyzer and the checker's independent signature re-implementation
//!    agree on every query in both corpora (the property the
//!    `signature_mismatch` certificate evidence rests on), and
//! 2. the analyzer never discriminates a pair the prover should find
//!    equivalent — discrimination only ever *prioritizes* counterexample
//!    search, but a false positive here would waste the fast path's budget
//!    on provable pairs.

use cyeqset::{cyeqset, cyneqset};
use cypher_parser::parse_query;

/// The analyzer's signature mapped onto the certificate wire form, or `None`
/// when the query is ill-typed or has no static signature.
fn analyzer_signature(source: &str) -> Option<Vec<graphqe_checker::cert::SigColumn>> {
    let query = parse_query(source).expect("corpus query parses");
    let analysis = graphqe_analyzer::analyze(&query).ok()?;
    analysis.signature.map(|columns| {
        columns
            .into_iter()
            .map(|column| graphqe_checker::cert::SigColumn {
                name: column.name,
                ty: column.ty.to_string(),
                nullable: column.nullable,
            })
            .collect()
    })
}

/// The checker's view of the same query.
fn checker_signature(source: &str) -> Option<Vec<graphqe_checker::cert::SigColumn>> {
    let query = parse_query(source).expect("corpus query parses");
    graphqe_checker::sig::infer_signature(&query)
}

#[test]
fn analyzer_and_checker_signatures_agree_on_the_corpus() {
    let mut queries = Vec::new();
    for pair in cyeqset().into_iter().chain(cyneqset()) {
        queries.push((format!("{}/left", pair.id), pair.left.clone()));
        queries.push((format!("{}/right", pair.id), pair.right.clone()));
    }
    assert!(queries.len() > 500, "corpus unexpectedly small: {}", queries.len());
    let mut signatures = 0usize;
    for (id, source) in queries {
        let analyzer = analyzer_signature(&source);
        let checker = checker_signature(&source);
        assert_eq!(
            analyzer, checker,
            "{id}: analyzer and checker disagree on the signature of {source:?}"
        );
        signatures += usize::from(analyzer.is_some());
    }
    assert!(signatures > 400, "too few inferred signatures to be meaningful: {signatures}");
}

#[test]
fn analyzer_never_discriminates_equivalent_corpus_pairs() {
    for pair in cyeqset() {
        let left = parse_query(&pair.left).expect("corpus query parses");
        let right = parse_query(&pair.right).expect("corpus query parses");
        let (Ok(left), Ok(right)) =
            (graphqe_analyzer::analyze(&left), graphqe_analyzer::analyze(&right))
        else {
            continue;
        };
        if let (Some(left), Some(right)) = (left.signature, right.signature) {
            assert!(
                !graphqe_analyzer::signatures_discriminate(&left, &right),
                "{}: the analyzer discriminates an equivalent pair:\n  {}\n  {}",
                pair.id,
                pair.left,
                pair.right
            );
        }
    }
    // Mechanical rewrites of seed queries must also never discriminate: the
    // rewrite rules are equivalence-preserving by construction.
    let bases = [
        "MATCH (a:Person)-[r:READ]->(b:Book) RETURN a.name, b.title",
        "MATCH (a)-[r]->(b) WHERE a.age > 2 AND b.age < 5 RETURN a, b",
        "MATCH (u:User)-[f:FOLLOWS]->(v:User) WHERE v.age > 1 RETURN u.name",
    ];
    for base in bases {
        let parsed = parse_query(base).expect("base parses");
        let base_sig = graphqe_analyzer::analyze(&parsed).expect("base analyzes").signature;
        for (rule, rewritten) in cyeqset::rewrite::all_rewrites(base) {
            let rewritten_query = parse_query(&rewritten).expect("rewrite parses");
            let sig = graphqe_analyzer::analyze(&rewritten_query)
                .unwrap_or_else(|d| panic!("{rule}: rewrite fails to analyze: {d}"))
                .signature;
            if let (Some(left), Some(right)) = (&base_sig, &sig) {
                assert!(
                    !graphqe_analyzer::signatures_discriminate(left, right),
                    "{rule}: rewrite of {base:?} discriminates: {rewritten:?}"
                );
            }
        }
    }
}
