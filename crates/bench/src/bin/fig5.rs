//! Regenerates Fig. 5: the distribution of proving latency over CyEqSet.
//!
//! Pairs are proved on a single worker: Fig. 5 reports *per-pair* latency,
//! which must stay comparable to the paper's sequential measurements — under
//! an N-way parallel batch every pair's wall-clock would include CPU
//! contention from its neighbours.

#![forbid(unsafe_code)]

use graphqe::GraphQE;
use graphqe_bench::{format_fig5, latency_distribution, run_pairs_with_threads};

fn main() {
    let prover = GraphQE::new();
    let results = run_pairs_with_threads(&prover, cyeqset::cyeqset(), 1);
    let distribution = latency_distribution(&results);
    print!("{}", format_fig5(&distribution, results.len()));
}
