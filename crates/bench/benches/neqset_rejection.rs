//! Benchmark backing the CyNeqSet experiment: cost of rejecting a mutated
//! pair via counterexample search.

use graphqe::GraphQE;
use graphqe_bench::microbench::bench;

fn main() {
    let prover = GraphQE::new();
    println!("neqset/reject_pair");
    bench("direction_flip", 10, || {
        std::hint::black_box(prover.prove(
            "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
            "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
        ));
    });
    bench("distinct_toggle", 10, || {
        std::hint::black_box(prover.prove(
            "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
            "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title",
        ));
    });
}
