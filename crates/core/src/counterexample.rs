//! Counterexample search: certifying non-equivalence with a concrete graph.
//!
//! The paper reports that GraphQE rejects every pair of CyNeqSet by finding
//! `∃t. g1(t) ≠ g2(t)` satisfiable. Because our decision procedure abstracts
//! some features, a SAT answer alone is not a proof of non-equivalence;
//! instead the prover searches for a concrete property graph on which the
//! two queries return different bags — a strictly stronger certificate.
//!
//! ## Ownership and sharing
//!
//! Candidate pools are deterministic functions of `(search config,
//! query-derived vocabulary)`, so they are shared **process-wide**: each
//! pool is an `Arc<Mutex<LazyPool>>` in a sharded `RwLock` map keyed by the
//! interned vocabulary. A pool materializes its graphs *incrementally*: a
//! search pulls graph `i`, and the pool generates graphs up to `i` on
//! demand, keeping everything it generates. Early-exit searches therefore
//! stay lazy (random graphs past the first witness are never generated) and
//! still leave their prefix behind for the next search over the same
//! vocabulary — including the lazily built per-graph adjacency indexes,
//! which get built once per pooled graph for the whole process, not once
//! per search. Graphs are handed out as `Arc<PropertyGraph>` clones, so
//! evaluation runs outside the pool lock.
//!
//! Query plans are shared process-wide too (since PR 8): the plan cache
//! stores immutable `Send + Sync` [`FrozenPlan`] artifacts keyed by query
//! text, and each search thaws a thread-private working view in
//! microseconds — see the cache section below.
//!
//! ## Cancellation protocol of the parallel search
//!
//! [`find_counterexample_parallel`] first probes the deterministic seed
//! graphs sequentially (most non-equivalent pairs separate there — no
//! reason to spawn threads), then lets workers pull the remaining graph
//! indices from a single atomic cursor (dynamic load balancing —
//! evaluation cost varies wildly between the empty seed graph and a dense
//! 9-node random graph); the pool materializes the drawn index on demand
//! under its mutex. The first worker to find a witness stores it under a
//! mutex and raises a relaxed `AtomicBool`; other workers observe the flag
//! between graphs and stop pulling. Workers that are mid-evaluation finish
//! their graph; concurrently discovered witnesses resolve towards the
//! smaller pool index. The **verdict** (witness vs exhausted) is always
//! identical to the sequential search's — a witness at any index is found
//! by whichever worker draws that index, and exhaustion means every index
//! was drawn and cleared. The **identity** of the witness may vary with
//! scheduling: a fast worker can cancel the search before a lower-index
//! witness is drawn. Every reported witness is a valid certificate, and the
//! memo freezes whichever one a process reports first, so repeat
//! certifications within a process are stable.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use cypher_parser::ast::Query;
use property_graph::{
    Evaluator, FrozenPlan, GeneratorConfig, GraphGenerator, PropertyGraph, QueryPlan,
};

use crate::cache::LruMap;
use crate::verdict::Counterexample;

/// Configuration of the counterexample search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of random graphs to try (in addition to the deterministic
    /// seed graphs).
    pub random_graphs: usize,
    /// Seed of the random graph generator.
    pub seed: u64,
    /// Consult (and populate) the process-wide search-result memo. Disabled
    /// by benchmark baselines and tests that need the search machinery to
    /// actually run; the outcome is identical either way.
    pub use_memo: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { random_graphs: 120, seed: 0xC0FFEE, use_memo: true }
    }
}

// ---------------------------------------------------------------------------
// Vocabulary interning and the shared pool cache
// ---------------------------------------------------------------------------

/// Hash-consed generator vocabularies. `GeneratorConfig` carries label, key
/// and constant pools (vectors of strings); interning means a repeated search
/// over the same vocabulary hashes one pointer instead of re-hashing (and
/// [`PoolKey`] construction re-cloning) every vector.
static VOCABULARIES: OnceLock<Mutex<HashSet<Arc<GeneratorConfig>>>> = OnceLock::new();

fn intern_vocabulary(config: GeneratorConfig) -> Arc<GeneratorConfig> {
    let mut interner = VOCABULARIES
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    if let Some(existing) = interner.get(&config) {
        return Arc::clone(existing);
    }
    let interned = Arc::new(config);
    interner.insert(Arc::clone(&interned));
    interned
}

/// The full identity of a candidate pool: search parameters plus the interned
/// query-derived generator vocabulary. Interning makes vocabulary equality a
/// pointer comparison and its hash a pointer hash; distinct configurations
/// can never collide because the interner keys on the full config value.
#[derive(Clone)]
struct PoolKey {
    random_graphs: usize,
    seed: u64,
    vocabulary: Arc<GeneratorConfig>,
}

impl PartialEq for PoolKey {
    fn eq(&self, other: &Self) -> bool {
        self.random_graphs == other.random_graphs
            && self.seed == other.seed
            && Arc::ptr_eq(&self.vocabulary, &other.vocabulary)
    }
}

impl Eq for PoolKey {}

impl Hash for PoolKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.random_graphs.hash(state);
        self.seed.hash(state);
        Arc::as_ptr(&self.vocabulary).hash(state);
    }
}

/// A candidate pool that materializes its deterministic graph sequence on
/// demand and keeps everything it generates. `source: None` means the
/// sequence is exhausted and `graphs` is the complete pool.
struct LazyPool {
    graphs: Vec<Arc<PropertyGraph>>,
    source: Option<Box<dyn Iterator<Item = PropertyGraph> + Send>>,
}

impl LazyPool {
    fn new(config: &SearchConfig, vocabulary: GeneratorConfig) -> LazyPool {
        LazyPool {
            graphs: Vec::new(),
            source: Some(Box::new(candidate_graphs(config, vocabulary))),
        }
    }

    /// The graph at `index`, materializing up to it; `None` once the
    /// sequence is exhausted before `index`.
    fn graph(&mut self, index: usize) -> Option<Arc<PropertyGraph>> {
        while self.graphs.len() <= index {
            match self.source.as_mut()?.next() {
                Some(graph) => self.graphs.push(Arc::new(graph)),
                None => {
                    self.source = None;
                    return None;
                }
            }
        }
        self.graphs.get(index).cloned()
    }
}

/// One shared pool: graphs are pulled under the mutex (cheap — an `Arc`
/// clone, or one graph generation on a cache miss) and evaluated outside it.
type SharedPool = Arc<Mutex<LazyPool>>;

/// Shard count of the pool cache: a small power of two — contention is per
/// vocabulary and the outer map is read-mostly, sharding just keeps
/// unrelated vocabularies from serializing on one lock.
const POOL_SHARDS: usize = 8;

type PoolShard = RwLock<HashMap<PoolKey, SharedPool>>;

/// The candidate pools of the process, shared by every thread. Generation is
/// deterministic, so two searches with the same key explore the exact same
/// graphs; pools cached here carry their materialized prefix *and* the
/// lazily built adjacency indexes of those graphs, so repeated searches skip
/// regeneration and re-indexing alike.
static POOL_CACHE: OnceLock<[PoolShard; POOL_SHARDS]> = OnceLock::new();

fn pool_shard(key: &PoolKey) -> &'static PoolShard {
    let shards = POOL_CACHE.get_or_init(|| std::array::from_fn(|_| RwLock::new(HashMap::new())));
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    &shards[(hasher.finish() as usize) % POOL_SHARDS]
}

/// The shared pool for `key`, creating an empty lazy pool on first use.
fn shared_pool(key: &PoolKey, config: &SearchConfig) -> SharedPool {
    let shard = pool_shard(key);
    if let Some(pool) = shard.read().unwrap_or_else(|poison| poison.into_inner()).get(key) {
        return Arc::clone(pool);
    }
    let mut shard = shard.write().unwrap_or_else(|poison| poison.into_inner());
    Arc::clone(
        shard.entry(key.clone()).or_insert_with(|| {
            Arc::new(Mutex::new(LazyPool::new(config, (*key.vocabulary).clone())))
        }),
    )
}

/// The graph at `index` of the shared pool (see [`LazyPool::graph`]).
fn pool_graph(pool: &SharedPool, index: usize) -> Option<Arc<PropertyGraph>> {
    pool.lock().unwrap_or_else(|poison| poison.into_inner()).graph(index)
}

/// The shared pool for a query pair: derives and interns the vocabulary,
/// then resolves the pool through the sharded cache. Returns the interned
/// vocabulary alongside so callers can store it in the search memo.
fn pool_for(q1: &Query, q2: &Query, config: &SearchConfig) -> (SharedPool, Arc<GeneratorConfig>) {
    let vocabulary = intern_vocabulary(GeneratorConfig::from_queries(&[q1, q2]));
    let key = PoolKey {
        random_graphs: config.random_graphs,
        seed: config.seed,
        vocabulary: Arc::clone(&vocabulary),
    };
    (shared_pool(&key, config), vocabulary)
}

// ---------------------------------------------------------------------------
// The search-result memo
// ---------------------------------------------------------------------------

/// Identity of one completed search: the pretty-printed queries plus the
/// search parameters (the vocabulary is derived from the queries, so it is
/// implied by the key).
type SearchMemoKey = (String, String, usize, u64);

/// Everything needed to reconstruct a witness certificate from the
/// deterministic pool without re-running the queries: the pool index and
/// the differing row counts observed when the witness was found.
#[derive(Clone, Copy)]
struct WitnessSummary {
    pool_index: usize,
    left_rows: usize,
    right_rows: usize,
}

/// The memoized outcome of one search: the witness summary (`None` = pool
/// exhausted without one) plus the interned vocabulary, so a replay
/// resolves its pool without re-deriving the vocabulary from the ASTs.
type SearchMemoValue = (Option<WitnessSummary>, Arc<GeneratorConfig>);

/// Default capacity of the search-result memo: at a few hundred bytes per
/// entry (two pretty-printed queries plus a summary) the bound keeps the
/// memo in the low megabytes while comfortably covering both benchmark
/// datasets many times over.
///
/// The stamp-based LRU machinery itself lives in [`crate::cache::LruMap`]
/// since PR 5 — shared with the stage-① parse cache and the per-thread
/// query-plan cache.
const DEFAULT_SEARCH_MEMO_CAPACITY: usize = 4096;

/// The capacity-bounded LRU memo of completed searches. Without the bound
/// the memo grows one entry per distinct query pair and is only evicted by
/// the wholesale arena-budget reset — fine for the benchmark datasets,
/// unbounded for a service proving a diverse query stream.
type SearchMemo = LruMap<SearchMemoKey, SearchMemoValue>;

/// Completed searches, process-wide. This is the oracle-layer analog of the
/// decide stage's SMT formula cache: a service re-certifying the same pair
/// replays the verdict from the memo instead of re-evaluating hundreds of
/// graphs. Replay is sound because every ingredient is deterministic: the
/// pool regenerates the same graph at the same index, and the recorded row
/// counts are what evaluation would produce again (debug builds do re-run
/// [`check`] and assert it). Eviction is two-tier: the LRU capacity bound
/// (see [`SearchMemo`]) plus the wholesale reset riding the pool cache
/// ([`clear_pool_cache`]).
static SEARCH_MEMO: OnceLock<Mutex<SearchMemo>> = OnceLock::new();

fn search_memo() -> &'static Mutex<SearchMemo> {
    SEARCH_MEMO.get_or_init(|| Mutex::new(LruMap::new(DEFAULT_SEARCH_MEMO_CAPACITY)))
}

/// Hit counter of the search-result memo.
static SEARCH_MEMO_HITS: AtomicU64 = AtomicU64::new(0);
/// Miss counter of the search-result memo.
static SEARCH_MEMO_MISSES: AtomicU64 = AtomicU64::new(0);
/// LRU eviction counter of the search-result memo (entries dropped by the
/// capacity bound; wholesale [`clear_pool_cache`] resets are not counted).
static SEARCH_MEMO_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide hit/miss counters of the search-result memo.
pub fn search_memo_stats() -> (u64, u64) {
    (SEARCH_MEMO_HITS.load(Ordering::Relaxed), SEARCH_MEMO_MISSES.load(Ordering::Relaxed))
}

/// Process-wide count of entries evicted by the memo's LRU capacity bound.
pub fn search_memo_evictions() -> u64 {
    SEARCH_MEMO_EVICTIONS.load(Ordering::Relaxed)
}

/// Current entry count of the search-result memo.
pub fn search_memo_len() -> usize {
    search_memo().lock().unwrap_or_else(|poison| poison.into_inner()).len()
}

/// Reconfigures the memo's capacity (clamped to at least 1), evicting down
/// to the new bound immediately. Returns the previous capacity so tests and
/// service configuration hooks can restore it.
pub fn set_search_memo_capacity(capacity: usize) -> usize {
    let mut memo = search_memo().lock().unwrap_or_else(|poison| poison.into_inner());
    let previous = memo.capacity();
    let evicted = memo.set_capacity(capacity);
    SEARCH_MEMO_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    previous
}

fn search_memo_key(q1: &Query, q2: &Query, config: &SearchConfig) -> SearchMemoKey {
    (
        cypher_parser::pretty::query_to_string(q1),
        cypher_parser::pretty::query_to_string(q2),
        config.random_graphs,
        config.seed,
    )
}

/// Replays a memoized search outcome, if any. `Some(verdict)` is the final
/// answer; `None` means the memo has no entry and the search must run.
///
/// A memoized exhaustion replays without touching the pool — or even
/// deriving the generator vocabulary — so re-certified
/// equivalent-but-unprovable pairs cost two pretty-prints and a hash probe.
/// A memoized witness fetches its graph from the deterministic pool and
/// reconstructs the certificate from the recorded summary; debug builds
/// additionally re-run the evaluation and assert it still witnesses.
fn replay_memoized_search(
    key: &SearchMemoKey,
    #[allow(unused_variables)] q1: &Query,
    #[allow(unused_variables)] q2: &Query,
    config: &SearchConfig,
) -> Option<Option<Counterexample>> {
    if !config.use_memo {
        return None;
    }
    let (outcome, vocabulary) =
        search_memo().lock().unwrap_or_else(|poison| poison.into_inner()).get(key)?;
    SEARCH_MEMO_HITS.fetch_add(1, Ordering::Relaxed);
    match outcome {
        None => Some(None),
        Some(summary) => {
            // The stored interned vocabulary resolves the pool directly.
            let pool_key =
                PoolKey { random_graphs: config.random_graphs, seed: config.seed, vocabulary };
            let graph = pool_graph(&shared_pool(&pool_key, config), summary.pool_index)?;
            debug_assert!(
                check_queries(q1, q2, &graph, summary.pool_index).is_some_and(|fresh| {
                    (fresh.left_rows, fresh.right_rows) == (summary.left_rows, summary.right_rows)
                }),
                "memoized witness no longer witnesses — determinism violated"
            );
            Some(Some(Counterexample {
                graph,
                left_rows: summary.left_rows,
                right_rows: summary.right_rows,
                pool_index: summary.pool_index,
            }))
        }
    }
}

fn memoize_search(
    key: SearchMemoKey,
    outcome: Option<&Counterexample>,
    vocabulary: Arc<GeneratorConfig>,
    config: &SearchConfig,
) {
    if !config.use_memo {
        return;
    }
    // Cache hygiene: a search cut short by a deadline/budget trip saw only a
    // prefix of the pool — memoizing its outcome (even a genuine witness,
    // whose index could differ from the untripped search's) would leak the
    // degraded run into later unlimited re-certifications.
    if limits::cancelled() {
        return;
    }
    SEARCH_MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let summary = outcome.map(|example| WitnessSummary {
        pool_index: example.pool_index,
        left_rows: example.left_rows,
        right_rows: example.right_rows,
    });
    let evicted = search_memo()
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .insert(key, (summary, vocabulary));
    SEARCH_MEMO_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
}

/// Drops every cached candidate pool and interned vocabulary, process-wide.
/// Part of the epoch-based eviction story: the pools (fully generated graph
/// vectors plus their adjacency indexes, typically the largest allocations
/// of the prover) would otherwise accumulate one entry per distinct query
/// vocabulary forever. Pure memo — the generator is deterministic, so
/// eviction only costs regeneration.
pub fn clear_pool_cache() {
    let _serial = CLEAR_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    clear_pool_cache_locked();
}

/// [`clear_pool_cache`] guarded by the generation counter: clears only when
/// no other clear has happened since the caller last observed
/// `seen_generation` (and returns whether it cleared). This is the
/// epoch-hygiene primitive of multi-tenant serving: several workers or
/// tenants crossing their (thread-local) arena budgets around the same time
/// collapse into **one** wipe — a caller whose generation is stale adopts
/// the clear its peer just performed instead of also wiping the pools,
/// vocabularies and memo entries everyone else has started rebuilding. The
/// check and the clear happen under one lock, so two racing callers with the
/// same stale generation can never both clear.
pub fn clear_pool_cache_if_unchanged(seen_generation: u64) -> bool {
    let _serial = CLEAR_LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
    if CLEAR_GENERATION.load(Ordering::Relaxed) != seen_generation {
        return false;
    }
    clear_pool_cache_locked();
    true
}

/// The clear body; the caller must hold [`CLEAR_LOCK`].
fn clear_pool_cache_locked() {
    if let Some(shards) = POOL_CACHE.get() {
        for shard in shards {
            shard.write().unwrap_or_else(|poison| poison.into_inner()).clear();
        }
    }
    if let Some(interner) = VOCABULARIES.get() {
        interner.lock().unwrap_or_else(|poison| poison.into_inner()).clear();
    }
    if let Some(memo) = SEARCH_MEMO.get() {
        memo.lock().unwrap_or_else(|poison| poison.into_inner()).clear();
    }
    if let Some(plans) = PLAN_CACHE.get() {
        plans.lock().unwrap_or_else(|poison| poison.into_inner()).clear();
    }
    CLEAR_GENERATION.fetch_add(1, Ordering::Relaxed);
}

/// Monotonic count of [`clear_pool_cache`] calls in this process. Callers
/// that evict on their own (per-thread) triggers can compare generations to
/// avoid redundantly wiping shared state another thread just cleared — see
/// [`clear_pool_cache_if_unchanged`] and `GraphQE::prove_batch_report`.
pub fn pool_cache_generation() -> u64 {
    CLEAR_GENERATION.load(Ordering::Relaxed)
}

/// Generation counter of [`clear_pool_cache`], written only under
/// [`CLEAR_LOCK`] (reads are lock-free).
static CLEAR_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Serializes the check-and-clear of [`clear_pool_cache_if_unchanged`] (and
/// every unconditional clear) so concurrent epoch trips cannot double-wipe.
static CLEAR_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------------
// The process-wide frozen-plan cache
// ---------------------------------------------------------------------------

/// A thread-local working view of a shared [`FrozenPlan`]: the frozen
/// artifact (held alive by `Arc`) plus its thawed [`QueryPlan`] — the
/// `Rc`/`RefCell` working state the evaluator's hot loop needs. Thawing is
/// a per-search, microsecond-scale operation (name re-interning plus `Arc`
/// seeding); the expensive lowering happened exactly once, process-wide,
/// when the frozen plan was built. Evaluation must go through
/// [`CachedPlan::evaluate`]: the plans key on the frozen artifact's own
/// query instance.
pub(crate) struct CachedPlan {
    frozen: Arc<FrozenPlan>,
    plan: QueryPlan,
}

impl CachedPlan {
    fn thaw(frozen: Arc<FrozenPlan>) -> CachedPlan {
        let plan = frozen.thaw();
        CachedPlan { frozen, plan }
    }

    fn evaluate(
        &self,
        graph: &PropertyGraph,
    ) -> Result<property_graph::QueryResult, property_graph::EvalError> {
        Evaluator::new().evaluate_planned(graph, self.frozen.query(), &self.plan)
    }
}

/// Default capacity of the shared plan cache. An entry is a cloned AST plus
/// its name snapshot and lowered patterns — a few KB — so the bound keeps
/// the cache in the low megabytes while covering both benchmark datasets.
const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// Hit/miss/eviction counters of the shared plan cache.
static PLAN_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static PLAN_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// The frozen-plan cache, keyed by pretty-printed query text and shared by
/// every thread.
///
/// `PreparedQuery` (PR 4) amortizes planning *within* one search; this cache
/// amortizes it *across* searches — and, since PR 8, across **threads**: the
/// cached artifact is an immutable `Send + Sync` [`FrozenPlan`], so parallel
/// search workers and serve workers share one lowering instead of each
/// keeping a thread-local duplicate (warm plan hit rate was 0.26 in
/// BENCH_pr7 precisely because of that duplication). Each consumer thaws the
/// shared artifact into its own thread-private working view; the evaluator's
/// hot loop still runs on uncontended `Rc`/`RefCell` state.
static PLAN_CACHE: OnceLock<Mutex<LruMap<String, Arc<FrozenPlan>>>> = OnceLock::new();

fn plan_cache() -> &'static Mutex<LruMap<String, Arc<FrozenPlan>>> {
    PLAN_CACHE.get_or_init(|| Mutex::new(LruMap::new(DEFAULT_PLAN_CACHE_CAPACITY)))
}

/// The shared frozen plan for `query`, keyed by its pretty-printed `text`
/// (which the search memo key already computes). On a miss the freeze runs
/// **outside** the lock — like the parse cache, a racing duplicate freeze is
/// benign (both artifacts are equivalent; last insert wins).
fn frozen_plan(text: &str, query: &Query) -> Arc<FrozenPlan> {
    if let Some(hit) = plan_cache().lock().unwrap_or_else(|poison| poison.into_inner()).get(text) {
        PLAN_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return hit;
    }
    PLAN_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let frozen = Arc::new(FrozenPlan::new(query));
    let evicted = plan_cache()
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
        .insert(text.to_string(), Arc::clone(&frozen));
    PLAN_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    frozen
}

/// A thawed working view of the shared plan for `query` (see
/// [`frozen_plan`] and [`CachedPlan`]).
fn cached_plan(text: &str, query: &Query) -> CachedPlan {
    CachedPlan::thaw(frozen_plan(text, query))
}

/// Hit/miss counters of the shared plan cache.
pub fn plan_cache_stats() -> (u64, u64) {
    (PLAN_CACHE_HITS.load(Ordering::Relaxed), PLAN_CACHE_MISSES.load(Ordering::Relaxed))
}

/// Count of plan-cache entries dropped by the capacity bound.
pub fn plan_cache_evictions() -> u64 {
    PLAN_CACHE_EVICTIONS.load(Ordering::Relaxed)
}

/// Entry count of the shared plan cache.
pub fn plan_cache_len() -> usize {
    plan_cache().lock().unwrap_or_else(|poison| poison.into_inner()).len()
}

/// Reconfigures the shared plan-cache capacity (clamped to at least 1),
/// evicting down to the new bound immediately. Returns the previous setting.
pub fn set_plan_cache_capacity(capacity: usize) -> usize {
    let mut cache = plan_cache().lock().unwrap_or_else(|poison| poison.into_inner());
    let previous = cache.capacity();
    let evicted = cache.set_capacity(capacity);
    PLAN_CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    previous
}

/// Drops every entry of the shared plan cache. Also rides
/// [`clear_pool_cache`], so the epoch-based wholesale reset reaches plans
/// the same way it reaches pools, vocabularies and the search memo.
pub fn clear_plan_cache() {
    plan_cache().lock().unwrap_or_else(|poison| poison.into_inner()).clear();
}

// ---------------------------------------------------------------------------
// The search
// ---------------------------------------------------------------------------

/// Evaluates both planned queries on one graph; `Some` when they disagree.
/// The certificate shares the pool's graph (`Arc` clone) instead of deep
/// copying it.
fn check(
    left: &CachedPlan,
    right: &CachedPlan,
    graph: &Arc<PropertyGraph>,
    pool_index: usize,
) -> Option<Counterexample> {
    let left_result = left.evaluate(graph).ok()?;
    let right_result = right.evaluate(graph).ok()?;
    if !left_result.bag_equal(&right_result) {
        return Some(Counterexample {
            graph: Arc::clone(graph),
            left_rows: left_result.len(),
            right_rows: right_result.len(),
            pool_index,
        });
    }
    None
}

/// [`check`] for callers holding plain queries: plans both sides ad hoc
/// (only the debug-build memo-replay validation takes this path).
fn check_queries(
    q1: &Query,
    q2: &Query,
    graph: &Arc<PropertyGraph>,
    pool_index: usize,
) -> Option<Counterexample> {
    let left = CachedPlan::thaw(Arc::new(FrozenPlan::new(q1)));
    let right = CachedPlan::thaw(Arc::new(FrozenPlan::new(q2)));
    check(&left, &right, graph, pool_index)
}

/// Searches for a property graph on which the two queries disagree,
/// sequentially and lazily: random graphs past the first witness are never
/// generated, let alone evaluated — but everything that *is* generated stays
/// in the shared pool for the next search over the same vocabulary.
pub fn find_counterexample(
    q1: &Query,
    q2: &Query,
    config: &SearchConfig,
) -> Option<Counterexample> {
    let memo_key = search_memo_key(q1, q2, config);
    if let Some(outcome) = replay_memoized_search(&memo_key, q1, q2, config) {
        return outcome;
    }
    let (pool, vocabulary) = pool_for(q1, q2, config);
    // Plans come from the per-thread cache (keyed by the memo key's
    // pretty-printed texts), so repeat searches skip planning entirely and
    // a fresh search still plans only once for the whole pool.
    let (left, right) = (cached_plan(&memo_key.0, q1), cached_plan(&memo_key.1, q2));
    let mut index = 0;
    loop {
        // Each candidate graph charges the ambient token *before* it is
        // generated: a tripped search aborts to `None` with the trip recorded
        // on the token — distinguishable from genuine exhaustion, which only
        // occurs with the token untripped (and is the only `None` memoized).
        if limits::search_step().is_err() {
            return None;
        }
        let Some(graph) = pool_graph(&pool, index) else { break };
        if let Some(example) = check(&left, &right, &graph, index) {
            memoize_search(memo_key, Some(&example), vocabulary, config);
            return Some(example);
        }
        index += 1;
    }
    memoize_search(memo_key, None, vocabulary, config);
    None
}

/// How many pool graphs the parallel search probes sequentially before
/// spawning workers: the deterministic seed graphs separate most
/// non-equivalent pairs, and probing them first avoids paying `threads`
/// speculative evaluations (and thread spawns) for a witness at index 0.
const PARALLEL_SEQUENTIAL_PREFIX: usize = 3;

/// Parallel counterexample search: probes the seed graphs sequentially,
/// then partitions the rest of the shared candidate pool across `threads`
/// scoped workers via an atomic cursor (the pool materializes drawn indices
/// on demand) and cancels the remaining workers once a witness is found.
/// See the module documentation for the cancellation protocol.
///
/// The **verdict** is deterministic and identical to
/// [`find_counterexample`]'s; the reported witness's pool index may differ
/// (scheduling decides which witness wins, never whether one exists). With
/// `threads <= 1` — including any request clamped down to 1 by the
/// machine's actual parallelism — this *is* the sequential search: on a
/// one-core box the parallel driver's spawn/partition overhead more than
/// doubles search latency (BENCH_pr7: 15.0 ms parallel vs 6.5 ms
/// sequential) and can never pay for itself.
pub fn find_counterexample_parallel(
    q1: &Query,
    q2: &Query,
    config: &SearchConfig,
    threads: usize,
) -> Option<Counterexample> {
    let threads = threads.min(crate::machine_parallelism());
    if threads <= 1 {
        return find_counterexample(q1, q2, config);
    }
    let memo_key = search_memo_key(q1, q2, config);
    if let Some(outcome) = replay_memoized_search(&memo_key, q1, q2, config) {
        return outcome;
    }
    let (pool, vocabulary) = pool_for(q1, q2, config);

    // Sequential prefix over the seed graphs (plans thawed from the shared
    // frozen-plan cache, populated by any earlier search of the same texts).
    let (left, right) = (cached_plan(&memo_key.0, q1), cached_plan(&memo_key.1, q2));
    for index in 0..PARALLEL_SEQUENTIAL_PREFIX {
        if limits::search_step().is_err() {
            return None;
        }
        let Some(graph) = pool_graph(&pool, index) else {
            memoize_search(memo_key, None, vocabulary, config);
            return None;
        };
        if let Some(example) = check(&left, &right, &graph, index) {
            memoize_search(memo_key, Some(&example), vocabulary, config);
            return Some(example);
        }
    }

    // Workers share the spawning thread's run token (deadline and budget
    // counters): tripping piggybacks on the first-witness-wins cancellation
    // flag, so one worker's trip stops the others from pulling new graphs.
    let token = limits::current_token();
    let cursor = AtomicUsize::new(PARALLEL_SEQUENTIAL_PREFIX);
    let found = AtomicBool::new(false);
    let best: Mutex<Option<Counterexample>> = Mutex::new(None);
    std::thread::scope(|scope| {
        // No point spawning more workers than random graphs remain.
        for _ in 0..threads.min(config.random_graphs.max(1)) {
            scope.spawn(|| {
                let work = || {
                    // Each worker thaws its own working view of the shared
                    // frozen plans (a cache hit plus a microsecond-scale
                    // re-intern): the lowering was done once process-wide,
                    // and the hot loop still runs on the worker's private,
                    // uncontended `Rc`/`RefCell` state.
                    let (left, right) =
                        (cached_plan(&memo_key.0, q1), cached_plan(&memo_key.1, q2));
                    loop {
                        if found.load(Ordering::Relaxed) {
                            break;
                        }
                        // The shared token's counters make the budget global
                        // across workers; a trip cancels the token, which the
                        // other workers observe on their own next tick.
                        if limits::search_step().is_err() {
                            break;
                        }
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(graph) = pool_graph(&pool, index) else { break };
                        if let Some(example) = check(&left, &right, &graph, index) {
                            let mut best = best.lock().unwrap_or_else(|poison| poison.into_inner());
                            // First witness wins the race; ties across
                            // workers are broken towards the smaller pool
                            // index so the reported witness is deterministic.
                            if best.as_ref().is_none_or(|b| example.pool_index < b.pool_index) {
                                *best = Some(example);
                            }
                            found.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                };
                match token.clone() {
                    Some(token) => limits::with_token(token, work),
                    None => work(),
                }
            });
        }
    });
    let outcome = best.into_inner().unwrap_or_else(|poison| poison.into_inner());
    memoize_search(memo_key, outcome.as_ref(), vocabulary, config);
    outcome
}

/// The graphs explored by the search: the paper's Fig. 1 graph, a couple of
/// tiny deterministic graphs, then random graphs of increasing size whose
/// labels, property keys and constants are drawn from the queries themselves
/// (so that their predicates actually select rows).
///
/// The candidates are produced **lazily**: random graphs past the first
/// witnessing counterexample are never generated, let alone evaluated. On
/// CyNeqSet most pairs are separated by one of the deterministic seed graphs
/// or the first few random ones, so the bulk of the (previously eager) pool
/// is skipped entirely.
fn candidate_graphs(
    config: &SearchConfig,
    vocabulary: GeneratorConfig,
) -> impl Iterator<Item = PropertyGraph> {
    // A small dense graph with self-loops and parallel edges: good at
    // separating direction / multiplicity differences.
    let mut dense = PropertyGraph::new();
    let a = dense.add_node(["Person"], [("name", "a".into()), ("age", 1.into()), ("p1", 1.into())]);
    let b = dense.add_node(["Person", "Book"], [("name", "b".into()), ("p1", 2.into())]);
    let c = dense.add_node(Vec::<String>::new(), [("p1", 3.into()), ("age", 3.into())]);
    dense.add_relationship("READ", a, b, [("date", 1.into())]);
    dense.add_relationship("READ", b, a, [("date", 2.into())]);
    dense.add_relationship("KNOWS", a, a, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", a, c, Vec::<(String, property_graph::Value)>::new());
    dense.add_relationship("KNOWS", c, b, Vec::<(String, property_graph::Value)>::new());
    let seeds = vec![PropertyGraph::new(), PropertyGraph::paper_example(), dense];

    let small_count = config.random_graphs / 2;
    let large_count = config.random_graphs - small_count;
    let mut small = GraphGenerator::with_config(config.seed, vocabulary.clone());
    // A second pool with larger graphs.
    let mut large = GraphGenerator::with_config(
        config.seed.wrapping_add(1),
        GeneratorConfig { max_nodes: 9, max_relationships: 16, ..vocabulary },
    );
    seeds
        .into_iter()
        .chain((0..small_count).map(move |_| small.generate()))
        .chain((0..large_count).map(move |_| large.generate()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypher_parser::parse_query;
    use property_graph::evaluate_query;

    fn search(q1: &str, q2: &str) -> Option<Counterexample> {
        find_counterexample(
            &parse_query(q1).unwrap(),
            &parse_query(q2).unwrap(),
            &SearchConfig::default(),
        )
    }

    #[test]
    fn finds_direction_flips() {
        let example = search(
            "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
            "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
        );
        assert!(example.is_some());
    }

    #[test]
    fn finds_label_changes() {
        assert!(search("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n").is_some());
    }

    #[test]
    fn finds_distinct_differences() {
        assert!(search(
            "MATCH (n:Person)-[:READ]->(b) RETURN b.title",
            "MATCH (n:Person)-[:READ]->(b) RETURN DISTINCT b.title"
        )
        .is_some());
    }

    #[test]
    fn finds_union_vs_union_all() {
        assert!(search(
            "MATCH (n:Person) RETURN n UNION ALL MATCH (n:Person) RETURN n",
            "MATCH (n:Person) RETURN n UNION MATCH (n:Person) RETURN n"
        )
        .is_some());
    }

    #[test]
    fn equivalent_queries_have_no_counterexample() {
        assert!(search("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a").is_none());
    }

    #[test]
    fn repeated_searches_reuse_the_exhausted_pool_and_agree() {
        // An equivalent pair exhausts the pool (no witness) and caches it;
        // the second search over the same vocabulary must reach the same
        // conclusion through the cached pool.
        let q1 = "MATCH (a)-[r]->(b) RETURN a";
        let q2 = "MATCH (b)<-[r]-(a) RETURN a";
        assert!(search(q1, q2).is_none());
        assert!(search(q1, q2).is_none());
        // A non-equivalent pair with the same (default) vocabulary is still
        // separated when scanning the now-cached pool.
        assert!(search("MATCH (a)-[r]->(b) RETURN a", "MATCH (a)-[r]->(b) RETURN b").is_some());
    }

    #[test]
    fn finds_limit_differences() {
        assert!(search(
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 1",
            "MATCH (n:Person) RETURN n.name ORDER BY n.name LIMIT 2"
        )
        .is_some());
    }

    #[test]
    fn vocabulary_interning_is_pointer_stable() {
        let q1 = parse_query("MATCH (n:Zebra) RETURN n").unwrap();
        let q2 = parse_query("MATCH (n:Yak) RETURN n").unwrap();
        let a = intern_vocabulary(GeneratorConfig::from_queries(&[&q1, &q2]));
        let b = intern_vocabulary(GeneratorConfig::from_queries(&[&q1, &q2]));
        assert!(Arc::ptr_eq(&a, &b), "same vocabulary must intern to the same Arc");
        let c = intern_vocabulary(GeneratorConfig::from_queries(&[&q1, &q1]));
        assert!(!Arc::ptr_eq(&a, &c), "different vocabularies must not share an Arc");
    }

    #[test]
    fn parallel_search_agrees_with_sequential() {
        let cases = [
            // Non-equivalent: both must find a witness.
            (
                "MATCH (a:Person)-[r:READ]->(b) RETURN a.name",
                "MATCH (a:Person)<-[r:READ]-(b) RETURN a.name",
            ),
            ("MATCH (n:Person) RETURN n", "MATCH (n:Book) RETURN n"),
            // Equivalent: both must exhaust the pool.
            ("MATCH (a)-[r]->(b) RETURN a", "MATCH (b)<-[r]-(a) RETURN a"),
        ];
        // The memo is bypassed so the worker/cancellation machinery actually
        // runs — a memo replay would trivially agree with the sequential
        // search without exercising it.
        let config = SearchConfig { use_memo: false, ..SearchConfig::default() };
        for (left, right) in cases {
            let q1 = parse_query(left).unwrap();
            let q2 = parse_query(right).unwrap();
            let sequential = find_counterexample(&q1, &q2, &config);
            for threads in [2, 4] {
                let parallel = find_counterexample_parallel(&q1, &q2, &config, threads);
                assert_eq!(
                    sequential.is_some(),
                    parallel.is_some(),
                    "parallel verdict diverged on {left} vs {right} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_witness_actually_witnesses() {
        let q1 = parse_query("MATCH (n:Person) RETURN n").unwrap();
        let q2 = parse_query("MATCH (n:Book) RETURN n").unwrap();
        // Bypass the memo so the parallel workers really search.
        let config = SearchConfig { use_memo: false, ..SearchConfig::default() };
        let example = find_counterexample_parallel(&q1, &q2, &config, 3).expect("witness expected");
        // The reported graph must really separate the queries (the scheduling
        // decides *which* witness wins, never *whether* one is a witness).
        let left = evaluate_query(&example.graph, &q1).unwrap();
        let right = evaluate_query(&example.graph, &q2).unwrap();
        assert!(!left.bag_equal(&right));
        assert_eq!((left.len(), right.len()), (example.left_rows, example.right_rows));
        // And its pool index points at that same graph in the shared pool.
        let sequential = find_counterexample(&q1, &q2, &config).expect("witness expected");
        assert!(example.pool_index >= sequential.pool_index);
    }

    #[test]
    fn memoized_searches_replay_identical_outcomes() {
        let q1 = parse_query("MATCH (n:Person {p2: 4}) RETURN n").unwrap();
        let q2 = parse_query("MATCH (n:Book {p2: 4}) RETURN n").unwrap();
        let config = SearchConfig::default();
        let first = find_counterexample(&q1, &q2, &config).expect("witness expected");
        // A concurrently running eviction test can clear the memo between
        // searches; retry a few times — a hit must be observable eventually.
        let mut replayed = None;
        for _ in 0..5 {
            let (hits_before, _) = search_memo_stats();
            let outcome = find_counterexample(&q1, &q2, &config).expect("witness expected");
            if search_memo_stats().0 > hits_before {
                replayed = Some(outcome);
                break;
            }
        }
        let replayed = replayed.expect("no search hit the memo in five attempts");
        // The replayed certificate is recomputed, not copied: same witness
        // graph, same row counts.
        assert_eq!(first.pool_index, replayed.pool_index);
        assert_eq!(first.graph, replayed.graph);
        assert_eq!((first.left_rows, first.right_rows), (replayed.left_rows, replayed.right_rows));
    }

    /// Tests that reconfigure the (process-global) memo capacity serialize
    /// here so their bound assertions cannot observe each other's settings.
    static MEMO_CAPACITY_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn search_memo_capacity_bound_evicts_lru() {
        let _serial = MEMO_CAPACITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let q1 = parse_query("MATCH (n:Person) RETURN n").unwrap();
        let q2 = parse_query("MATCH (n:Book) RETURN n").unwrap();
        let previous_capacity = set_search_memo_capacity(3);
        let evictions_before = search_memo_evictions();
        // Six distinct memo keys (the key includes the seed) through a
        // 3-entry memo: the bound must hold and evictions must happen. The
        // pair is separated by the deterministic paper graph, so each search
        // is cheap.
        for seed in 0..6 {
            let config = SearchConfig { random_graphs: 2, seed, use_memo: true };
            assert!(find_counterexample(&q1, &q2, &config).is_some());
        }
        assert!(
            search_memo_len() <= 3,
            "memo exceeded its capacity bound: {} entries",
            search_memo_len()
        );
        assert!(
            search_memo_evictions() > evictions_before,
            "saturating the memo must evict LRU entries"
        );
        // The most recently inserted key survives eviction and replays from
        // the memo. (A concurrently running eviction/clear test can drop the
        // entry between searches; retry like the replay test does — each
        // miss re-inserts, so a hit must become observable.)
        let config = SearchConfig { random_graphs: 2, seed: 5, use_memo: true };
        let mut hit = false;
        for _ in 0..5 {
            let (hits_before, _) = search_memo_stats();
            assert!(find_counterexample(&q1, &q2, &config).is_some());
            if search_memo_stats().0 > hits_before {
                hit = true;
                break;
            }
        }
        assert!(hit, "no search hit the memo in five attempts");
        set_search_memo_capacity(previous_capacity);
    }

    #[test]
    fn shrinking_the_memo_capacity_evicts_down_immediately() {
        let _serial = MEMO_CAPACITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let q1 = parse_query("MATCH (n:Cat) RETURN n").unwrap();
        let q2 = parse_query("MATCH (n:Dog) RETURN n").unwrap();
        let previous_capacity = set_search_memo_capacity(8);
        for seed in 100..104 {
            let config = SearchConfig { random_graphs: 2, seed, use_memo: true };
            let _ = find_counterexample(&q1, &q2, &config);
        }
        set_search_memo_capacity(1);
        assert!(search_memo_len() <= 1);
        // Capacity is clamped to at least one entry.
        set_search_memo_capacity(0);
        let restored = set_search_memo_capacity(previous_capacity);
        assert_eq!(restored, 1);
    }

    #[test]
    fn plan_cache_bound_holds_and_repeats_hit() {
        // The cache is process-wide and the capacity is enforced on every
        // insert, so the bound holds even with other tests inserting
        // concurrently — their inserts also evict down to the bound.
        let previous = set_plan_cache_capacity(3);
        let evictions_before = plan_cache_evictions();
        let queries: Vec<Query> = (0..8)
            .map(|i| parse_query(&format!("MATCH (pc{i}:PlanCacheT{i}) RETURN pc{i}")).unwrap())
            .collect();
        for query in &queries {
            let text = cypher_parser::pretty::query_to_string(query);
            let _ = cached_plan(&text, query);
            assert!(
                plan_cache_len() <= 3,
                "plan cache exceeded its bound: {} entries",
                plan_cache_len()
            );
        }
        assert!(plan_cache_evictions() > evictions_before, "saturation must evict");
        // The most recently planned text replays from the shared cache. (A
        // concurrently running test can evict it between probes; retry — a
        // miss re-inserts, so a hit must become observable.)
        let text = cypher_parser::pretty::query_to_string(&queries[7]);
        let mut replayed = None;
        for _ in 0..5 {
            let (hits_before, _) = plan_cache_stats();
            let plan = cached_plan(&text, &queries[7]);
            if plan_cache_stats().0 > hits_before {
                replayed = Some(plan);
                break;
            }
        }
        let replayed = replayed.expect("no probe hit the plan cache in five attempts");
        // And the thawed plan still evaluates correctly.
        let graph = Arc::new(PropertyGraph::paper_example());
        assert!(replayed.evaluate(&graph).is_ok());
        set_plan_cache_capacity(previous);
    }

    #[test]
    fn frozen_plans_are_shared_across_threads() {
        let query = parse_query("MATCH (ct:CrossThread)-[r]->(b) RETURN ct, b").unwrap();
        let text = cypher_parser::pretty::query_to_string(&query);
        let first = frozen_plan(&text, &query);
        let expected = {
            let graph = PropertyGraph::paper_example();
            CachedPlan::thaw(Arc::clone(&first)).evaluate(&graph).unwrap()
        };
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let query = query.clone();
                let text = text.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    // Every thread resolves the same shared artifact (or a
                    // benign racing duplicate) and evaluates identically.
                    let plan = cached_plan(&text, &query);
                    let graph = PropertyGraph::paper_example();
                    let got = plan.evaluate(&graph).unwrap();
                    assert!(got.ordered_equal(&expected));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn cached_plans_evaluate_identically_to_fresh_plans() {
        let q = parse_query("MATCH (a:Person)-[r:READ]->(b) RETURN a.name, b.title").unwrap();
        let text = cypher_parser::pretty::query_to_string(&q);
        let cached = cached_plan(&text, &q);
        let graph = PropertyGraph::paper_example();
        let through_cache = cached.evaluate(&graph).unwrap();
        let fresh = evaluate_query(&graph, &q).unwrap();
        assert!(through_cache.ordered_equal(&fresh), "cached plan diverged from fresh plan");
    }

    #[test]
    fn clearing_the_pool_cache_only_costs_regeneration() {
        let q1 = parse_query("MATCH (a)-[r]->(b) RETURN a").unwrap();
        let q2 = parse_query("MATCH (b)<-[r]-(a) RETURN a").unwrap();
        let config = SearchConfig { random_graphs: 6, ..SearchConfig::default() };
        assert!(find_counterexample(&q1, &q2, &config).is_none());
        clear_pool_cache();
        assert!(find_counterexample(&q1, &q2, &config).is_none());
    }
}
