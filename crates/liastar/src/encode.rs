//! Encoding of G-expression atoms into SMT terms.
//!
//! The encoding is used for two purposes:
//!
//! * **zero pruning** — a summand whose atoms are jointly unsatisfiable is
//!   identically 0 and can be removed;
//! * **implication pruning** — an atom implied by the other factors of its
//!   product can be dropped (`[x > 5] × [x > 3] = [x > 5]`).
//!
//! Graph-native factors (`Node`, `Rel`, `Lab`, `UNBOUNDED`) and uninterpreted
//! predicates are abstracted as free boolean variables: this over-approximates
//! the set of interpretations, so unsatisfiability / validity results remain
//! sound for the actual U-semiring semantics.

use gexpr::arena::{AAtom, ANode, ATerm, GStore, NodeId, TermId};
use gexpr::{CmpOp, GAtom, GConst, GExpr, GTerm};
use smt::Term;

/// Translates a G-term into an SMT term.
pub fn encode_term(term: &GTerm) -> Term {
    match term {
        GTerm::Var(v) => Term::value_var(format!("e{}", v.0)),
        GTerm::OutCol(i) => Term::value_var(format!("t_col{i}")),
        // A typing fact from the static analyzer: the column is provably
        // integer-valued and non-null, so it gets an integer sort (and a
        // name disjoint from the untyped `t_col{i}` encoding, defensively —
        // hinted and unhinted builds never share a solver query anyway).
        GTerm::IntCol(i) => Term::int_var(format!("t_intcol{i}")),
        GTerm::Const(GConst::Integer(v)) => Term::IntConst(*v),
        GTerm::Const(GConst::Float(v)) => Term::App(format!("const:f{v}"), vec![]),
        GTerm::Const(GConst::String(s)) => Term::App(format!("const:s:{s}"), vec![]),
        GTerm::Const(GConst::Boolean(b)) => Term::App(format!("const:b:{b}"), vec![]),
        GTerm::Const(GConst::Null) => Term::App("const:null".to_string(), vec![]),
        GTerm::Prop(base, key) => Term::App(format!("prop:{key}"), vec![encode_term(base)]),
        GTerm::App(name, args) => {
            Term::App(format!("fn:{name}"), args.iter().map(encode_term).collect())
        }
        GTerm::Agg { kind, distinct, arg, group } => {
            // Aggregates are opaque for satisfiability purposes; identical
            // aggregates map to the same symbol.
            let key = format!("agg:{}:{}:{}|{}", kind.name(), distinct, arg, group);
            Term::App(key, vec![])
        }
    }
}

/// Translates an atomic predicate into an SMT formula.
pub fn encode_atom(atom: &GAtom) -> Term {
    match atom {
        GAtom::Cmp(op, lhs, rhs) => {
            let l = encode_term(lhs);
            let r = encode_term(rhs);
            match op {
                CmpOp::Eq => Term::eq(l, r),
                CmpOp::Neq => Term::neq(l, r),
                CmpOp::Lt => Term::lt(l, r),
                CmpOp::Le => Term::le(l, r),
                CmpOp::Gt => Term::gt(l, r),
                CmpOp::Ge => Term::ge(l, r),
            }
        }
        GAtom::IsNull(term, negated) => {
            let encoded = Term::eq(encode_term(term), Term::App("const:null".to_string(), vec![]));
            if *negated {
                Term::not(encoded)
            } else {
                encoded
            }
        }
        GAtom::Pred(name, args) => {
            // Uninterpreted boolean predicate: a boolean-valued application is
            // modeled as equality with a distinguished `true` constant so the
            // congruence closure can reason about identical applications.
            let application =
                Term::App(format!("pred:{name}"), args.iter().map(encode_term).collect());
            Term::eq(application, Term::App("const:b:true".to_string(), vec![]))
        }
    }
}

/// Translates a 0/1-valued factor into an SMT formula expressing "the factor
/// is non-zero". Non-0/1 factors (sums, summations) are abstracted as free
/// boolean variables named by their rendering.
pub fn encode_factor(factor: &GExpr) -> Term {
    match factor {
        GExpr::Zero => Term::ff(),
        GExpr::One | GExpr::Const(_) => Term::tt(),
        GExpr::Atom(atom) => encode_atom(atom),
        GExpr::NodeFn(t) => Term::eq(
            Term::App("graph:node".to_string(), vec![encode_term(t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        GExpr::RelFn(t) => Term::eq(
            Term::App("graph:rel".to_string(), vec![encode_term(t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        GExpr::LabFn(t, label) => Term::eq(
            Term::App(format!("graph:lab:{label}"), vec![encode_term(t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        GExpr::Unbounded(t) => Term::eq(
            Term::App("graph:unbounded".to_string(), vec![encode_term(t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        GExpr::Not(inner) => Term::not(encode_factor(inner)),
        GExpr::Mul(items) => Term::and(items.iter().map(encode_factor).collect()),
        GExpr::Add(items) => Term::or(items.iter().map(encode_factor).collect()),
        GExpr::Squash(inner) => encode_factor(inner),
        GExpr::Sum { .. } => Term::bool_var(format!("sum:{factor}")),
    }
}

/// The conjunction of a whole product of factors ("is the product non-zero").
pub fn encode_product(factors: &[GExpr]) -> Term {
    Term::and(factors.iter().map(encode_factor).collect())
}

// ---------------------------------------------------------------------------
// Arena-native encoders
// ---------------------------------------------------------------------------
//
// Mirrors of the tree encoders above that read interned ids directly out of a
// [`GStore`], so the id-native decision pipeline never materializes `GExpr` /
// `GTerm` trees just to build SMT formulas. Each function produces *exactly*
// the same `Term` as its tree counterpart on the externalized node (asserted
// by the `arena_encoders_match_tree_encoders` test below), which keeps the
// SMT formula cache shared between both pipelines sound.

/// Id-native mirror of [`encode_term`].
pub fn encode_term_id(store: &mut GStore, t: TermId) -> Term {
    match store.term_of(t).clone() {
        ATerm::Var(v) => Term::value_var(format!("e{}", v.0)),
        ATerm::OutCol(i) => Term::value_var(format!("t_col{i}")),
        ATerm::IntCol(i) => Term::int_var(format!("t_intcol{i}")),
        ATerm::Const(c) => match store.const_of(c).clone() {
            GConst::Integer(v) => Term::IntConst(v),
            GConst::Float(v) => Term::App(format!("const:f{v}"), vec![]),
            GConst::String(s) => Term::App(format!("const:s:{s}"), vec![]),
            GConst::Boolean(b) => Term::App(format!("const:b:{b}"), vec![]),
            GConst::Null => Term::App("const:null".to_string(), vec![]),
        },
        ATerm::Prop(base, key) => {
            let key = store.str_of(key).to_string();
            Term::App(format!("prop:{key}"), vec![encode_term_id(store, base)])
        }
        ATerm::App(name, args) => {
            let name = store.str_of(name).to_string();
            let args = args.iter().map(|a| encode_term_id(store, *a)).collect();
            Term::App(format!("fn:{name}"), args)
        }
        ATerm::Agg { kind, distinct, arg, group } => {
            let arg_text = store.term_string(arg);
            let group_text = store.node_string(group);
            Term::App(
                format!("agg:{}:{}:{}|{}", kind.name(), distinct, arg_text, group_text),
                vec![],
            )
        }
    }
}

/// Id-native mirror of [`encode_atom`].
pub fn encode_atom_id(store: &mut GStore, atom: &AAtom) -> Term {
    match atom {
        AAtom::Cmp(op, lhs, rhs) => {
            let l = encode_term_id(store, *lhs);
            let r = encode_term_id(store, *rhs);
            match op {
                CmpOp::Eq => Term::eq(l, r),
                CmpOp::Neq => Term::neq(l, r),
                CmpOp::Lt => Term::lt(l, r),
                CmpOp::Le => Term::le(l, r),
                CmpOp::Gt => Term::gt(l, r),
                CmpOp::Ge => Term::ge(l, r),
            }
        }
        AAtom::IsNull(t, negated) => {
            let encoded =
                Term::eq(encode_term_id(store, *t), Term::App("const:null".to_string(), vec![]));
            if *negated {
                Term::not(encoded)
            } else {
                encoded
            }
        }
        AAtom::Pred(name, args) => {
            let name = store.str_of(*name).to_string();
            let args = args.iter().map(|a| encode_term_id(store, *a)).collect();
            let application = Term::App(format!("pred:{name}"), args);
            Term::eq(application, Term::App("const:b:true".to_string(), vec![]))
        }
    }
}

/// Id-native mirror of [`encode_factor`].
pub fn encode_factor_id(store: &mut GStore, factor: NodeId) -> Term {
    match store.node_of(factor).clone() {
        ANode::Zero => Term::ff(),
        ANode::One | ANode::Const(_) => Term::tt(),
        ANode::Atom(atom) => encode_atom_id(store, &atom),
        ANode::NodeFn(t) => Term::eq(
            Term::App("graph:node".to_string(), vec![encode_term_id(store, t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        ANode::RelFn(t) => Term::eq(
            Term::App("graph:rel".to_string(), vec![encode_term_id(store, t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        ANode::Lab(t, label) => {
            let label = store.str_of(label).to_string();
            Term::eq(
                Term::App(format!("graph:lab:{label}"), vec![encode_term_id(store, t)]),
                Term::App("const:b:true".to_string(), vec![]),
            )
        }
        ANode::Unbounded(t) => Term::eq(
            Term::App("graph:unbounded".to_string(), vec![encode_term_id(store, t)]),
            Term::App("const:b:true".to_string(), vec![]),
        ),
        ANode::Not(inner) => Term::not(encode_factor_id(store, inner)),
        ANode::Mul(items) => Term::and(items.iter().map(|i| encode_factor_id(store, *i)).collect()),
        ANode::Add(items) => Term::or(items.iter().map(|i| encode_factor_id(store, *i)).collect()),
        ANode::Squash(inner) => encode_factor_id(store, inner),
        ANode::Sum(_, _) => Term::bool_var(format!("sum:{}", store.node_string(factor))),
    }
}

/// Id-native mirror of [`encode_product`].
pub fn encode_product_ids(store: &mut GStore, factors: &[NodeId]) -> Term {
    Term::and(factors.iter().map(|f| encode_factor_id(store, *f)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gexpr::VarId;
    use smt::check_formula;

    fn var(i: u32) -> GTerm {
        GTerm::Var(VarId(i))
    }

    #[test]
    fn contradictory_products_are_unsat() {
        // [e0.age = 1] × [e0.age = 2]
        let factors = vec![
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(1)),
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(2)),
        ];
        assert!(check_formula(encode_product(&factors)).is_unsat());
    }

    #[test]
    fn range_contradictions_are_unsat() {
        // [e0.age < 10] × [e0.age > 20]
        let factors = vec![
            GExpr::Atom(GAtom::Cmp(CmpOp::Lt, GTerm::prop(var(0), "age"), GTerm::int(10))),
            GExpr::Atom(GAtom::Cmp(CmpOp::Gt, GTerm::prop(var(0), "age"), GTerm::int(20))),
        ];
        assert!(check_formula(encode_product(&factors)).is_unsat());
    }

    #[test]
    fn satisfiable_products_are_sat() {
        let factors = vec![
            GExpr::NodeFn(var(0)),
            GExpr::LabFn(var(0), "Person".into()),
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(59)),
        ];
        assert!(check_formula(encode_product(&factors)).is_sat());
    }

    #[test]
    fn distinct_string_constants_conflict() {
        let factors = vec![
            GExpr::eq(GTerm::prop(var(0), "name"), GTerm::string("Alice")),
            GExpr::eq(GTerm::prop(var(0), "name"), GTerm::string("Bob")),
        ];
        assert!(check_formula(encode_product(&factors)).is_unsat());
    }

    #[test]
    fn negated_factor_conflicts_with_factor() {
        let node = GExpr::NodeFn(var(0));
        let factors = vec![node.clone(), GExpr::Not(Box::new(node))];
        assert!(check_formula(encode_product(&factors)).is_unsat());
    }

    #[test]
    fn arena_encoders_match_tree_encoders() {
        use gexpr::{GAggKind, VarId};
        let mut store = GStore::new();
        let samples: Vec<GExpr> = vec![
            GExpr::eq(GTerm::prop(var(0), "age"), GTerm::int(1)),
            GExpr::Atom(GAtom::Cmp(CmpOp::Lt, GTerm::prop(var(0), "age"), GTerm::int(10))),
            GExpr::Atom(GAtom::IsNull(GTerm::prop(var(1), "x"), true)),
            GExpr::Atom(GAtom::Pred(
                "startsWith".into(),
                vec![GTerm::prop(var(0), "name"), GTerm::string("A")],
            )),
            GExpr::NodeFn(var(0)),
            GExpr::RelFn(var(1)),
            GExpr::LabFn(var(0), "Person".into()),
            GExpr::Unbounded(var(2)),
            GExpr::not(GExpr::NodeFn(var(0))),
            GExpr::mul(vec![GExpr::NodeFn(var(0)), GExpr::LabFn(var(0), "A".into())]),
            GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(0))]),
            GExpr::squash(GExpr::add(vec![GExpr::NodeFn(var(0)), GExpr::RelFn(var(0))])),
            GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0))),
            GExpr::eq(GTerm::OutCol(0), GTerm::prop(var(0), "name")),
            GExpr::NodeFn(GTerm::Agg {
                kind: GAggKind::Sum,
                distinct: true,
                arg: Box::new(GTerm::prop(var(0), "age")),
                group: Box::new(GExpr::sum(vec![VarId(0)], GExpr::NodeFn(var(0)))),
            }),
            GExpr::eq(GTerm::Const(GConst::Float(1.5)), GTerm::Const(GConst::Boolean(true))),
        ];
        for expr in &samples {
            let id = store.intern_expr(expr);
            assert_eq!(
                encode_factor_id(&mut store, id),
                encode_factor(expr),
                "encoder mismatch for {expr}"
            );
        }
        let ids: Vec<NodeId> = samples.iter().map(|e| store.intern_expr(e)).collect();
        assert_eq!(encode_product_ids(&mut store, &ids), encode_product(&samples));
    }

    #[test]
    fn implication_between_ranges() {
        // [x > 5] implies [x > 3].
        let stronger = encode_factor(&GExpr::Atom(GAtom::Cmp(
            CmpOp::Gt,
            GTerm::prop(var(0), "x"),
            GTerm::int(5),
        )));
        let weaker = encode_factor(&GExpr::Atom(GAtom::Cmp(
            CmpOp::Gt,
            GTerm::prop(var(0), "x"),
            GTerm::int(3),
        )));
        assert!(smt::is_valid(Term::implies(stronger.clone(), weaker.clone())));
        assert!(!smt::is_valid(Term::implies(weaker, stronger)));
    }
}
