//! The runtime value model of the Cypher evaluator.
//!
//! Values follow Cypher's semantics: `NULL` propagates through most
//! operations, comparisons use three-valued logic, and ordering (used by
//! `ORDER BY` and `DISTINCT`) is a total order over all values so results
//! are deterministic.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::graph::{NodeId, RelId};

/// Largest magnitude `f64` represents exactly for every integer: `2^53`.
const EXACTLY_CONVERTIBLE: u64 = 1 << 53;

/// Exact comparison of an integer of magnitude `> 2^53` with a non-NaN
/// float, without the lossy `i as f64` round trip: `i64::MAX as f64` rounds
/// *up* to `2^63`, so the naive conversion makes `i64::MAX` compare `Equal`
/// to a float it is strictly below — corrupting sort order, `DISTINCT`, and
/// the bag-equality verdicts of the counterexample oracle.
///
/// The float is split on `trunc()`: every finite `f64` of magnitude `> 2^53`
/// is an integer, so the comparison reduces to integer ordering once the
/// float is known to be inside the `i64` range. At these magnitudes the
/// total and partial orders coincide (no `±0.0`, no NaN).
fn cmp_int_float_wide(i: i64, f: f64) -> Ordering {
    // 2^63 as f64, exactly representable; every i64 is strictly below it.
    const I64_BOUND: f64 = 9_223_372_036_854_775_808.0;
    debug_assert!(!f.is_nan() && i.unsigned_abs() > EXACTLY_CONVERTIBLE);
    if f >= I64_BOUND {
        return Ordering::Less;
    }
    if f < -I64_BOUND {
        return Ordering::Greater;
    }
    // `f` is finite and in `[-2^63, 2^63)`: its truncation fits `i64`
    // exactly (truncation of a float in that range is an integral float in
    // the same range).
    let truncated = f.trunc();
    let whole = truncated as i64;
    match i.cmp(&whole) {
        Ordering::Equal => {
            let fraction = f - truncated;
            if fraction > 0.0 {
                Ordering::Less
            } else if fraction < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

/// Float/float comparison under the *total* order: [`f64::total_cmp`]
/// (which places `-0.0` below `0.0`) except that **all NaNs collapse into
/// one value ordered above every number**, as Cypher/Neo4j order NaN. IEEE
/// leaves the NaN sign bit platform-dependent (`0.0/0.0` sets it on
/// x86-64, clears it on AArch64) and [`Value::neg`] flips it, so letting
/// `total_cmp`'s sign-split NaN classes reach `ORDER BY`/`DISTINCT`/bag
/// equality would make semantically identical NaN results compare unequal
/// — a spurious counterexample, i.e. verdict corruption.
fn cmp_float_total(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Integer/float comparison under the *total* order: exactly-convertible
/// integers go through [`cmp_float_total`] (which places `-0.0` below
/// `0.0`, keeping the mixed order transitive with the float/float total
/// order), wider ones through [`cmp_int_float_wide`], and NaN — one
/// collapsed class, whatever its sign bit — sorts above every integer.
fn cmp_int_float_total(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        Ordering::Less
    } else if i.unsigned_abs() <= EXACTLY_CONVERTIBLE {
        (i as f64).total_cmp(&f)
    } else {
        cmp_int_float_wide(i, f)
    }
}

/// Integer/float comparison under the *partial* (Cypher comparison) order:
/// exactly-convertible integers go through [`f64::partial_cmp`] — NOT
/// `total_cmp`, so `0 = -0.0` stays `Equal` as IEEE (and the float/float
/// comparison path) has it — wider ones through [`cmp_int_float_wide`], and
/// NaN compares with nothing.
fn cmp_int_float_partial(i: i64, f: f64) -> Option<Ordering> {
    if f.is_nan() {
        None
    } else if i.unsigned_abs() <= EXACTLY_CONVERTIBLE {
        (i as f64).partial_cmp(&f)
    } else {
        Some(cmp_int_float_wide(i, f))
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The SQL-like `NULL` value.
    Null,
    /// A boolean.
    Boolean(bool),
    /// A 64-bit integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    String(String),
    /// A list of values.
    List(Vec<Value>),
    /// A map from string keys to values.
    Map(BTreeMap<String, Value>),
    /// A reference to a node of the evaluated graph.
    Node(NodeId),
    /// A reference to a relationship of the evaluated graph.
    Relationship(RelId),
    /// A path: alternating node and relationship references.
    Path(Vec<Value>),
}

impl Value {
    /// Returns `true` if the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean predicate result
    /// (`NULL` ⇒ `None`, non-boolean ⇒ `None`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the numeric value as `f64` if the value is numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Integer(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer value if the value is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(v) => Some(*v),
            _ => None,
        }
    }

    /// Cypher equality (`=`): three-valued, `NULL` compared with anything is
    /// `NULL` (represented as `None`).
    pub fn cypher_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Integer(a), Value::Float(b)) => {
                Some(cmp_int_float_partial(*a, *b) == Some(Ordering::Equal))
            }
            (Value::Float(a), Value::Integer(b)) => {
                Some(cmp_int_float_partial(*b, *a) == Some(Ordering::Equal))
            }
            (Value::List(a), Value::List(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                let mut saw_null = false;
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cypher_eq(y) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    None
                } else {
                    Some(true)
                }
            }
            (a, b) => Some(a == b),
        }
    }

    /// Cypher ordering comparison (`<`, `<=`, `>`, `>=`): `NULL` or
    /// incomparable types yield `None`.
    pub fn cypher_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Integer(a), Value::Integer(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Integer(a), Value::Float(b)) => cmp_int_float_partial(*a, *b),
            (Value::Float(a), Value::Integer(b)) => {
                cmp_int_float_partial(*b, *a).map(Ordering::reverse)
            }
            (Value::String(a), Value::String(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// A *total* order over all values used for `ORDER BY` and deterministic
    /// bag comparisons. `NULL` sorts last (as in Cypher's default ascending
    /// order); values of different types are ordered by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn type_rank(v: &Value) -> u8 {
            match v {
                Value::Map(_) => 0,
                Value::Node(_) => 1,
                Value::Relationship(_) => 2,
                Value::List(_) => 3,
                Value::Path(_) => 4,
                Value::String(_) => 5,
                Value::Boolean(_) => 6,
                Value::Integer(_) | Value::Float(_) => 7,
                Value::Null => 8,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Integer(a), Value::Integer(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => cmp_float_total(*a, *b),
            (Value::Integer(a), Value::Float(b)) => cmp_int_float_total(*a, *b),
            (Value::Float(a), Value::Integer(b)) => cmp_int_float_total(*b, *a).reverse(),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (Value::Node(a), Value::Node(b)) => a.cmp(b),
            (Value::Relationship(a), Value::Relationship(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) | (Value::Path(a), Value::Path(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                let mut ai = a.iter();
                let mut bi = b.iter();
                loop {
                    match (ai.next(), bi.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((ka, va)), Some((kb, vb))) => {
                            let ord = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                            if ord != Ordering::Equal {
                                return ord;
                            }
                        }
                    }
                }
            }
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Addition following Cypher numeric promotion (integer + integer stays
    /// integer). Non-numeric operands (except string concatenation and list
    /// concatenation) produce `NULL`.
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_add(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (Value::String(a), Value::String(b)) => Value::String(format!("{a}{b}")),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Value::List(out)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Subtraction with the same promotion rules as [`Value::add`].
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_sub(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }

    /// Multiplication with the same promotion rules as [`Value::add`].
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                a.checked_mul(*b).map(Value::Integer).unwrap_or(Value::Null)
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x * y),
                _ => Value::Null,
            },
        }
    }

    /// Arithmetic negation. Floats flip their sign bit (so `-(0.0)` is
    /// `-0.0`, as IEEE and Cypher have it — the previous `0 - x` detour
    /// produced `+0.0`); integer negation overflow (`-(i64::MIN)`) yields
    /// `NULL`, consistent with the other overflowing integer operations.
    pub fn neg(&self) -> Value {
        match self {
            Value::Integer(v) => v.checked_neg().map(Value::Integer).unwrap_or(Value::Null),
            Value::Float(v) => Value::Float(-v),
            _ => Value::Null,
        }
    }

    /// Division. Integer division truncates and integer division by zero
    /// yields `NULL` (this evaluator's convention for runtime errors); float
    /// division follows IEEE like openCypher/Neo4j, so `1.0 / 0.0` is
    /// `Infinity`, `-1.0 / 0.0` is `-Infinity` and `0.0 / 0.0` is `NaN`.
    pub fn div(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    a.checked_div(*b).map(Value::Integer).unwrap_or(Value::Null)
                }
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x / y),
                _ => Value::Null,
            },
        }
    }

    /// Modulo. Integer modulo by zero yields `NULL` (like integer division);
    /// float modulo follows IEEE like openCypher/Neo4j, so `x % 0.0` is
    /// `NaN`.
    pub fn rem(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Integer(a), Value::Integer(b)) => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Integer(a % b)
                }
            }
            (a, b) => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Float(x % y),
                _ => Value::Null,
            },
        }
    }

    /// Exponentiation (always produces a float, as in Cypher).
    pub fn pow(&self, other: &Value) -> Value {
        match (self.as_number(), other.as_number()) {
            (Some(x), Some(y)) => Value::Float(x.powf(y)),
            _ => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "'{s}'"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Node(id) => write!(f, "node({})", id.0),
            Value::Relationship(id) => write!(f, "rel({})", id.0),
            Value::Path(items) => {
                write!(f, "path(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// Three-valued logic conjunction.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued logic disjunction.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued logic exclusive or.
pub fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

/// Three-valued logic negation.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_equality() {
        assert_eq!(Value::Null.cypher_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Null), None);
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Integer(1)), Some(true));
        assert_eq!(Value::Integer(1).cypher_eq(&Value::Integer(2)), Some(false));
    }

    #[test]
    fn mixed_numeric_equality_and_comparison() {
        assert_eq!(Value::Integer(2).cypher_eq(&Value::Float(2.0)), Some(true));
        assert_eq!(Value::Integer(2).cypher_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::String("a".into()).cypher_cmp(&Value::Integer(1)), None);
    }

    #[test]
    fn list_equality_is_elementwise() {
        let a = Value::List(vec![Value::Integer(1), Value::Integer(2)]);
        let b = Value::List(vec![Value::Integer(1), Value::Integer(2)]);
        let c = Value::List(vec![Value::Integer(1), Value::Integer(3)]);
        let with_null = Value::List(vec![Value::Integer(1), Value::Null]);
        assert_eq!(a.cypher_eq(&b), Some(true));
        assert_eq!(a.cypher_eq(&c), Some(false));
        assert_eq!(a.cypher_eq(&with_null), None);
    }

    #[test]
    fn total_order_is_total_and_antisymmetric_on_samples() {
        let samples = vec![
            Value::Null,
            Value::Boolean(true),
            Value::Boolean(false),
            Value::Integer(-3),
            Value::Integer(7),
            Value::Float(2.5),
            Value::String("abc".into()),
            Value::List(vec![Value::Integer(1)]),
            Value::Node(NodeId(0)),
            Value::Relationship(RelId(1)),
        ];
        for a in &samples {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &samples {
                let ab = a.total_cmp(b);
                let ba = b.total_cmp(a);
                assert_eq!(ab, ba.reverse(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn large_integer_float_comparison_is_exact() {
        // `i64::MAX as f64` rounds up to 2^63, so the lossy conversion used
        // to call these Equal; the exact comparison must not.
        let two_to_63 = 9_223_372_036_854_775_808.0_f64;
        assert_eq!(Value::Integer(i64::MAX).cypher_eq(&Value::Float(two_to_63)), Some(false));
        assert_eq!(
            Value::Integer(i64::MAX).cypher_cmp(&Value::Float(two_to_63)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Integer(i64::MAX).total_cmp(&Value::Float(two_to_63)), Ordering::Less);
        assert_eq!(Value::Float(two_to_63).total_cmp(&Value::Integer(i64::MAX)), Ordering::Greater);

        // 2^53 + 1 is the smallest positive integer f64 cannot represent:
        // the conversion rounds it down to 2^53.
        let exact_boundary = 1_i64 << 53;
        let boundary_float = exact_boundary as f64;
        assert_eq!(
            Value::Integer(exact_boundary + 1).cypher_eq(&Value::Float(boundary_float)),
            Some(false)
        );
        assert_eq!(
            Value::Integer(exact_boundary + 1).total_cmp(&Value::Float(boundary_float)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float(boundary_float).cypher_cmp(&Value::Integer(exact_boundary + 1)),
            Some(Ordering::Less)
        );
        // The representable neighbour still compares Equal.
        assert_eq!(
            Value::Integer(exact_boundary).cypher_eq(&Value::Float(boundary_float)),
            Some(true)
        );
        assert_eq!(
            Value::Integer(exact_boundary).total_cmp(&Value::Float(boundary_float)),
            Ordering::Equal
        );

        // i64::MIN is -2^63, exactly representable: Equal on the nose, and
        // anything below it compares Greater.
        assert_eq!(Value::Integer(i64::MIN).cypher_eq(&Value::Float(-(two_to_63))), Some(true));
        assert_eq!(Value::Integer(i64::MIN).total_cmp(&Value::Float(-1.0e19)), Ordering::Greater);
        assert_eq!(Value::Integer(i64::MAX).total_cmp(&Value::Float(1.0e19)), Ordering::Less);

        // Fractions around a large integer order correctly.
        assert_eq!(
            Value::Integer(i64::MAX - 1).cypher_cmp(&Value::Float(two_to_63)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Integer(exact_boundary + 2).cypher_cmp(&Value::Float(boundary_float + 2.0)),
            Some(Ordering::Equal)
        );

        // Infinities and NaN keep their places.
        assert_eq!(
            Value::Integer(i64::MAX).cypher_cmp(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Integer(i64::MIN).cypher_cmp(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Integer(i64::MAX).cypher_cmp(&Value::Float(f64::NAN)), None);
        assert_eq!(Value::Integer(i64::MAX).cypher_eq(&Value::Float(f64::NAN)), Some(false));
        // Total order: NaN — one collapsed class regardless of its sign bit
        // — above every number, and the mixed comparison stays
        // antisymmetric.
        assert_eq!(Value::Integer(i64::MAX).total_cmp(&Value::Float(f64::NAN)), Ordering::Less);
        assert_eq!(Value::Float(f64::NAN).total_cmp(&Value::Integer(i64::MAX)), Ordering::Greater);
        assert_eq!(Value::Integer(i64::MIN).total_cmp(&Value::Float(-f64::NAN)), Ordering::Less);
    }

    #[test]
    fn nan_sign_is_not_observable_in_the_total_order() {
        // IEEE leaves the sign of a produced NaN platform-dependent
        // (`0.0/0.0` sets the sign bit on x86-64, clears it on AArch64) and
        // `Value::neg` flips it; the total order must collapse all NaNs
        // into one value or equivalent rewrites like `-(a/b)` vs `(-a)/b`
        // would disagree on NaN-producing inputs — a spurious
        // counterexample.
        let positive = Value::Float(f64::NAN);
        let negative = Value::Float(-f64::NAN);
        assert_eq!(positive.total_cmp(&negative), Ordering::Equal);
        assert_eq!(negative.total_cmp(&positive), Ordering::Equal);
        // NaNs reached through evaluation agree with the literal ones.
        let div_nan = Value::Float(-0.0).div(&Value::Float(0.0));
        let neg_nan = Value::Float(0.0).div(&Value::Float(0.0)).neg();
        assert_eq!(div_nan.total_cmp(&neg_nan), Ordering::Equal);
        assert_eq!(div_nan.total_cmp(&positive), Ordering::Equal);
        // The collapsed class sorts above every number (Cypher/Neo4j: NaN
        // is larger than all other numbers) but still below NULL.
        for nan in [&positive, &negative] {
            assert_eq!(nan.total_cmp(&Value::Float(f64::INFINITY)), Ordering::Greater);
            assert_eq!(nan.total_cmp(&Value::Integer(i64::MIN)), Ordering::Greater);
            assert_eq!(nan.total_cmp(&Value::Null), Ordering::Less);
        }
    }

    #[test]
    fn negative_zero_compares_equal_to_integer_zero_in_cypher_order() {
        // Cypher (IEEE) comparison: 0 = -0.0 — the partial order must not
        // route through total_cmp, which separates the two zeros.
        assert_eq!(Value::Integer(0).cypher_eq(&Value::Float(-0.0)), Some(true));
        assert_eq!(Value::Float(-0.0).cypher_eq(&Value::Integer(0)), Some(true));
        assert_eq!(Value::Integer(0).cypher_cmp(&Value::Float(-0.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(-0.0).cypher_cmp(&Value::Integer(0)), Some(Ordering::Equal));
        // The float/float path agrees, keeping cypher_cmp transitive.
        assert_eq!(Value::Float(-0.0).cypher_cmp(&Value::Float(0.0)), Some(Ordering::Equal));
        // The *total* order deliberately separates them (like
        // f64::total_cmp), consistently with the float/float total order.
        assert_eq!(Value::Integer(0).total_cmp(&Value::Float(-0.0)), Ordering::Greater);
        assert_eq!(Value::Float(-0.0).total_cmp(&Value::Integer(0)), Ordering::Less);
        assert_eq!(Value::Float(-0.0).total_cmp(&Value::Float(0.0)), Ordering::Less);
    }

    #[test]
    fn mixed_numeric_total_order_is_transitive_on_boundary_samples() {
        let samples = [
            Value::Integer(i64::MIN),
            Value::Float(-(9_223_372_036_854_775_808.0)),
            Value::Integer(-(1 << 53) - 1),
            Value::Float(-0.5),
            Value::Integer(0),
            Value::Float(0.0),
            Value::Integer((1 << 53) + 1),
            Value::Float(9_007_199_254_740_992.0), // 2^53
            Value::Integer(i64::MAX),
            Value::Float(9_223_372_036_854_775_808.0), // 2^63
            Value::Float(f64::INFINITY),
        ];
        for a in &samples {
            assert_eq!(a.total_cmp(a), Ordering::Equal, "{a}");
            for b in &samples {
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse(), "{a} vs {b}");
                for c in &samples {
                    if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
                        assert_ne!(
                            a.total_cmp(c),
                            Ordering::Greater,
                            "transitivity violated: {a} <= {b} <= {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn null_sorts_last() {
        assert_eq!(Value::Integer(1).total_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::String("x".into())), Ordering::Greater);
    }

    #[test]
    fn arithmetic_follows_cypher_promotion() {
        assert_eq!(Value::Integer(2).add(&Value::Integer(3)), Value::Integer(5));
        assert_eq!(Value::Integer(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(
            Value::String("ab".into()).add(&Value::String("c".into())),
            Value::String("abc".into())
        );
        assert_eq!(Value::Integer(7).div(&Value::Integer(2)), Value::Integer(3));
        assert_eq!(Value::Integer(7).div(&Value::Integer(0)), Value::Null);
        assert_eq!(Value::Integer(7).rem(&Value::Integer(0)), Value::Null);
        assert_eq!(Value::Integer(1).add(&Value::Null), Value::Null);
        assert_eq!(Value::Integer(i64::MAX).add(&Value::Integer(1)), Value::Null);
    }

    #[test]
    fn negation_flips_the_float_sign_bit_and_nulls_integer_overflow() {
        // -(0.0) must be -0.0 — observable through the total order, which
        // places -0.0 strictly below 0.0 (the old `0 - x` detour lost the
        // sign bit because 0 + -0.0 promotes through float addition).
        let negated_zero = Value::Float(0.0).neg();
        assert_eq!(negated_zero, Value::Float(-0.0));
        assert_eq!(negated_zero.total_cmp(&Value::Float(0.0)), Ordering::Less);
        assert_eq!(Value::Float(-0.0).neg().total_cmp(&Value::Float(0.0)), Ordering::Equal);
        // Double negation is the identity on floats, including the zeros.
        for f in [0.0, -0.0, 1.5, -2.5, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                Value::Float(f).neg().neg().total_cmp(&Value::Float(f)),
                Ordering::Equal,
                "double negation moved {f}"
            );
        }
        // Integer negation: exact within range, explicit NULL on the single
        // overflowing case instead of a silent wrap.
        assert_eq!(Value::Integer(5).neg(), Value::Integer(-5));
        assert_eq!(Value::Integer(-5).neg(), Value::Integer(5));
        assert_eq!(Value::Integer(i64::MIN + 1).neg(), Value::Integer(i64::MAX));
        assert_eq!(Value::Integer(i64::MIN).neg(), Value::Null);
        assert_eq!(Value::Integer(i64::MAX).neg().neg(), Value::Integer(i64::MAX));
        // Non-numeric operands negate to NULL.
        assert_eq!(Value::String("x".into()).neg(), Value::Null);
        assert_eq!(Value::Null.neg(), Value::Null);
    }

    #[test]
    fn float_division_by_zero_follows_ieee() {
        assert_eq!(Value::Float(1.0).div(&Value::Float(0.0)), Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(-1.0).div(&Value::Float(0.0)), Value::Float(f64::NEG_INFINITY));
        assert_eq!(Value::Float(1.0).div(&Value::Float(-0.0)), Value::Float(f64::NEG_INFINITY));
        // 0.0 / 0.0 is NaN — not NULL, and not equal to itself under `=`.
        let nan = Value::Float(0.0).div(&Value::Float(0.0));
        assert!(matches!(nan, Value::Float(f) if f.is_nan()));
        assert_eq!(nan.cypher_eq(&nan), Some(false));
        assert_eq!(nan.cypher_cmp(&Value::Float(1.0)), None);
        // Mixed promotion goes through the float path.
        assert_eq!(Value::Integer(1).div(&Value::Float(0.0)), Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(-3.0).div(&Value::Integer(0)), Value::Float(f64::NEG_INFINITY));
        // Integer division by zero stays NULL.
        assert_eq!(Value::Integer(7).div(&Value::Integer(0)), Value::Null);
        // The non-finite results have coherent places in the total order
        // (ORDER BY / DISTINCT determinism).
        assert_eq!(
            Value::Float(f64::INFINITY).total_cmp(&Value::Float(f64::NEG_INFINITY)),
            Ordering::Greater
        );
        // NaN (whatever its sign) sorts consistently: equal to itself,
        // antisymmetric against the infinities.
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        for bound in [f64::INFINITY, f64::NEG_INFINITY] {
            let ord = nan.total_cmp(&Value::Float(bound));
            assert_ne!(ord, Ordering::Equal);
            assert_eq!(Value::Float(bound).total_cmp(&nan), ord.reverse());
        }
    }

    #[test]
    fn float_modulo_by_zero_is_nan() {
        assert!(matches!(Value::Float(5.0).rem(&Value::Float(0.0)),
            Value::Float(f) if f.is_nan()));
        assert!(matches!(Value::Integer(5).rem(&Value::Float(0.0)),
            Value::Float(f) if f.is_nan()));
        assert_eq!(Value::Integer(7).rem(&Value::Integer(0)), Value::Null);
        assert_eq!(Value::Float(5.5).rem(&Value::Float(2.0)), Value::Float(1.5));
    }

    #[test]
    fn list_concatenation() {
        let a = Value::List(vec![Value::Integer(1)]);
        let b = Value::List(vec![Value::Integer(2)]);
        assert_eq!(a.add(&b), Value::List(vec![Value::Integer(1), Value::Integer(2)]));
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Some(true);
        let f = Some(false);
        let n = None;
        assert_eq!(and3(t, t), t);
        assert_eq!(and3(t, f), f);
        assert_eq!(and3(f, n), f);
        assert_eq!(and3(t, n), n);
        assert_eq!(or3(f, f), f);
        assert_eq!(or3(f, t), t);
        assert_eq!(or3(t, n), t);
        assert_eq!(or3(f, n), n);
        assert_eq!(xor3(t, f), t);
        assert_eq!(xor3(t, n), n);
        assert_eq!(not3(t), f);
        assert_eq!(not3(n), n);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Integer(3).to_string(), "3");
        assert_eq!(Value::String("x".into()).to_string(), "'x'");
        assert_eq!(Value::List(vec![Value::Integer(1), Value::Null]).to_string(), "[1, null]");
    }
}
