//! Semantic checking of parsed Cypher queries (stage ① of the GraphQE
//! workflow).
//!
//! The paper's prover discards queries with semantic errors before building
//! G-expressions. The two checks named in §III-C are implemented here, plus a
//! couple of closely related scope checks:
//!
//! 1. **Incorrect variable references** — a variable used in `WHERE`,
//!    projections, `ORDER BY` or property maps must be bound by an enclosing
//!    `MATCH`, `UNWIND` or `WITH`.
//! 2. **Incorrect relationship labels** — relationship patterns that share a
//!    variable but declare different label sets are invalid because a
//!    relationship has exactly one label.
//! 3. A variable cannot denote both a node and a relationship.
//! 4. Every top-level single query must end with a `RETURN` clause.
//! 5. **Unknown function names are rejected.** The reference evaluator used
//!    to evaluate unrecognized calls to `NULL`, which can collapse two
//!    inequivalent queries into agreeing `NULL` columns and corrupt the
//!    counterexample oracle's verdicts; admitting only the names the
//!    evaluator models keeps its fallthrough unreachable for checked
//!    queries.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::*;

/// A semantic error detected during stage ① checking.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticError {
    /// Human readable message.
    pub message: String,
}

impl SemanticError {
    fn new(message: impl Into<String>) -> Self {
        SemanticError { message: message.into() }
    }
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.message)
    }
}

impl std::error::Error for SemanticError {}

/// The scalar function names the reference evaluator models. The parser
/// lowercases function names (`SIZE(x)` parses as `size`), so the list is
/// all-lowercase and matching is effectively case-insensitive — exactly the
/// set `eval_function` in `property-graph`'s `expr.rs` implements (keep the
/// two in sync). Aggregates (`COUNT`, `SUM`, ...) parse to
/// `Expr::AggregateCall` and never reach this check.
const KNOWN_FUNCTIONS: &[&str] = &[
    "id",
    "labels",
    "type",
    "size",
    "length",
    "head",
    "last",
    "abs",
    "toupper",
    "tolower",
    "coalesce",
    "exists",
    "startnode",
    "endnode",
    "index",
];

/// The kind of graph entity a variable is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BindingKind {
    Node,
    Relationship,
    Path,
    /// A value binding introduced by `WITH ... AS x` or `UNWIND ... AS x`.
    Value,
}

/// The set of variables visible at a given point of the query.
#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: BTreeMap<String, BindingKind>,
}

impl Scope {
    fn bind(&mut self, name: &str, kind: BindingKind) -> Result<(), SemanticError> {
        match self.bindings.get(name) {
            Some(existing) if *existing != kind && kind != BindingKind::Value => {
                Err(SemanticError::new(format!(
                    "variable `{name}` is already bound as a {existing:?} and cannot be \
                     re-bound as a {kind:?}"
                )))
            }
            _ => {
                self.bindings.insert(name.to_string(), kind);
                Ok(())
            }
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }
}

/// Checks a full query for semantic validity.
pub fn check_semantics(query: &Query) -> Result<(), SemanticError> {
    for part in &query.parts {
        check_single_query(part, &Scope::default(), true)?;
    }
    Ok(())
}

fn check_single_query(
    query: &SingleQuery,
    outer: &Scope,
    require_return: bool,
) -> Result<(), SemanticError> {
    let mut scope = outer.clone();
    // Relationship variable -> label set, for the "one label per relationship"
    // check across the whole single query.
    let mut rel_labels: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for clause in &query.clauses {
        match clause {
            Clause::Match(m) => {
                // Patterns may refer to variables bound earlier (joins), so we
                // first collect the new bindings, then check property maps and
                // WHERE against the extended scope.
                for pattern in &m.patterns {
                    bind_path_pattern(pattern, &mut scope, &mut rel_labels)?;
                }
                for pattern in &m.patterns {
                    for node in pattern.nodes() {
                        for (_, value) in &node.properties {
                            check_expr(value, &scope)?;
                        }
                    }
                    for rel in pattern.relationships() {
                        for (_, value) in &rel.properties {
                            check_expr(value, &scope)?;
                        }
                    }
                }
                if let Some(predicate) = &m.where_clause {
                    check_expr(predicate, &scope)?;
                }
            }
            Clause::Unwind(u) => {
                check_expr(&u.expr, &scope)?;
                scope.bind(&u.alias, BindingKind::Value)?;
            }
            Clause::With(w) => {
                check_projection(&w.projection, &scope)?;
                scope = projected_scope(&w.projection, &scope)?;
                if let Some(predicate) = &w.where_clause {
                    check_expr(predicate, &scope)?;
                }
            }
            Clause::Return(p) => {
                check_projection(p, &scope)?;
            }
        }
    }

    if require_return && !matches!(query.clauses.last(), Some(Clause::Return(_))) {
        return Err(SemanticError::new("a query must end with a RETURN clause"));
    }
    Ok(())
}

fn bind_path_pattern(
    pattern: &PathPattern,
    scope: &mut Scope,
    rel_labels: &mut BTreeMap<String, Vec<String>>,
) -> Result<(), SemanticError> {
    if let Some(path_var) = &pattern.variable {
        scope.bind(path_var, BindingKind::Path)?;
    }
    for node in pattern.nodes() {
        if let Some(var) = &node.variable {
            scope.bind(var, BindingKind::Node)?;
        }
    }
    for rel in pattern.relationships() {
        if let Some(var) = &rel.variable {
            scope.bind(var, BindingKind::Relationship)?;
            let mut labels = rel.labels.clone();
            labels.sort();
            match rel_labels.get(var) {
                Some(existing) if *existing != labels => {
                    return Err(SemanticError::new(format!(
                        "relationship variable `{var}` is used with conflicting label sets \
                         {existing:?} and {labels:?}; a relationship has exactly one label"
                    )));
                }
                _ => {
                    rel_labels.insert(var.clone(), labels);
                }
            }
        }
    }
    Ok(())
}

fn check_projection(projection: &Projection, scope: &Scope) -> Result<(), SemanticError> {
    if let Some(items) = projection.explicit_items() {
        for item in items {
            check_expr(&item.expr, scope)?;
        }
    }
    // ORDER BY may refer both to pre-projection variables and to the aliases
    // introduced by the projection itself.
    let extended = projected_scope(projection, scope)?;
    for order in &projection.order_by {
        if check_expr(&order.expr, scope).is_err() {
            check_expr(&order.expr, &extended)?;
        }
    }
    if let Some(skip) = &projection.skip {
        check_expr(skip, scope)?;
    }
    if let Some(limit) = &projection.limit {
        check_expr(limit, scope)?;
    }
    Ok(())
}

/// Computes the scope visible after a `WITH` projection.
fn projected_scope(projection: &Projection, current: &Scope) -> Result<Scope, SemanticError> {
    match projection.explicit_items() {
        // `WITH *` keeps every binding.
        None => Ok(current.clone()),
        Some(items) => {
            let mut scope = Scope::default();
            for item in items {
                match (&item.alias, &item.expr) {
                    (Some(alias), _) => {
                        scope.bind(alias, BindingKind::Value)?;
                    }
                    // `WITH n` keeps `n` under its own name (and kind).
                    (None, Expr::Variable(name)) => {
                        let kind =
                            current.bindings.get(name).copied().unwrap_or(BindingKind::Value);
                        scope.bind(name, kind)?;
                    }
                    (None, expr) => {
                        // Un-aliased non-variable projections are addressable
                        // by their textual form (Cypher allows this).
                        scope.bind(&crate::pretty::expr_to_string(expr), BindingKind::Value)?;
                    }
                }
            }
            Ok(scope)
        }
    }
}

fn check_expr(expr: &Expr, scope: &Scope) -> Result<(), SemanticError> {
    let mut error = None;
    expr.walk(&mut |e| {
        if error.is_some() {
            return;
        }
        match e {
            Expr::Variable(name) if !scope.contains(name) => {
                error =
                    Some(SemanticError::new(format!("reference to undefined variable `{name}`")));
            }
            Expr::FunctionCall { name, .. } if !KNOWN_FUNCTIONS.contains(&name.as_str()) => {
                error = Some(SemanticError::new(format!(
                    "unknown function `{name}` (the reference evaluator would silently \
                     evaluate it to NULL, corrupting counterexample verdicts)"
                )));
            }
            Expr::Exists(query) => {
                // EXISTS subqueries see the outer scope and do not need a
                // RETURN clause of their own.
                for part in &query.parts {
                    if let Err(e) = check_single_query(part, scope, false) {
                        error = Some(e);
                    }
                }
            }
            _ => {}
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn check(text: &str) -> Result<(), SemanticError> {
        check_semantics(&parse_query(text).expect("syntax"))
    }

    #[test]
    fn accepts_valid_queries() {
        assert!(check("MATCH (n:Person) WHERE n.age = 59 RETURN n.name").is_ok());
        assert!(check("MATCH (a)-[r]->(b) RETURN a, r, b").is_ok());
        assert!(check("MATCH (a) WITH a.name AS name RETURN name").is_ok());
        assert!(check("UNWIND [1, 2] AS x RETURN x").is_ok());
        assert!(check("MATCH (a) RETURN a UNION MATCH (b) RETURN b").is_ok());
        assert!(check("MATCH p = (a)-[]->(b) RETURN p").is_ok());
        assert!(check("MATCH (a)-[r:X]->(b) MATCH (c)-[s:X]->(d) RETURN a, c").is_ok());
    }

    #[test]
    fn rejects_undefined_variable_in_where() {
        let err = check("MATCH (n) WHERE m.age = 1 RETURN n").unwrap_err();
        assert!(err.message.contains("undefined variable `m`"));
    }

    #[test]
    fn rejects_undefined_variable_in_return() {
        let err = check("MATCH (n) RETURN q").unwrap_err();
        assert!(err.message.contains("undefined variable `q`"));
    }

    #[test]
    fn rejects_variable_lost_after_with() {
        // After `WITH a.name AS name`, the binding `a` is no longer in scope.
        let err = check("MATCH (a)-[r]->(b) WITH a.name AS name RETURN r").unwrap_err();
        assert!(err.message.contains("undefined variable `r`"));
    }

    #[test]
    fn with_star_keeps_bindings() {
        assert!(check("MATCH (a)-[r]->(b) WITH * RETURN r").is_ok());
    }

    #[test]
    fn rejects_conflicting_relationship_labels() {
        let err = check("MATCH (a)-[r:READ]->(b) MATCH (c)-[r:WRITE]->(d) RETURN a").unwrap_err();
        assert!(err.message.contains("conflicting label sets"));
    }

    #[test]
    fn accepts_same_relationship_variable_with_same_label() {
        assert!(check("MATCH (a)-[r:READ]->(b) MATCH (c)-[r:READ]->(d) RETURN a").is_ok());
    }

    #[test]
    fn rejects_node_and_relationship_kind_clash() {
        let err = check("MATCH (r)-[r]->(b) RETURN b").unwrap_err();
        assert!(err.message.contains("already bound"));
    }

    #[test]
    fn exists_subquery_sees_outer_scope() {
        assert!(
            check("MATCH (n) WHERE EXISTS { MATCH (n)-[:KNOWS]->(m) RETURN m } RETURN n").is_ok()
        );
        let err = check(
            "MATCH (n) WHERE EXISTS { MATCH (x)-[:KNOWS]->(m) WHERE y.a = 1 RETURN m } RETURN n",
        )
        .unwrap_err();
        assert!(err.message.contains("undefined variable `y`"));
    }

    #[test]
    fn order_by_can_reference_alias_or_original() {
        assert!(check("MATCH (n) RETURN n.name AS name ORDER BY name").is_ok());
        assert!(check("MATCH (n) RETURN n.name AS name ORDER BY n.age").is_ok());
    }

    #[test]
    fn property_map_expressions_are_checked() {
        let err = check("MATCH (n {age: m.age}) RETURN n").unwrap_err();
        assert!(err.message.contains("undefined variable `m`"));
    }

    #[test]
    fn pattern_can_reference_earlier_binding_in_property_map() {
        assert!(check("MATCH (n) MATCH (m {age: n.age}) RETURN m").is_ok());
    }

    #[test]
    fn rejects_unknown_function_names() {
        let err = check("MATCH (n) WHERE mystery(n) = 1 RETURN n").unwrap_err();
        assert!(err.message.contains("unknown function `mystery`"), "{}", err.message);
        // In projections and nested argument positions too.
        assert!(check("MATCH (n) RETURN frobnicate(n.age)").is_err());
        assert!(check("MATCH (n) RETURN size(frobnicate(n.age))").is_err());
        // The parser lowercases function names, so case variants of known
        // names stay admitted while cased unknowns are still rejected.
        assert!(check("MATCH (n) WHERE SIZE(n.name) > 2 RETURN n").is_ok());
        assert!(check("MATCH (n) WHERE Frobnicate(n.name) > 2 RETURN n").is_err());
        // Inside EXISTS subqueries.
        assert!(check("MATCH (n) WHERE EXISTS { MATCH (n) WHERE bogus(n) = 1 RETURN n } RETURN n")
            .is_err());
    }

    #[test]
    fn accepts_every_evaluator_modelled_function() {
        for call in [
            "id(n)",
            "labels(n)",
            "size(n.name)",
            "length(n.name)",
            "head([n.age])",
            "last([n.age])",
            "abs(n.age)",
            "toUpper(n.name)",
            "toLower(n.name)",
            "coalesce(n.age, 0)",
            "exists(n.age)",
        ] {
            assert!(
                check(&format!("MATCH (n) WHERE {call} = 1 RETURN n")).is_ok(),
                "{call} wrongly rejected"
            );
        }
        // Aggregates are not function calls and stay admitted.
        assert!(check("MATCH (n) RETURN COUNT(n), SUM(n.age)").is_ok());
    }
}
