//! The abstract syntax tree for the Cypher fragment supported by GraphQE-rs.
//!
//! The fragment follows Fig. 4 of the paper plus the evaluation features the
//! paper exercises: `MATCH` / `OPTIONAL MATCH` with multiple comma-separated
//! path patterns, `WHERE`, `WITH`, `UNWIND`, `RETURN` (with `DISTINCT`,
//! `ORDER BY`, `SKIP`, `LIMIT`), `UNION [ALL]`, aggregates, variable-length
//! and undirected relationship patterns, property maps and `EXISTS`
//! subqueries.

use std::fmt;

use crate::Span;

/// The full query: one or more single queries combined by `UNION [ALL]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The component single queries, in source order.
    pub parts: Vec<SingleQuery>,
    /// Combinators between consecutive parts (`unions.len() == parts.len() - 1`).
    pub unions: Vec<UnionKind>,
}

impl Query {
    /// Wraps a single query without unions.
    pub fn single(query: SingleQuery) -> Self {
        Query { parts: vec![query], unions: Vec::new() }
    }

    /// Returns `true` if the query consists of a single part.
    pub fn is_single(&self) -> bool {
        self.parts.len() == 1
    }
}

/// The combinator between two unioned single queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionKind {
    /// `UNION ALL`: bag union.
    All,
    /// `UNION`: set union (deduplicating).
    Distinct,
}

/// A single (non-union) query: a sequence of clauses ending with `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleQuery {
    /// The clause sequence in source order.
    pub clauses: Vec<Clause>,
}

impl SingleQuery {
    /// Returns the final `RETURN` clause if present.
    pub fn return_clause(&self) -> Option<&Projection> {
        match self.clauses.last() {
            Some(Clause::Return(p)) => Some(p),
            _ => None,
        }
    }
}

/// A single clause of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `MATCH` or `OPTIONAL MATCH`.
    Match(MatchClause),
    /// `UNWIND <expr> AS <var>`.
    Unwind(UnwindClause),
    /// `WITH <projection> [WHERE <expr>]`.
    With(WithClause),
    /// `RETURN <projection>`.
    Return(Projection),
}

impl Clause {
    /// A short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Clause::Match(m) if m.optional => "OPTIONAL MATCH",
            Clause::Match(_) => "MATCH",
            Clause::Unwind(_) => "UNWIND",
            Clause::With(_) => "WITH",
            Clause::Return(_) => "RETURN",
        }
    }
}

/// A `MATCH` clause: one or more comma-separated path patterns and an
/// optional `WHERE` predicate.
#[derive(Debug, Clone)]
pub struct MatchClause {
    /// `true` for `OPTIONAL MATCH`.
    pub optional: bool,
    /// Comma-separated path patterns.
    pub patterns: Vec<PathPattern>,
    /// The `WHERE` predicate attached to this `MATCH`, if any.
    pub where_clause: Option<Expr>,
    /// Source span of the whole clause (dummy for synthesized clauses).
    pub span: Span,
}

/// An `UNWIND <expr> AS <var>` clause.
#[derive(Debug, Clone)]
pub struct UnwindClause {
    /// The list expression to unwind.
    pub expr: Expr,
    /// The row variable introduced for each list element.
    pub alias: String,
    /// Source span of the whole clause (dummy for synthesized clauses).
    pub span: Span,
}

/// A `WITH` clause: a projection plus an optional `WHERE` filter on the
/// projected rows.
#[derive(Debug, Clone)]
pub struct WithClause {
    /// The projection (`DISTINCT`, items, `ORDER BY`, `SKIP`, `LIMIT`).
    pub projection: Projection,
    /// Filter applied to the projected rows.
    pub where_clause: Option<Expr>,
    /// Source span of the whole clause (dummy for synthesized clauses).
    pub span: Span,
}

/// The body of a `RETURN` or `WITH` clause.
#[derive(Debug, Clone)]
pub struct Projection {
    /// `true` if `DISTINCT` was specified.
    pub distinct: bool,
    /// `RETURN *` or an explicit item list.
    pub items: ProjectionItems,
    /// `ORDER BY` sort keys (possibly empty).
    pub order_by: Vec<OrderItem>,
    /// `SKIP` expression, if any.
    pub skip: Option<Expr>,
    /// `LIMIT` expression, if any.
    pub limit: Option<Expr>,
    /// Source span of the clause this projection came from (dummy for
    /// synthesized projections).
    pub span: Span,
}

// Spans are positional metadata, not syntax: two clauses parsed from
// different offsets (or a parsed clause vs. a synthesized one) must still
// compare equal, because the normalizer's tests and the prover's caches
// compare ASTs structurally.
impl PartialEq for MatchClause {
    fn eq(&self, other: &Self) -> bool {
        self.optional == other.optional
            && self.patterns == other.patterns
            && self.where_clause == other.where_clause
    }
}

impl PartialEq for UnwindClause {
    fn eq(&self, other: &Self) -> bool {
        self.expr == other.expr && self.alias == other.alias
    }
}

impl PartialEq for WithClause {
    fn eq(&self, other: &Self) -> bool {
        self.projection == other.projection && self.where_clause == other.where_clause
    }
}

impl PartialEq for Projection {
    fn eq(&self, other: &Self) -> bool {
        self.distinct == other.distinct
            && self.items == other.items
            && self.order_by == other.order_by
            && self.skip == other.skip
            && self.limit == other.limit
    }
}

impl Projection {
    /// A plain (non-distinct, unordered) projection over the given items.
    pub fn plain(items: Vec<ProjectionItem>) -> Self {
        Projection {
            distinct: false,
            items: ProjectionItems::Items(items),
            order_by: Vec::new(),
            skip: None,
            limit: None,
            span: Span::dummy(),
        }
    }

    /// Returns `true` if the projection has an `ORDER BY`, `SKIP` or `LIMIT`.
    pub fn has_sort_or_truncation(&self) -> bool {
        !self.order_by.is_empty() || self.skip.is_some() || self.limit.is_some()
    }

    /// Returns the explicit items, or `None` for `RETURN *`.
    pub fn explicit_items(&self) -> Option<&[ProjectionItem]> {
        match &self.items {
            ProjectionItems::Star => None,
            ProjectionItems::Items(items) => Some(items),
        }
    }
}

/// Either `*` or an explicit list of projection items.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionItems {
    /// `RETURN *` / `WITH *`.
    Star,
    /// An explicit list of expressions with optional aliases.
    Items(Vec<ProjectionItem>),
}

/// A single projected expression with an optional `AS` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionItem {
    /// The projected expression.
    pub expr: Expr,
    /// The alias introduced with `AS`, if any.
    pub alias: Option<String>,
}

impl ProjectionItem {
    /// Creates an un-aliased projection item.
    pub fn expr(expr: Expr) -> Self {
        ProjectionItem { expr, alias: None }
    }

    /// Creates an aliased projection item.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        ProjectionItem { expr, alias: Some(alias.into()) }
    }

    /// The output column name of this item: the alias if present, otherwise
    /// the textual form of the expression.
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => crate::pretty::expr_to_string(&self.expr),
        }
    }
}

/// A sort key of an `ORDER BY`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort expression.
    pub expr: Expr,
    /// `true` for ascending (the default), `false` for `DESC`.
    pub ascending: bool,
}

// ---------------------------------------------------------------------------
// Graph patterns
// ---------------------------------------------------------------------------

/// A path pattern: `start` followed by zero or more `(relationship, node)`
/// segments, optionally bound to a path variable (`p = (...)-[...]->(...)`).
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    /// The path variable, if the pattern is named.
    pub variable: Option<String>,
    /// The left-most node pattern.
    pub start: NodePattern,
    /// The chain of relationship/node segments.
    pub segments: Vec<PathSegment>,
}

impl PathPattern {
    /// A path consisting of a single node pattern.
    pub fn node(node: NodePattern) -> Self {
        PathPattern { variable: None, start: node, segments: Vec::new() }
    }

    /// Returns all node patterns along the path, left to right.
    pub fn nodes(&self) -> impl Iterator<Item = &NodePattern> {
        std::iter::once(&self.start).chain(self.segments.iter().map(|s| &s.node))
    }

    /// Returns all relationship patterns along the path, left to right.
    pub fn relationships(&self) -> impl Iterator<Item = &RelationshipPattern> {
        self.segments.iter().map(|s| &s.relationship)
    }
}

/// One `-[...]-(...)` step of a path pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// The relationship pattern of this step.
    pub relationship: RelationshipPattern,
    /// The node pattern this step ends at.
    pub node: NodePattern,
}

/// A node pattern `(v:Label1:Label2 {key: value, ...})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePattern {
    /// The node variable, if given.
    pub variable: Option<String>,
    /// Labels required on the node (conjunctive).
    pub labels: Vec<String>,
    /// Required property values.
    pub properties: Vec<(String, Expr)>,
}

impl NodePattern {
    /// An anonymous, unlabelled node pattern `()`.
    pub fn anonymous() -> Self {
        NodePattern::default()
    }

    /// A node pattern with just a variable, e.g. `(n)`.
    pub fn var(name: impl Into<String>) -> Self {
        NodePattern { variable: Some(name.into()), labels: Vec::new(), properties: Vec::new() }
    }

    /// A node pattern with a variable and one label, e.g. `(n:Person)`.
    pub fn var_label(name: impl Into<String>, label: impl Into<String>) -> Self {
        NodePattern {
            variable: Some(name.into()),
            labels: vec![label.into()],
            properties: Vec::new(),
        }
    }
}

/// The direction of a relationship pattern relative to the path direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelDirection {
    /// `-[]->`: from the left node to the right node.
    Outgoing,
    /// `<-[]-`: from the right node to the left node.
    Incoming,
    /// `-[]-`: either direction.
    Undirected,
}

impl RelDirection {
    /// The opposite direction (`Undirected` is its own reverse).
    pub fn reversed(self) -> Self {
        match self {
            RelDirection::Outgoing => RelDirection::Incoming,
            RelDirection::Incoming => RelDirection::Outgoing,
            RelDirection::Undirected => RelDirection::Undirected,
        }
    }
}

/// The `*min..max` variable-length specifier of a relationship pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarLength {
    /// Minimum number of hops (`None` means the Cypher default of 1).
    pub min: Option<u32>,
    /// Maximum number of hops (`None` means unbounded).
    pub max: Option<u32>,
}

impl VarLength {
    /// The fully unbounded `*` specifier.
    pub fn any() -> Self {
        VarLength { min: None, max: None }
    }

    /// An explicit `*min..max` range.
    pub fn range(min: u32, max: u32) -> Self {
        VarLength { min: Some(min), max: Some(max) }
    }

    /// The effective minimum number of hops.
    pub fn effective_min(&self) -> u32 {
        self.min.unwrap_or(1)
    }
}

/// A relationship pattern `-[v:L1|L2 {key: value} *1..3]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationshipPattern {
    /// The relationship variable, if given.
    pub variable: Option<String>,
    /// Alternative labels (`:A|B`); a relationship needs at least one of them.
    pub labels: Vec<String>,
    /// Required property values.
    pub properties: Vec<(String, Expr)>,
    /// Direction of the relationship.
    pub direction: RelDirection,
    /// Variable-length specifier, if the pattern is `*`-quantified.
    pub length: Option<VarLength>,
}

impl RelationshipPattern {
    /// An anonymous outgoing relationship `-[]->`.
    pub fn outgoing() -> Self {
        RelationshipPattern {
            variable: None,
            labels: Vec::new(),
            properties: Vec::new(),
            direction: RelDirection::Outgoing,
            length: None,
        }
    }

    /// Returns `true` if this is a variable-length (or unbounded) pattern.
    pub fn is_var_length(&self) -> bool {
        self.length.is_some()
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A scalar literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// An integer literal.
    Integer(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal.
    String(String),
    /// `TRUE` or `FALSE`.
    Boolean(bool),
    /// `NULL`.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `XOR`
    Xor,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `^`
    Pow,
    /// `IN`
    In,
    /// `STARTS WITH`
    StartsWith,
    /// `ENDS WITH`
    EndsWith,
    /// `CONTAINS`
    Contains,
}

impl BinaryOp {
    /// Returns `true` for comparison operators that produce booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
        )
    }

    /// Returns `true` for the boolean connectives `AND`, `OR`, `XOR`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or | BinaryOp::Xor)
    }

    /// The mirrored comparison (e.g. `<` becomes `>`), if the operator is a
    /// comparison; logical and arithmetic operators return `None` unless they
    /// are symmetric.
    pub fn flipped(&self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::Neq => BinaryOp::Neq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Boolean negation `NOT`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
    /// Unary plus `+` (identity).
    Pos,
}

/// The aggregate functions of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
    /// `COLLECT`
    Collect,
}

impl Aggregate {
    /// Parses an aggregate function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Aggregate> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(Aggregate::Count),
            "SUM" => Some(Aggregate::Sum),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            "AVG" => Some(Aggregate::Avg),
            "COLLECT" => Some(Aggregate::Collect),
            _ => None,
        }
    }

    /// The canonical upper-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
            Aggregate::Avg => "AVG",
            Aggregate::Collect => "COLLECT",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum Expr {
    /// A literal value.
    Literal(Literal),
    /// A variable reference.
    Variable(String),
    /// A query parameter `$name`.
    Parameter(String),
    /// Property access `expr.key`.
    Property(Box<Expr>, String),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `expr IS NULL` (`negated == false`) or `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// A list literal `[a, b, c]`.
    List(Vec<Expr>),
    /// A map literal `{k1: v1, k2: v2}`.
    Map(Vec<(String, Expr)>),
    /// A scalar function call `f(args)` (built-in or user-defined).
    FunctionCall { name: String, args: Vec<Expr> },
    /// An aggregate call `agg([DISTINCT] arg)`.
    AggregateCall { func: Aggregate, distinct: bool, arg: Box<Expr> },
    /// `COUNT(*)` / `COUNT(DISTINCT *)`.
    CountStar { distinct: bool },
    /// `EXISTS { <query> }` subquery predicate.
    Exists(Box<Query>),
    /// `CASE WHEN c1 THEN v1 ... [ELSE e] END` (searched form).
    Case { branches: Vec<(Expr, Expr)>, otherwise: Option<Box<Expr>> },
}

impl Expr {
    /// An integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    /// A string literal.
    pub fn string(s: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(s.into()))
    }

    /// A boolean literal.
    pub fn boolean(b: bool) -> Expr {
        Expr::Literal(Literal::Boolean(b))
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Variable(name.into())
    }

    /// A property access `var.key`.
    pub fn prop(var: impl Into<String>, key: impl Into<String>) -> Expr {
        Expr::Property(Box::new(Expr::Variable(var.into())), key.into())
    }

    /// A binary application.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// An equality comparison.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, lhs, rhs)
    }

    /// A conjunction.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::And, lhs, rhs)
    }

    /// Returns `true` if the expression (transitively) contains an aggregate
    /// call such as `COUNT(...)` or `SUM(...)`.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::AggregateCall { .. } | Expr::CountStar { .. }) {
                found = true;
            }
        });
        found
    }

    /// Calls `f` on this expression and every sub-expression (pre-order).
    /// `EXISTS` subqueries are not descended into.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Variable(_) | Expr::Parameter(_) => {}
            Expr::Property(e, _) => e.walk(f),
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::List(items) => {
                for item in items {
                    item.walk(f);
                }
            }
            Expr::Map(entries) => {
                for (_, v) in entries {
                    v.walk(f);
                }
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::AggregateCall { arg, .. } => arg.walk(f),
            Expr::CountStar { .. } => {}
            Expr::Exists(_) => {}
            Expr::Case { branches, otherwise } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = otherwise {
                    e.walk(f);
                }
            }
        }
    }

    /// Rewrites the expression bottom-up by applying `f` to every node.
    pub fn map(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Literal(_) | Expr::Variable(_) | Expr::Parameter(_) | Expr::CountStar { .. } => {
                self
            }
            Expr::Property(e, key) => Expr::Property(Box::new(e.map(f)), key),
            Expr::Unary(op, e) => Expr::Unary(op, Box::new(e.map(f))),
            Expr::Binary(op, l, r) => Expr::Binary(op, Box::new(l.map(f)), Box::new(r.map(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull { expr: Box::new(expr.map(f)), negated },
            Expr::List(items) => Expr::List(items.into_iter().map(|e| e.map(f)).collect()),
            Expr::Map(entries) => {
                Expr::Map(entries.into_iter().map(|(k, v)| (k, v.map(f))).collect())
            }
            Expr::FunctionCall { name, args } => {
                Expr::FunctionCall { name, args: args.into_iter().map(|e| e.map(f)).collect() }
            }
            Expr::AggregateCall { func, distinct, arg } => {
                Expr::AggregateCall { func, distinct, arg: Box::new(arg.map(f)) }
            }
            Expr::Exists(q) => Expr::Exists(q),
            Expr::Case { branches, otherwise } => Expr::Case {
                branches: branches.into_iter().map(|(c, v)| (c.map(f), v.map(f))).collect(),
                otherwise: otherwise.map(|e| Box::new(e.map(f))),
            },
        };
        f(rebuilt)
    }

    /// Collects the free variable names referenced by the expression
    /// (excluding `EXISTS` subqueries, which manage their own scopes).
    pub fn variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Variable(name) = e {
                if !vars.contains(name) {
                    vars.push(name.clone());
                }
            }
        });
        vars
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::expr_to_string(self))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::query_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::eq(Expr::prop("n", "age"), Expr::int(59));
        match &e {
            Expr::Binary(BinaryOp::Eq, lhs, rhs) => {
                assert_eq!(**lhs, Expr::Property(Box::new(Expr::var("n")), "age".into()));
                assert_eq!(**rhs, Expr::int(59));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn contains_aggregate_detects_nested_aggregates() {
        let plain = Expr::eq(Expr::prop("n", "age"), Expr::int(1));
        assert!(!plain.contains_aggregate());
        let agg = Expr::binary(
            BinaryOp::Add,
            Expr::int(1),
            Expr::AggregateCall {
                func: Aggregate::Sum,
                distinct: false,
                arg: Box::new(Expr::prop("n", "age")),
            },
        );
        assert!(agg.contains_aggregate());
        assert!(Expr::CountStar { distinct: false }.contains_aggregate());
    }

    #[test]
    fn variables_are_collected_without_duplicates() {
        let e = Expr::and(
            Expr::eq(Expr::prop("a", "x"), Expr::prop("b", "y")),
            Expr::eq(Expr::var("a"), Expr::var("c")),
        );
        assert_eq!(e.variables(), vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn map_rewrites_bottom_up() {
        let e = Expr::binary(BinaryOp::Add, Expr::int(1), Expr::int(2));
        let rewritten = e.map(&|node| match node {
            Expr::Literal(Literal::Integer(v)) => Expr::int(v * 10),
            other => other,
        });
        assert_eq!(rewritten, Expr::binary(BinaryOp::Add, Expr::int(10), Expr::int(20)));
    }

    #[test]
    fn direction_reversal_is_involutive() {
        for d in [RelDirection::Outgoing, RelDirection::Incoming, RelDirection::Undirected] {
            assert_eq!(d.reversed().reversed(), d);
        }
    }

    #[test]
    fn flipped_comparisons() {
        assert_eq!(BinaryOp::Lt.flipped(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::Eq.flipped(), Some(BinaryOp::Eq));
        assert_eq!(BinaryOp::Add.flipped(), None);
    }

    #[test]
    fn aggregate_names_round_trip() {
        for agg in [
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Avg,
            Aggregate::Collect,
        ] {
            assert_eq!(Aggregate::from_name(agg.name()), Some(agg));
        }
        assert_eq!(Aggregate::from_name("size"), None);
    }

    #[test]
    fn path_pattern_iterators() {
        let path = PathPattern {
            variable: None,
            start: NodePattern::var("a"),
            segments: vec![
                PathSegment {
                    relationship: RelationshipPattern::outgoing(),
                    node: NodePattern::var("b"),
                },
                PathSegment {
                    relationship: RelationshipPattern {
                        direction: RelDirection::Incoming,
                        ..RelationshipPattern::outgoing()
                    },
                    node: NodePattern::var("c"),
                },
            ],
        };
        let node_vars: Vec<_> =
            path.nodes().map(|n| n.variable.clone().unwrap_or_default()).collect();
        assert_eq!(node_vars, vec!["a", "b", "c"]);
        assert_eq!(path.relationships().count(), 2);
    }

    #[test]
    fn var_length_defaults() {
        assert_eq!(VarLength::any().effective_min(), 1);
        assert_eq!(VarLength::range(2, 3).effective_min(), 2);
        assert_eq!(VarLength { min: Some(0), max: None }.effective_min(), 0);
    }
}
