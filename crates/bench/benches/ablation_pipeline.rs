//! Ablation benchmark: pipeline latency with and without Table II
//! normalization (DESIGN.md §7).

use criterion::{criterion_group, criterion_main, Criterion};
use graphqe::GraphQE;

fn bench_ablation(c: &mut Criterion) {
    let q1 = "MATCH (n1)-[*1..2]->(n2) RETURN n1";
    let q2 = "MATCH (n1)-[]->(n2) RETURN n1 UNION ALL MATCH (n1)-[]->()-[]->(n2) RETURN n1";
    let mut group = c.benchmark_group("ablation/normalization");
    group.sample_size(10);
    let full = GraphQE::new();
    let without = GraphQE { normalize: false, search_counterexamples: false, ..GraphQE::new() };
    group.bench_function("with_normalization", |b| b.iter(|| full.prove(q1, q2)));
    group.bench_function("without_normalization", |b| b.iter(|| without.prove(q1, q2)));
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
